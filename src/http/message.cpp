#include "http/message.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace hpop::http {

std::string to_string(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kHead: return "HEAD";
    case Method::kPut: return "PUT";
    case Method::kPost: return "POST";
    case Method::kDelete: return "DELETE";
    case Method::kOptions: return "OPTIONS";
    case Method::kPropfind: return "PROPFIND";
    case Method::kMkcol: return "MKCOL";
    case Method::kLock: return "LOCK";
    case Method::kUnlock: return "UNLOCK";
    case Method::kMove: return "MOVE";
    case Method::kCopy: return "COPY";
  }
  return "?";
}

std::optional<Method> method_from_string(std::string_view s) {
  static constexpr Method kAll[] = {
      Method::kGet,      Method::kHead,  Method::kPut,    Method::kPost,
      Method::kDelete,   Method::kOptions, Method::kPropfind, Method::kMkcol,
      Method::kLock,     Method::kUnlock, Method::kMove,  Method::kCopy,
  };
  for (Method m : kAll) {
    if (to_string(m) == s) return m;
  }
  return std::nullopt;
}

bool is_idempotent(Method m) {
  switch (m) {
    case Method::kPost:
    case Method::kLock:
    case Method::kMove:
      return false;
    default:
      return true;
  }
}

void Headers::set(std::string_view name, std::string value) {
  // Only the mutating path interns; lookups below stay allocation-free.
  const util::Symbol sym = util::Symbol::intern(name);
  for (Entry& e : entries_) {
    if (e.name == sym) {
      e.value = std::move(value);
      return;
    }
  }
  entries_.push_back(Entry{sym, std::move(value)});
}

const std::string* Headers::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (util::Symbol::iequals(e.name.str(), name)) return &e.value;
  }
  return nullptr;
}

std::optional<std::string> Headers::get(std::string_view name) const {
  const std::string* value = find(name);
  if (!value) return std::nullopt;
  return *value;
}

void Headers::erase(std::string_view name) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (util::Symbol::iequals(entries_[i].name.str(), name)) {
      entries_.erase_at(i);
      return;
    }
  }
}

std::size_t Headers::wire_size() const {
  std::size_t total = 0;
  for (const Entry& e : entries_) {
    total += e.name.str().size() + e.value.size() + 4;  // ": " + CRLF
  }
  return total;
}

std::size_t Body::size() const {
  if (is_real()) return bytes().size();
  return std::get<Synthetic>(rep_).size;
}

std::string Body::text() const {
  assert(is_real());
  return util::to_string(bytes());
}

std::uint64_t Body::tag() const {
  if (is_real()) return 0;
  return std::get<Synthetic>(rep_).tag;
}

util::Digest Body::digest() const {
  if (is_real()) return util::Sha256::digest(bytes());
  const auto& s = std::get<Synthetic>(rep_);
  char canon[64];
  std::snprintf(canon, sizeof canon, "synthetic:%llu:%zu",
                static_cast<unsigned long long>(s.tag), s.size);
  return util::Sha256::digest(std::string_view(canon));
}

Body Body::slice(std::size_t offset, std::size_t length) const {
  assert(offset + length <= size());
  if (is_real()) {
    const auto& b = bytes();
    return Body(util::Bytes(b.begin() + static_cast<std::ptrdiff_t>(offset),
                            b.begin() +
                                static_cast<std::ptrdiff_t>(offset + length)));
  }
  const auto& s = std::get<Synthetic>(rep_);
  if (offset == 0 && length == s.size) return *this;
  // Deterministic sub-tag so independent parties derive identical slices.
  const std::uint64_t sub_tag =
      s.tag ^ (0x9e3779b97f4a7c15ULL * (offset + 0x51ull)) ^
      (0xc2b2ae3d27d4eb4fULL * (length + 0x9dull));
  return synthetic(length, sub_tag);
}

Body Body::corrupted() const {
  if (is_real()) {
    util::Bytes b = bytes();
    if (b.empty()) {
      b.push_back(0xEE);
    } else {
      b[b.size() / 2] ^= 0x01;
    }
    return Body(std::move(b));
  }
  const auto& s = std::get<Synthetic>(rep_);
  return synthetic(s.size, ~s.tag);
}

namespace {
// Rough fixed costs of the request/status lines.
constexpr std::size_t kRequestLineOverhead = 32;
constexpr std::size_t kStatusLineOverhead = 24;
}  // namespace

std::size_t Request::wire_size() const {
  return kRequestLineOverhead + path.size() + headers.wire_size() +
         body.size();
}

std::size_t Response::wire_size() const {
  return kStatusLineOverhead + headers.wire_size() + body.size();
}

std::optional<std::pair<std::size_t, std::size_t>> parse_range(
    const Headers& headers, std::size_t body_size) {
  const std::string* value = headers.find("range");
  if (!value) return std::nullopt;
  unsigned long long a = 0, b = 0;
  if (std::sscanf(value->c_str(), "bytes=%llu-%llu", &a, &b) != 2 || b < a ||
      a >= body_size) {
    return std::nullopt;
  }
  const std::size_t end = std::min<std::size_t>(b + 1, body_size);
  return std::make_pair(static_cast<std::size_t>(a),
                        end - static_cast<std::size_t>(a));
}

void set_range(Headers& headers, std::size_t offset, std::size_t length) {
  assert(length > 0);
  headers.set("Range", "bytes=" + std::to_string(offset) + "-" +
                           std::to_string(offset + length - 1));
}

std::optional<std::int64_t> max_age_seconds(const Headers& headers) {
  const std::string* value = headers.find("cache-control");
  if (!value) return std::nullopt;
  if (value->find("no-store") != std::string::npos) return std::nullopt;
  const auto pos = value->find("max-age=");
  if (pos == std::string::npos) return std::nullopt;
  return std::atoll(value->c_str() + pos + 8);
}

std::optional<util::Duration> retry_after(const Headers& headers) {
  const std::string* value = headers.find("retry-after");
  if (!value || value->empty()) return std::nullopt;
  for (const char c : *value) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  if (value->size() > 9) return std::nullopt;  // > ~31 years: garbage
  return std::atoll(value->c_str()) * util::kSecond;
}

void set_retry_after(Headers& headers, util::Duration d) {
  const std::int64_t secs =
      std::max<std::int64_t>(1, (d + util::kSecond - 1) / util::kSecond);
  headers.set("Retry-After", std::to_string(secs));
}

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 207: return "Multi-Status";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 423: return "Locked";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

// --- Wire-text serialization and parsing ---------------------------------

namespace {

std::string body_text(const Body& body) {
  if (body.is_real()) return body.text();
  // Synthetic bodies have no materialized bytes; serialize a deterministic
  // filler of the right length so framing stays exact.
  return std::string(body.size(), 'x');
}

void append_headers(std::string& out, const Headers& headers,
                    std::size_t content_length) {
  // The flat store keeps insertion order; emit sorted by canonical name so
  // the wire text matches what the old std::map-backed Headers produced.
  const Headers::Entry* sorted[128];
  std::size_t count = 0;
  for (const Headers::Entry& e : headers.entries()) {
    if (e.name.str() == "content-length") continue;  // framing is ours
    if (count < sizeof(sorted) / sizeof(sorted[0])) sorted[count++] = &e;
  }
  std::sort(sorted, sorted + count,
            [](const Headers::Entry* a, const Headers::Entry* b) {
              return a->name.str() < b->name.str();
            });
  for (std::size_t i = 0; i < count; ++i) {
    out += sorted[i]->name.str();
    out += ": ";
    out += sorted[i]->value;
    out += "\r\n";
  }
  out += "content-length: ";
  out += std::to_string(content_length);
  out += "\r\n\r\n";
}

/// Pulls CRLF-terminated lines off a wire buffer, enforcing a length cap
/// per line so hostile input cannot force unbounded scans or buffers.
struct LineReader {
  std::string_view wire;
  std::size_t pos = 0;

  enum class Verdict { kOk, kTruncated, kTooLong };
  Verdict next(std::string_view* line, std::size_t max_line) {
    const auto nl = wire.find("\r\n", pos);
    if (nl == std::string_view::npos) {
      return wire.size() - pos > max_line ? Verdict::kTooLong
                                          : Verdict::kTruncated;
    }
    if (nl - pos > max_line) return Verdict::kTooLong;
    *line = wire.substr(pos, nl - pos);
    pos = nl + 2;
    return Verdict::kOk;
  }
};

struct ParseError {
  const char* code;
  const char* message;
};

std::optional<ParseError> parse_headers(LineReader& reader, Headers* headers,
                                        const ParseLimits& limits) {
  std::size_t total_bytes = 0;
  std::size_t count = 0;
  for (;;) {
    std::string_view line;
    switch (reader.next(&line, limits.max_line)) {
      case LineReader::Verdict::kTruncated:
        return ParseError{"truncated", "headers end before blank line"};
      case LineReader::Verdict::kTooLong:
        return ParseError{"line_too_long", "header line exceeds limit"};
      case LineReader::Verdict::kOk:
        break;
    }
    if (line.empty()) return std::nullopt;  // blank line: headers done
    total_bytes += line.size();
    if (total_bytes > limits.max_header_bytes) {
      return ParseError{"headers_too_large", "header block exceeds limit"};
    }
    if (++count > limits.max_headers) {
      return ParseError{"too_many_headers", "header count exceeds limit"};
    }
    const auto colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return ParseError{"bad_header", "header line without name:"};
    }
    const std::string_view name = line.substr(0, colon);
    if (name.find(' ') != std::string_view::npos ||
        name.find('\t') != std::string_view::npos) {
      return ParseError{"bad_header", "whitespace in header name"};
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    headers->set(name, std::string(value));
  }
}

std::optional<ParseError> parse_body(LineReader& reader,
                                     const Headers& headers, Body* body,
                                     const ParseLimits& limits) {
  const std::string* te = headers.find("transfer-encoding");
  if (te && te->find("chunked") != std::string::npos) {
    std::string assembled;
    for (;;) {
      std::string_view size_line;
      if (reader.next(&size_line, limits.max_line) !=
          LineReader::Verdict::kOk) {
        return ParseError{"bad_chunk", "missing chunk-size line"};
      }
      // Ignore chunk extensions after ';'.
      const auto semi = size_line.find(';');
      if (semi != std::string_view::npos) size_line = size_line.substr(0, semi);
      if (size_line.empty() || size_line.size() > 8) {
        return ParseError{"bad_chunk", "bad chunk-size length"};
      }
      std::size_t chunk = 0;
      for (const char c : size_line) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return ParseError{"bad_chunk", "non-hex chunk size"};
        chunk = chunk * 16 + static_cast<std::size_t>(digit);
      }
      if (chunk == 0) {
        // Last chunk; a single trailing CRLF ends the message (no trailer
        // support — a trailer here is treated as garbage and rejected).
        std::string_view trailer;
        if (reader.next(&trailer, limits.max_line) !=
                LineReader::Verdict::kOk ||
            !trailer.empty()) {
          return ParseError{"bad_chunk", "missing final CRLF"};
        }
        *body = Body(std::string_view(assembled));
        return std::nullopt;
      }
      if (assembled.size() + chunk > limits.max_body) {
        return ParseError{"body_too_large", "chunked body exceeds limit"};
      }
      if (reader.wire.size() - reader.pos < chunk + 2) {
        return ParseError{"bad_chunk", "chunk data truncated"};
      }
      assembled.append(reader.wire.substr(reader.pos, chunk));
      reader.pos += chunk;
      if (reader.wire.substr(reader.pos, 2) != "\r\n") {
        return ParseError{"bad_chunk", "chunk data not CRLF-terminated"};
      }
      reader.pos += 2;
    }
  }

  const std::string* cl = headers.find("content-length");
  if (cl) {
    if (cl->empty() || cl->size() > 12) {
      return ParseError{"bad_content_length", "unparseable content-length"};
    }
    for (const char c : *cl) {
      if (c < '0' || c > '9') {
        return ParseError{"bad_content_length", "unparseable content-length"};
      }
    }
    const auto length = static_cast<std::size_t>(std::atoll(cl->c_str()));
    if (length > limits.max_body) {
      return ParseError{"body_too_large", "declared body exceeds limit"};
    }
    if (reader.wire.size() - reader.pos < length) {
      return ParseError{"truncated", "body shorter than content-length"};
    }
    *body = Body(reader.wire.substr(reader.pos, length));
    reader.pos += length;
    return std::nullopt;
  }

  // No framing headers: everything remaining is the body.
  const std::string_view rest = reader.wire.substr(reader.pos);
  if (rest.size() > limits.max_body) {
    return ParseError{"body_too_large", "unframed body exceeds limit"};
  }
  *body = Body(rest);
  reader.pos = reader.wire.size();
  return std::nullopt;
}

}  // namespace

void serialize_to(const Request& req, std::string& out) {
  out.clear();
  const std::string body = body_text(req.body);
  out += to_string(req.method);
  out += ' ';
  out += req.path;
  out += " HTTP/1.1\r\n";
  append_headers(out, req.headers, body.size());
  out += body;
}

void serialize_to(const Response& resp, std::string& out) {
  out.clear();
  const std::string body = body_text(resp.body);
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += status_text(resp.status);
  out += "\r\n";
  append_headers(out, resp.headers, body.size());
  out += body;
}

std::string serialize(const Request& req) {
  std::string out;
  serialize_to(req, out);
  return out;
}

std::string serialize(const Response& resp) {
  std::string out;
  serialize_to(resp, out);
  return out;
}

util::Result<Request> parse_request(std::string_view wire,
                                    const ParseLimits& limits) {
  LineReader reader{wire};
  std::string_view start_line;
  switch (reader.next(&start_line, limits.max_line)) {
    case LineReader::Verdict::kTruncated:
      return util::Result<Request>::failure("truncated",
                                            "no complete request line");
    case LineReader::Verdict::kTooLong:
      return util::Result<Request>::failure("line_too_long",
                                            "request line exceeds limit");
    case LineReader::Verdict::kOk:
      break;
  }
  const auto sp1 = start_line.find(' ');
  const auto sp2 =
      sp1 == std::string_view::npos ? sp1 : start_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return util::Result<Request>::failure("bad_request_line",
                                          "expected METHOD SP PATH SP VER");
  }
  const auto method = method_from_string(start_line.substr(0, sp1));
  const std::string_view path = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = start_line.substr(sp2 + 1);
  if (!method || path.empty() || path.front() != '/' ||
      version.rfind("HTTP/", 0) != 0) {
    return util::Result<Request>::failure("bad_request_line",
                                          "unrecognized method/path/version");
  }
  Request req;
  req.method = *method;
  req.path = std::string(path);
  if (const auto err = parse_headers(reader, &req.headers, limits)) {
    return util::Result<Request>::failure(err->code, err->message);
  }
  if (const auto err = parse_body(reader, req.headers, &req.body, limits)) {
    return util::Result<Request>::failure(err->code, err->message);
  }
  return req;
}

util::Result<Response> parse_response(std::string_view wire,
                                      const ParseLimits& limits) {
  LineReader reader{wire};
  std::string_view status_line;
  switch (reader.next(&status_line, limits.max_line)) {
    case LineReader::Verdict::kTruncated:
      return util::Result<Response>::failure("truncated",
                                             "no complete status line");
    case LineReader::Verdict::kTooLong:
      return util::Result<Response>::failure("line_too_long",
                                             "status line exceeds limit");
    case LineReader::Verdict::kOk:
      break;
  }
  const auto sp1 = status_line.find(' ');
  if (status_line.rfind("HTTP/", 0) != 0 || sp1 == std::string_view::npos ||
      status_line.size() < sp1 + 4) {
    return util::Result<Response>::failure("bad_status_line",
                                           "expected HTTP/x.y SP code");
  }
  int status = 0;
  for (std::size_t i = sp1 + 1; i < sp1 + 4; ++i) {
    const char c = status_line[i];
    if (c < '0' || c > '9') {
      return util::Result<Response>::failure("bad_status_line",
                                             "non-numeric status code");
    }
    status = status * 10 + (c - '0');
  }
  if (status < 100 || status > 599) {
    return util::Result<Response>::failure("bad_status_line",
                                           "status code out of range");
  }
  Response resp;
  resp.status = status;
  if (const auto err = parse_headers(reader, &resp.headers, limits)) {
    return util::Result<Response>::failure(err->code, err->message);
  }
  if (const auto err = parse_body(reader, resp.headers, &resp.body, limits)) {
    return util::Result<Response>::failure(err->code, err->message);
  }
  return resp;
}

}  // namespace hpop::http
