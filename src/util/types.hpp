#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hpop::util {

/// Raw byte buffer used throughout the code base for wire data, file
/// contents, keys and digests.
using Bytes = std::vector<std::uint8_t>;

/// Converts a string to bytes (no encoding transformation, byte-for-byte).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Converts bytes to a std::string (byte-for-byte).
inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace hpop::util
