#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace hpop::util {

/// Shared retry policy: exponential backoff with full jitter, capped per-try
/// backoff, an attempt ceiling, and an overall deadline. Services that must
/// survive chaos (HTTP fetches, attic health writes, DCol rejoin) all pull
/// their schedules from here so recovery behaviour is tuned in one place.
///
/// Backoff for attempt n (1-based; the first retry is attempt 1) is
///   base = initial_backoff * multiplier^(n-1), clamped to max_backoff,
/// then jittered to uniform[base*(1-jitter), base] using the caller's
/// seeded Rng — deterministic like everything else in the simulator.
struct RetryPolicy {
  int max_attempts = 3;  // total tries including the first
  Duration initial_backoff = 200 * kMillisecond;
  double multiplier = 2.0;
  double jitter = 0.5;  // fraction of the backoff randomised away
  Duration max_backoff = 10 * kSecond;
  /// Overall budget measured from the first attempt; 0 = no deadline.
  Duration deadline = 0;

  static RetryPolicy none() { return RetryPolicy{1, 0, 1.0, 0.0, 0, 0}; }

  /// Jittered delay before retry `attempt` (1-based). Callers pass their own
  /// Rng stream so retry draws never perturb unrelated subsystems.
  Duration backoff(int attempt, Rng& rng) const {
    double base = static_cast<double>(initial_backoff);
    for (int i = 1; i < attempt; ++i) base *= multiplier;
    base = std::min(base, static_cast<double>(max_backoff));
    const double j = std::clamp(jitter, 0.0, 1.0);
    const double lo = base * (1.0 - j);
    return static_cast<Duration>(j > 0.0 ? rng.uniform(lo, base) : base);
  }

  /// Backoff combined with a server-provided hold-off (Retry-After): the
  /// local schedule still jitters, but the retry never fires earlier than
  /// the server asked for.
  Duration backoff_with_hint(int attempt, Rng& rng,
                             Duration server_hint) const {
    return std::max(backoff(attempt, rng), server_hint);
  }

  /// Whether retry `attempt` (1-based) may be scheduled, given the time the
  /// first attempt started and the current time.
  bool may_retry(int attempt, TimePoint started, TimePoint now) const {
    if (attempt >= max_attempts) return false;
    if (deadline > 0 && now - started >= deadline) return false;
    return true;
  }
};

}  // namespace hpop::util
