#include "util/erasure.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hpop::util {

namespace gf256 {
namespace {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};
  Tables() {
    // Generator 2 over polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d).
    int x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  assert(a != 0);
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

}  // namespace gf256

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  if (k < 1 || m < 1 || k + m > 255) {
    throw std::invalid_argument("ReedSolomon: need 1<=k, 1<=m, k+m<=255");
  }
}

std::vector<std::uint8_t> ReedSolomon::matrix_row(int r) const {
  std::vector<std::uint8_t> row(static_cast<std::size_t>(k_), 0);
  if (r < k_) {
    row[static_cast<std::size_t>(r)] = 1;  // identity block: systematic code
  } else {
    // Cauchy block: C[i][j] = 1 / (x_i ^ y_j) with x_i = k + i, y_j = j.
    // x and y sets are disjoint, so x_i ^ y_j != 0.
    const int i = r - k_;
    for (int j = 0; j < k_; ++j) {
      const auto xi = static_cast<std::uint8_t>(k_ + i);
      const auto yj = static_cast<std::uint8_t>(j);
      row[static_cast<std::size_t>(j)] =
          gf256::inv(static_cast<std::uint8_t>(xi ^ yj));
    }
  }
  return row;
}

std::vector<Bytes> ReedSolomon::encode(const Bytes& data) const {
  const std::size_t shard_len =
      (data.size() + static_cast<std::size_t>(k_) - 1) /
      static_cast<std::size_t>(k_);
  // Zero-pad so the data splits into k equal shards; the caller keeps the
  // original length.
  std::vector<Bytes> shards(static_cast<std::size_t>(k_ + m_));
  for (int i = 0; i < k_; ++i) {
    Bytes& s = shards[static_cast<std::size_t>(i)];
    s.assign(shard_len, 0);
    const std::size_t off = static_cast<std::size_t>(i) * shard_len;
    for (std::size_t j = 0; j < shard_len && off + j < data.size(); ++j) {
      s[j] = data[off + j];
    }
  }
  for (int r = k_; r < k_ + m_; ++r) {
    const auto row = matrix_row(r);
    Bytes& out = shards[static_cast<std::size_t>(r)];
    out.assign(shard_len, 0);
    for (int j = 0; j < k_; ++j) {
      const std::uint8_t coeff = row[static_cast<std::size_t>(j)];
      if (coeff == 0) continue;
      const Bytes& in = shards[static_cast<std::size_t>(j)];
      for (std::size_t b = 0; b < shard_len; ++b) {
        out[b] = gf256::add(out[b], gf256::mul(coeff, in[b]));
      }
    }
  }
  return shards;
}

Result<Bytes> ReedSolomon::decode(
    const std::vector<std::optional<Bytes>>& shards,
    std::size_t original_size) const {
  if (shards.size() != static_cast<std::size_t>(k_ + m_)) {
    return Result<Bytes>::failure("bad_arg", "wrong shard vector size");
  }
  std::vector<int> have;
  for (int i = 0; i < k_ + m_; ++i) {
    if (shards[static_cast<std::size_t>(i)].has_value()) have.push_back(i);
  }
  if (static_cast<int>(have.size()) < k_) {
    return Result<Bytes>::failure(
        "insufficient_shards",
        "need " + std::to_string(k_) + " shards, have " +
            std::to_string(have.size()));
  }
  have.resize(static_cast<std::size_t>(k_));
  const std::size_t shard_len = shards[static_cast<std::size_t>(have[0])]->size();
  for (int idx : have) {
    if (shards[static_cast<std::size_t>(idx)]->size() != shard_len) {
      return Result<Bytes>::failure("bad_arg", "inconsistent shard sizes");
    }
  }

  // Solve A * D = S where A is the k x k submatrix of the generator for the
  // rows we hold and S the corresponding shards. Gauss–Jordan over GF(256).
  const auto n = static_cast<std::size_t>(k_);
  std::vector<std::vector<std::uint8_t>> a(n);
  std::vector<Bytes> s(n);
  for (std::size_t r = 0; r < n; ++r) {
    a[r] = matrix_row(have[r]);
    s[r] = *shards[static_cast<std::size_t>(have[r])];
  }

  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot; guaranteed to exist because any k rows of [I; Cauchy]
    // are linearly independent.
    std::size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) {
      return Result<Bytes>::failure("singular", "generator submatrix singular");
    }
    std::swap(a[pivot], a[col]);
    std::swap(s[pivot], s[col]);

    const std::uint8_t inv_p = gf256::inv(a[col][col]);
    for (std::size_t j = 0; j < n; ++j) a[col][j] = gf256::mul(a[col][j], inv_p);
    for (std::size_t b = 0; b < shard_len; ++b) {
      s[col][b] = gf256::mul(s[col][b], inv_p);
    }

    for (std::size_t r = 0; r < n; ++r) {
      if (r == col || a[r][col] == 0) continue;
      const std::uint8_t factor = a[r][col];
      for (std::size_t j = 0; j < n; ++j) {
        a[r][j] = gf256::add(a[r][j], gf256::mul(factor, a[col][j]));
      }
      for (std::size_t b = 0; b < shard_len; ++b) {
        s[r][b] = gf256::add(s[r][b], gf256::mul(factor, s[col][b]));
      }
    }
  }

  Bytes out;
  out.reserve(n * shard_len);
  for (std::size_t r = 0; r < n; ++r) {
    out.insert(out.end(), s[r].begin(), s[r].end());
  }
  if (original_size > out.size()) {
    return Result<Bytes>::failure("bad_arg", "original_size exceeds data");
  }
  out.resize(original_size);
  return out;
}

double erasure_availability(int k, int m, double p) {
  // P[at least k of k+m independent Bernoulli(p) shards are up].
  const int n = k + m;
  double total = 0.0;
  for (int i = k; i <= n; ++i) {
    // C(n, i) via lgamma for numeric stability at larger n.
    const double log_c = std::lgamma(n + 1.0) - std::lgamma(i + 1.0) -
                         std::lgamma(n - i + 1.0);
    total += std::exp(log_c + i * std::log(p) + (n - i) * std::log1p(-p));
  }
  return std::min(1.0, total);
}

}  // namespace hpop::util
