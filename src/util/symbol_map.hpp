#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "util/symbol.hpp"

namespace hpop::util {

/// Flat associative container keyed by interned Symbols — the replacement
/// for the per-node `std::map<std::string, V>` bookkeeping that used to
/// live in every directory, origin, peer and appliance. Two properties
/// matter at metro scale:
///
///  - *Compact and allocation-light*: entries live contiguously in one
///    vector (no per-entry tree node), keys are 4-byte interned ids, and a
///    lookup never builds a std::string.
///
///  - *Deterministic iteration*: iteration follows insertion order, which
///    is simulation order — never Symbol-id order, which varies with the
///    process-wide intern history (the sweeper's worker threads intern
///    concurrently). Anything a service emits while walking a SymbolMap is
///    therefore byte-identical across runs and `--jobs` values.
///
/// Lookups go through a lazily (re)sorted id index: amortized O(log n)
/// find, O(1) amortized insert (index resort deferred to the next find),
/// O(n) erase. Pointers into the map are invalidated by insert/erase, like
/// a vector's.
template <typename V>
class SymbolMap {
 public:
  using Entry = std::pair<Symbol, V>;

  V* find(Symbol key) {
    const std::size_t pos = index_of(key);
    return pos == kNpos ? nullptr : &items_[pos].second;
  }
  const V* find(Symbol key) const {
    const std::size_t pos = index_of(key);
    return pos == kNpos ? nullptr : &items_[pos].second;
  }
  V* find(std::string_view key) { return find(Symbol::intern(key)); }
  const V* find(std::string_view key) const {
    return find(Symbol::intern(key));
  }
  bool contains(Symbol key) const { return index_of(key) != kNpos; }
  bool contains(std::string_view key) const {
    return contains(Symbol::intern(key));
  }

  /// Value for `key`, default-constructed and appended on first access.
  V& operator[](Symbol key) {
    if (V* v = find(key)) return *v;
    items_.emplace_back(key, V{});
    index_.push_back(static_cast<std::uint32_t>(items_.size() - 1));
    sorted_ = false;
    return items_.back().second;
  }
  V& operator[](std::string_view key) { return (*this)[Symbol::intern(key)]; }

  V& insert_or_assign(Symbol key, V value) {
    V& slot = (*this)[key];
    slot = std::move(value);
    return slot;
  }
  V& insert_or_assign(std::string_view key, V value) {
    return insert_or_assign(Symbol::intern(key), std::move(value));
  }

  /// Removes `key`; later entries keep their insertion order. Returns
  /// whether anything was erased.
  bool erase(Symbol key) {
    const std::size_t pos = index_of(key);
    if (pos == kNpos) return false;
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(pos));
    rebuild_index();
    return true;
  }
  bool erase(std::string_view key) { return erase(Symbol::intern(key)); }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void clear() {
    items_.clear();
    index_.clear();
    sorted_ = true;
  }
  void reserve(std::size_t n) {
    items_.reserve(n);
    index_.reserve(n);
  }

  /// Iteration is insertion-ordered (see class comment).
  typename std::vector<Entry>::iterator begin() { return items_.begin(); }
  typename std::vector<Entry>::iterator end() { return items_.end(); }
  typename std::vector<Entry>::const_iterator begin() const {
    return items_.begin();
  }
  typename std::vector<Entry>::const_iterator end() const {
    return items_.end();
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  void rebuild_index() {
    index_.resize(items_.size());
    for (std::size_t i = 0; i < items_.size(); ++i) {
      index_[i] = static_cast<std::uint32_t>(i);
    }
    sorted_ = false;
  }

  void sort_index() const {
    std::sort(index_.begin(), index_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return items_[a].first.id() < items_[b].first.id();
              });
    sorted_ = true;
  }

  std::size_t index_of(Symbol key) const {
    if (items_.empty()) return kNpos;
    if (!sorted_) sort_index();
    const auto it = std::lower_bound(
        index_.begin(), index_.end(), key.id(),
        [this](std::uint32_t pos, std::uint32_t id) {
          return items_[pos].first.id() < id;
        });
    if (it == index_.end() || items_[*it].first != key) return kNpos;
    return *it;
  }

  std::vector<Entry> items_;                  // insertion order
  mutable std::vector<std::uint32_t> index_;  // positions, sorted by id
  mutable bool sorted_ = true;
};

}  // namespace hpop::util
