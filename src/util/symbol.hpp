#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

namespace hpop::util {

/// Interned lowercase identifier, built for HTTP header names and reused
/// as the key type for flat service-state containers (SymbolMap). The ~30
/// names the services actually emit live in a compile-time table, so
/// interning or comparing them never allocates and never takes a lock;
/// anything else goes to a mutex-protected dynamic table with a hash index
/// (one O(1) lookup per intern; process-local ids — never serialized, so
/// cross-thread assignment order is free to vary without breaking
/// determinism, as long as nothing *orders* observable work by id).
class Symbol {
 public:
  Symbol() = default;  // the empty symbol

  /// Canonical symbol for `name`, matched case-insensitively; the stored
  /// canonical form is lowercase. Allocation-free for known names.
  static Symbol intern(std::string_view name);

  /// Canonical (lowercase) text. Valid for the process lifetime.
  std::string_view str() const;

  bool empty() const { return id_ == 0; }
  bool operator==(Symbol o) const { return id_ == o.id_; }
  bool operator!=(Symbol o) const { return id_ != o.id_; }

  /// Process-local intern id. Stable for the process lifetime; only ever
  /// use it for equality-style indexing (hash tables, sorted-by-id search
  /// structures). Iterating or emitting anything in id order would leak
  /// intern order — which varies across thread schedules — into output.
  std::uint32_t id() const { return id_; }

  /// Case-insensitive comparison helpers that never allocate.
  static bool iequals(std::string_view a, std::string_view b);

 private:
  explicit Symbol(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;  // 0: empty; [1, kKnown]: static; above: dynamic
};

}  // namespace hpop::util

namespace std {
template <>
struct hash<hpop::util::Symbol> {
  size_t operator()(hpop::util::Symbol s) const noexcept {
    return std::hash<std::uint32_t>()(s.id());
  }
};
}  // namespace std
