#pragma once

#include <cstdint>
#include <string_view>

namespace hpop::util {

/// Interned lowercase identifier, built for HTTP header names. The ~30
/// names the services actually emit live in a compile-time table, so
/// interning or comparing them never allocates and never takes a lock;
/// anything else goes to a mutex-protected dynamic table (process-local
/// ids — never serialized, so cross-thread assignment order is free to
/// vary without breaking determinism).
class Symbol {
 public:
  Symbol() = default;  // the empty symbol

  /// Canonical symbol for `name`, matched case-insensitively; the stored
  /// canonical form is lowercase. Allocation-free for known names.
  static Symbol intern(std::string_view name);

  /// Canonical (lowercase) text. Valid for the process lifetime.
  std::string_view str() const;

  bool empty() const { return id_ == 0; }
  bool operator==(Symbol o) const { return id_ == o.id_; }
  bool operator!=(Symbol o) const { return id_ != o.id_; }

  /// Case-insensitive comparison helpers that never allocate.
  static bool iequals(std::string_view a, std::string_view b);

 private:
  explicit Symbol(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;  // 0: empty; [1, kKnown]: static; above: dynamic
};

}  // namespace hpop::util
