#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hpop::util {

/// Move-only callable wrapper with small-buffer-optimized storage.
///
/// The simulator schedules millions of closures per run; `std::function`
/// heap-allocates any capture that is not trivially copyable (libstdc++'s
/// small-object path requires trivial copyability, which a `weak_ptr` — the
/// canonical timer capture — fails). InlineFunction stores any callable up
/// to `InlineBytes` in place regardless of triviality, and, being move-only,
/// lets the event heap move closures around without the copyability tax
/// `std::function` imposes on every capture.
///
/// Callables larger than `InlineBytes` fall back to one heap allocation and
/// are still moved as a pointer steal afterwards.
template <typename Signature, std::size_t InlineBytes = 64>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() noexcept : ops_(nullptr) {}
  InlineFunction(std::nullptr_t) noexcept : ops_(nullptr) {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {
    if constexpr (sizeof(D) <= InlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      storage_.heap = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(target(), std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-construct *src into dst, destroying src. Null for heap-stored
    /// callables, whose moves are pointer steals.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* obj, Args&&... args) -> R {
        return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* obj) { static_cast<D*>(obj)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* obj, Args&&... args) -> R {
        return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
      },
      nullptr,
      [](void* obj) { delete static_cast<D*>(obj); },
  };

  void* target() noexcept {
    return ops_ != nullptr && ops_->relocate != nullptr
               ? static_cast<void*>(storage_.buf)
               : storage_.heap;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
    }
  }

  void steal(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage_.buf, other.storage_.buf);
      } else {
        storage_.heap = other.storage_.heap;
      }
      other.ops_ = nullptr;
    }
  }

  union Storage {
    alignas(std::max_align_t) unsigned char buf[InlineBytes];
    void* heap;
  } storage_;
  const Ops* ops_ = nullptr;
};

}  // namespace hpop::util
