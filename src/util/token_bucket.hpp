#pragma once

#include <cstddef>

#include "util/time.hpp"

namespace hpop::util {

/// Token-bucket rate limiter over simulated time. Internet@home's demand
/// smoother uses it to cap the upstream bytes the prefetcher may consume in
/// any window, and NoCDN peers use it to model serving-capacity limits.
class TokenBucket {
 public:
  /// rate: token refill in tokens/second; capacity: burst size in tokens.
  TokenBucket(double rate, double capacity);

  /// Attempts to take `tokens` at simulated time `now`; returns true and
  /// debits on success.
  bool try_take(double tokens, TimePoint now);

  /// Debits unconditionally; the level may go negative (deficit-counter
  /// shaping: callers gate on level() >= 0 and charge actual costs after
  /// the fact, which handles work whose cost is only known afterwards —
  /// e.g. a refresh that turns out to be a 304).
  void force_take(double tokens, TimePoint now);

  /// Time at which `tokens` will be available (>= now); callers can schedule
  /// a retry for exactly then.
  TimePoint available_at(double tokens, TimePoint now);

  double level(TimePoint now);
  double rate() const { return rate_; }
  void set_rate(double rate) { rate_ = rate; }

 private:
  void refill(TimePoint now);

  double rate_;
  double capacity_;
  double tokens_;
  TimePoint last_ = 0;
};

}  // namespace hpop::util
