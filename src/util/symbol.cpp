#include "util/symbol.hpp"

#include <cassert>
#include <deque>
#include <mutex>
#include <string>

namespace hpop::util {

namespace {

constexpr char to_lower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Every header name the HPoP services emit or look up, pre-lowercased.
/// Order is id assignment only (ids are process-local); keep appending.
constexpr std::string_view kKnown[] = {
    "host",
    "content-length",
    "content-type",
    "cache-control",
    "retry-after",
    "range",
    "content-range",
    "transfer-encoding",
    "etag",
    "if-match",
    "if-none-match",
    "if-modified-since",
    "last-modified",
    "if",
    "lock-token",
    "timeout",
    "depth",
    "destination",
    "overwrite",
    "authorization",
    "www-authenticate",
    "x-capability",
    "x-coop",
    "connection",
    "accept",
    "accept-encoding",
    "content-encoding",
    "date",
    "expires",
    "age",
    "location",
    "server",
    "user-agent",
    "vary",
};
constexpr std::uint32_t kKnownCount =
    static_cast<std::uint32_t>(sizeof(kKnown) / sizeof(kKnown[0]));

/// Dynamic table for names outside the known set (rare: hostile input or
/// future extensions). A deque keeps element addresses stable so str()
/// views stay valid; the mutex makes the sweeper's worker threads safe.
std::mutex g_dynamic_mu;
std::deque<std::string>& dynamic_table() {
  static std::deque<std::string> table;
  return table;
}

}  // namespace

bool Symbol::iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (to_lower(a[i]) != to_lower(b[i])) return false;
  }
  return true;
}

Symbol Symbol::intern(std::string_view name) {
  if (name.empty()) return Symbol{};
  for (std::uint32_t i = 0; i < kKnownCount; ++i) {
    if (iequals(kKnown[i], name)) return Symbol{i + 1};
  }
  std::string canonical(name);
  for (char& c : canonical) c = to_lower(c);
  std::lock_guard<std::mutex> lock(g_dynamic_mu);
  auto& table = dynamic_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i] == canonical) {
      return Symbol{kKnownCount + 1 + static_cast<std::uint32_t>(i)};
    }
  }
  table.push_back(std::move(canonical));
  return Symbol{kKnownCount + static_cast<std::uint32_t>(table.size())};
}

std::string_view Symbol::str() const {
  if (id_ == 0) return {};
  if (id_ <= kKnownCount) return kKnown[id_ - 1];
  std::lock_guard<std::mutex> lock(g_dynamic_mu);
  return dynamic_table()[id_ - kKnownCount - 1];
}

}  // namespace hpop::util
