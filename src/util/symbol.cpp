#include "util/symbol.hpp"

#include <cassert>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

namespace hpop::util {

namespace {

constexpr char to_lower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Every header name the HPoP services emit or look up, pre-lowercased.
/// Order is id assignment only (ids are process-local); keep appending.
constexpr std::string_view kKnown[] = {
    "host",
    "content-length",
    "content-type",
    "cache-control",
    "retry-after",
    "range",
    "content-range",
    "transfer-encoding",
    "etag",
    "if-match",
    "if-none-match",
    "if-modified-since",
    "last-modified",
    "if",
    "lock-token",
    "timeout",
    "depth",
    "destination",
    "overwrite",
    "authorization",
    "www-authenticate",
    "x-capability",
    "x-coop",
    "connection",
    "accept",
    "accept-encoding",
    "content-encoding",
    "date",
    "expires",
    "age",
    "location",
    "server",
    "user-agent",
    "vary",
};
constexpr std::uint32_t kKnownCount =
    static_cast<std::uint32_t>(sizeof(kKnown) / sizeof(kKnown[0]));

/// Dynamic table for names outside the known set: hostile input, and —
/// since service bookkeeping moved onto SymbolMap — household names,
/// provider vhosts and catalog URLs, which at metro scale number in the
/// hundreds of thousands. A deque keeps element addresses stable so str()
/// views stay valid; the unordered_map index (string_views into the deque)
/// makes each intern one hash lookup instead of a linear table scan; the
/// mutex makes the sweeper's worker threads safe.
std::mutex g_dynamic_mu;
struct DynamicTable {
  std::deque<std::string> names;
  std::unordered_map<std::string_view, std::uint32_t> index;  // name -> id
};
DynamicTable& dynamic_table() {
  static DynamicTable table;
  return table;
}

}  // namespace

bool Symbol::iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (to_lower(a[i]) != to_lower(b[i])) return false;
  }
  return true;
}

Symbol Symbol::intern(std::string_view name) {
  if (name.empty()) return Symbol{};
  for (std::uint32_t i = 0; i < kKnownCount; ++i) {
    if (iequals(kKnown[i], name)) return Symbol{i + 1};
  }
  std::string canonical(name);
  for (char& c : canonical) c = to_lower(c);
  std::lock_guard<std::mutex> lock(g_dynamic_mu);
  auto& table = dynamic_table();
  const auto it = table.index.find(std::string_view(canonical));
  if (it != table.index.end()) return Symbol{it->second};
  table.names.push_back(std::move(canonical));
  const auto id =
      kKnownCount + static_cast<std::uint32_t>(table.names.size());
  table.index.emplace(std::string_view(table.names.back()), id);
  return Symbol{id};
}

std::string_view Symbol::str() const {
  if (id_ == 0) return {};
  if (id_ <= kKnownCount) return kKnown[id_ - 1];
  std::lock_guard<std::mutex> lock(g_dynamic_mu);
  return dynamic_table().names[id_ - kKnownCount - 1];
}

}  // namespace hpop::util
