#pragma once

#include <cstdint>
#include <string>

namespace hpop::util {

/// Simulated time is kept in integer nanoseconds for determinism: no
/// floating-point drift, total ordering of events, and enough range for
/// ~292 years of simulated time.
using Duration = std::int64_t;   // nanoseconds
using TimePoint = std::int64_t;  // nanoseconds since simulation start

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

inline constexpr Duration milliseconds(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}
inline constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}
inline constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
inline constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Link and access rates are expressed in bits per second.
using BitRate = double;

inline constexpr BitRate kKbps = 1e3;
inline constexpr BitRate kMbps = 1e6;
inline constexpr BitRate kGbps = 1e9;

/// Time to serialize `bytes` onto a link of rate `rate` (bits/sec).
inline constexpr Duration transmission_delay(std::size_t bytes, BitRate rate) {
  return static_cast<Duration>(static_cast<double>(bytes) * 8.0 /
                               rate * static_cast<double>(kSecond));
}

/// Human-readable rendering, e.g. "12.5ms" or "3.2s", for logs and tables.
std::string format_duration(Duration d);

}  // namespace hpop::util
