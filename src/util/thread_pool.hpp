#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpop::util {

/// Fixed-size worker pool for embarrassingly parallel batches (one
/// Simulator per task). Tasks are independent by contract — the pool
/// provides no ordering guarantees, so anything order-sensitive (like
/// merging sweep results by seed) belongs to the caller.
class ThreadPool {
 public:
  /// threads == 0 runs every task inline on the submitting thread; the
  /// serial reference mode the sweeper's determinism check compares with.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  /// Runs `task` on worker `worker % thread_count()` — and only there.
  /// The parallel simulation engine pins every shard to one worker for
  /// the engine's lifetime, so state a shard binds lazily to its servicing
  /// thread (thread_local telemetry registries, packet pools) is touched
  /// by exactly one thread between barriers. In inline mode (threads == 0)
  /// the task runs on the caller, like submit().
  void submit_pinned(std::size_t worker, std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop(std::size_t index);

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::deque<std::function<void()>>> pinned_;  // one per worker
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hpop::util
