#pragma once

#include <sstream>
#include <string>

#include "util/time.hpp"

namespace hpop::util {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration. Tests and benches default to kWarn so
/// output stays reviewable; examples raise it to kInfo to narrate.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Lets log lines carry simulated time. The active Simulator installs
/// itself; nullptr reverts to wall-clock-free output.
void set_log_clock(const TimePoint* now);

void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Streaming log entry:  LOG(kInfo, "tcp") << "cwnd=" << cwnd;
class LogEntry {
 public:
  LogEntry(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogEntry() { log_line(level_, component_, stream_.str()); }
  LogEntry(const LogEntry&) = delete;
  LogEntry& operator=(const LogEntry&) = delete;

  template <typename T>
  LogEntry& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace hpop::util

#define HPOP_LOG(level, component) \
  if (::hpop::util::log_level() <= ::hpop::util::LogLevel::level) \
  ::hpop::util::LogEntry(::hpop::util::LogLevel::level, component)
