#include "util/token_bucket.hpp"

#include <algorithm>
#include <cassert>

namespace hpop::util {

TokenBucket::TokenBucket(double rate, double capacity)
    : rate_(rate), capacity_(capacity), tokens_(capacity) {
  assert(rate > 0 && capacity > 0);
}

void TokenBucket::refill(TimePoint now) {
  assert(now >= last_);
  tokens_ = std::min(capacity_,
                     tokens_ + rate_ * to_seconds(now - last_));
  last_ = now;
}

bool TokenBucket::try_take(double tokens, TimePoint now) {
  refill(now);
  if (tokens_ + 1e-9 >= tokens) {
    tokens_ -= tokens;
    return true;
  }
  return false;
}

void TokenBucket::force_take(double tokens, TimePoint now) {
  refill(now);
  tokens_ -= tokens;
}

TimePoint TokenBucket::available_at(double tokens, TimePoint now) {
  refill(now);
  if (tokens_ >= tokens) return now;
  const double deficit = tokens - tokens_;
  return now + seconds(deficit / rate_);
}

double TokenBucket::level(TimePoint now) {
  refill(now);
  return tokens_;
}

}  // namespace hpop::util
