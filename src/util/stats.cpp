#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace hpop::util {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Summary::add_n(double x, std::size_t n) {
  samples_.insert(samples_.end(), n, x);
  sorted_valid_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Summary::sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Summary::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Summary::percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double Summary::fraction_above(double x) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(sorted_.end() - it) /
         static_cast<double>(sorted_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << "| " << cells[i];
      os << std::string(widths[i] - cells[i].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << "|" << std::string(widths[i] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace hpop::util
