#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/types.hpp"

namespace hpop::util {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4). Self-contained; validated against the
/// NIST test vectors in the unit tests. Used for NoCDN object integrity,
/// capability tokens, and erasure-shard checksums.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(std::string_view s) {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  Digest finish();

  /// One-shot helpers.
  static Digest digest(const Bytes& data);
  static Digest digest(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104). Used to sign NoCDN usage records and HPoP
/// capability tokens.
Digest hmac_sha256(const Bytes& key, const Bytes& message);
Digest hmac_sha256(const Bytes& key, std::string_view message);

/// Constant-time digest comparison (the simulation does not have timing
/// side channels, but the API models the correct idiom).
bool digest_equal(const Digest& a, const Digest& b);

std::string digest_hex(const Digest& d);

}  // namespace hpop::util
