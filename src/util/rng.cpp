#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hpop::util {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa; guaranteed in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Modulo bias is negligible for n << 2^64 (all our uses).
  return next_u64() % n;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  return -mean * std::log1p(-uniform());
}

double Rng::pareto(double scale, double shape) {
  return scale / std::pow(1.0 - uniform(), 1.0 / shape);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; one draw per call keeps the stream simple and deterministic.
  const double u1 = 1.0 - uniform();  // avoid log(0)
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.sample(*this);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace hpop::util
