#include "util/logging.hpp"

#include <cstdio>

namespace hpop::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
thread_local const TimePoint* g_now = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_clock(const TimePoint* now) { g_now = now; }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < g_level) return;
  if (g_now != nullptr) {
    std::fprintf(stderr, "[%12.6fs] %-5s %-10s %s\n", to_seconds(*g_now),
                 level_name(level), component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "%-5s %-10s %s\n", level_name(level),
                 component.c_str(), message.c_str());
  }
}

std::string format_duration(Duration d) {
  char buf[64];
  if (d < kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d));
  } else if (d < kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.2fus",
                  static_cast<double>(d) / kMicrosecond);
  } else if (d < kSecond) {
    std::snprintf(buf, sizeof buf, "%.2fms", to_millis(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds(d));
  }
  return buf;
}

}  // namespace hpop::util
