#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hpop::util {

/// Accumulates samples and answers summary queries. Percentile queries sort
/// lazily; adding samples after a query is allowed.
class Summary {
 public:
  void add(double x);
  void add_n(double x, std::size_t n);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;
  /// q in [0, 1]; linear interpolation between order statistics.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }

  /// Fraction of samples strictly greater than x — the form of the CCZ
  /// claims ("exceed 10 Mbps 0.1% of the time").
  double fraction_above(double x) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Renders aligned text tables for the bench harnesses so that every
/// experiment prints uniformly formatted "paper-shape" rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string render() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpop::util
