#pragma once

#include <string>
#include <string_view>

#include "util/result.hpp"
#include "util/types.hpp"

namespace hpop::util {

/// Lowercase hex encode/decode.
std::string hex_encode(const Bytes& data);
Result<Bytes> hex_decode(std::string_view hex);

/// Standard base64 (RFC 4648, with padding). Used to serialize attic grant
/// tokens ("QR codes") and capability tokens into copyable strings.
std::string base64_encode(const Bytes& data);
Result<Bytes> base64_decode(std::string_view b64);

}  // namespace hpop::util
