#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace hpop::util {

/// Error payload carried by Result<T>: a machine-usable code plus a
/// human-readable message. Codes are free-form, short, stable strings
/// ("not_found", "timeout", "forbidden", ...) so callers can dispatch
/// without string-matching prose.
struct Error {
  std::string code;
  std::string message;
};

/// Minimal expected<T, Error> substitute (std::expected is C++23).
///
/// Used on paths where failure is an anticipated runtime outcome —
/// lookups that can miss, network operations that can time out —
/// as opposed to programming errors, which assert/throw.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}
  Result(Error error) : state_(std::move(error)) {}

  static Result failure(std::string code, std::string message) {
    return Result(Error{std::move(code), std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }
  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(state_);
  }

 private:
  std::variant<T, Error> state_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}

  static Status success() { return Status(); }
  static Status failure(std::string code, std::string message) {
    return Status(Error{std::move(code), std::move(message)});
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace hpop::util
