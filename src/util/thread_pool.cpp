#include "util/thread_pool.hpp"

namespace hpop::util {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // serial mode: run inline
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hpop::util
