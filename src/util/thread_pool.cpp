#include "util/thread_pool.hpp"

namespace hpop::util {

ThreadPool::ThreadPool(std::size_t threads) : pinned_(threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // serial mode: run inline
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::submit_pinned(std::size_t worker, std::function<void()> task) {
  if (workers_.empty()) {
    task();  // serial mode: run inline
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pinned_[worker % workers_.size()].push_back(std::move(task));
    ++in_flight_;
  }
  // Pinned work can only run on one thread, but waking everyone keeps the
  // wake logic trivial; idle workers go straight back to sleep.
  work_ready_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this, index] {
        return stopping_ || !queue_.empty() || !pinned_[index].empty();
      });
      if (!pinned_[index].empty()) {
        task = std::move(pinned_[index].front());
        pinned_[index].pop_front();
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // stopping_ and nothing left for this worker
      }
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hpop::util
