#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace hpop::util {

/// Vector with inline storage for the first N elements. HTTP messages
/// carry a handful of headers, so keeping them inline removes the
/// per-message map/vector allocation from the data plane; overflow spills
/// to the heap with the usual doubling growth.
template <typename T, std::size_t N>
class SmallVec {
 public:
  SmallVec() = default;

  SmallVec(const SmallVec& o) { assign_copy(o); }
  SmallVec(SmallVec&& o) noexcept { assign_move(std::move(o)); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      destroy();
      assign_copy(o);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      destroy();
      assign_move(std::move(o));
    }
    return *this;
  }
  ~SmallVec() { destroy(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T* slot = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }
  void push_back(T v) { emplace_back(std::move(v)); }

  /// Removes the element at `i`, preserving the order of the rest.
  void erase_at(std::size_t i) {
    for (std::size_t j = i + 1; j < size_; ++j) {
      data_[j - 1] = std::move(data_[j]);
    }
    data_[--size_].~T();
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

 private:
  T* inline_slots() { return std::launder(reinterpret_cast<T*>(inline_)); }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (data_ != inline_slots()) ::operator delete(data_);
    data_ = fresh;
    cap_ = new_cap;
  }

  void destroy() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    if (data_ != inline_slots()) ::operator delete(data_);
    data_ = inline_slots();
    size_ = 0;
    cap_ = N;
  }

  void assign_copy(const SmallVec& o) {
    reserve_exact(o.size_);
    for (std::size_t i = 0; i < o.size_; ++i) new (data_ + i) T(o.data_[i]);
    size_ = o.size_;
  }

  void assign_move(SmallVec&& o) noexcept {
    if (o.data_ != o.inline_slots()) {
      // Steal the heap buffer outright.
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = o.inline_slots();
      o.size_ = 0;
      o.cap_ = N;
      return;
    }
    for (std::size_t i = 0; i < o.size_; ++i) {
      new (data_ + i) T(std::move(o.data_[i]));
      o.data_[i].~T();
    }
    size_ = o.size_;
    o.size_ = 0;
  }

  void reserve_exact(std::size_t n) {
    if (n <= cap_) return;
    data_ = static_cast<T*>(::operator new(n * sizeof(T)));
    cap_ = n;
  }

  T* data_ = inline_slots();
  std::size_t size_ = 0;
  std::size_t cap_ = N;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace hpop::util
