#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace hpop::util {

/// GF(2^8) arithmetic with the 0x11d reducing polynomial (the field used by
/// most storage erasure codes). Tables are built once at static init.
namespace gf256 {
std::uint8_t add(std::uint8_t a, std::uint8_t b);  // == sub
std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t div(std::uint8_t a, std::uint8_t b);
std::uint8_t inv(std::uint8_t a);
}  // namespace gf256

/// Systematic Cauchy Reed–Solomon erasure code.
///
/// Splits data into `k` equal shards and produces `m` parity shards; any `k`
/// of the `k+m` shards reconstruct the original data. The composite matrix is
/// [I; C] with C a Cauchy matrix, for which every k×k row submatrix is
/// invertible — the property the decoder relies on.
///
/// The data attic (§IV-A "Data Availability") uses this to redundantly encode
/// backups across peer HPoPs.
class ReedSolomon {
 public:
  /// Requires 1 <= k, 1 <= m, and k + m <= 255.
  ReedSolomon(int k, int m);

  int data_shards() const { return k_; }
  int parity_shards() const { return m_; }
  int total_shards() const { return k_ + m_; }

  /// Encodes `data` into k+m shards. Shards embed no metadata; the caller
  /// records the original size (needed to strip padding on decode).
  std::vector<Bytes> encode(const Bytes& data) const;

  /// Reconstructs the original data from any >= k shards. `shards[i]` must
  /// hold shard i or be std::nullopt if that shard is lost.
  Result<Bytes> decode(const std::vector<std::optional<Bytes>>& shards,
                       std::size_t original_size) const;

 private:
  /// Row `r` of the (k+m) x k composite generator matrix.
  std::vector<std::uint8_t> matrix_row(int r) const;

  int k_;
  int m_;
};

/// Probability that data encoded (k, m) is reconstructable when each of the
/// k+m shard-holding peers is independently available with probability `p`.
/// Used by the availability analysis in bench_attic_availability (E5).
double erasure_availability(int k, int m, double p);

}  // namespace hpop::util
