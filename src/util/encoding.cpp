#include "util/encoding.hpp"

#include <array>

namespace hpop::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kB64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string hex_encode(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Result<Bytes> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Result<Bytes>::failure("bad_encoding", "odd hex length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Result<Bytes>::failure("bad_encoding", "invalid hex digit");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base64_encode(const Bytes& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t v = (std::uint32_t(data[i]) << 16) |
                            (std::uint32_t(data[i + 1]) << 8) |
                            std::uint32_t(data[i + 2]);
    out.push_back(kB64Digits[(v >> 18) & 0x3f]);
    out.push_back(kB64Digits[(v >> 12) & 0x3f]);
    out.push_back(kB64Digits[(v >> 6) & 0x3f]);
    out.push_back(kB64Digits[v & 0x3f]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t v = std::uint32_t(data[i]) << 16;
    out.push_back(kB64Digits[(v >> 18) & 0x3f]);
    out.push_back(kB64Digits[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t v =
        (std::uint32_t(data[i]) << 16) | (std::uint32_t(data[i + 1]) << 8);
    out.push_back(kB64Digits[(v >> 18) & 0x3f]);
    out.push_back(kB64Digits[(v >> 12) & 0x3f]);
    out.push_back(kB64Digits[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> base64_decode(std::string_view b64) {
  if (b64.size() % 4 != 0) {
    return Result<Bytes>::failure("bad_encoding", "base64 length not 4k");
  }
  Bytes out;
  out.reserve(b64.size() / 4 * 3);
  for (std::size_t i = 0; i < b64.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = b64[i + j];
      if (c == '=') {
        // Padding may only appear in the last group's final positions.
        if (i + 4 != b64.size() || j < 2) {
          return Result<Bytes>::failure("bad_encoding", "misplaced padding");
        }
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) {
          return Result<Bytes>::failure("bad_encoding", "data after padding");
        }
        vals[j] = b64_value(c);
        if (vals[j] < 0) {
          return Result<Bytes>::failure("bad_encoding", "invalid base64 char");
        }
      }
    }
    const std::uint32_t v = (std::uint32_t(vals[0]) << 18) |
                            (std::uint32_t(vals[1]) << 12) |
                            (std::uint32_t(vals[2]) << 6) |
                            std::uint32_t(vals[3]);
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(v >> 8));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

}  // namespace hpop::util
