#pragma once

#include <cstdint>
#include <vector>

namespace hpop::util {

/// Deterministic pseudo-random source (xoshiro256** core). All stochastic
/// behaviour in the simulator — link loss, workload generation, peer
/// selection randomisation — flows from seeded Rng instances so that every
/// experiment is bit-reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream; used to give each subsystem its
  /// own stream so adding draws in one does not perturb another.
  Rng fork();

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  bool bernoulli(double p);
  /// Exponential with the given mean (not rate).
  double exponential(double mean);
  double pareto(double scale, double shape);
  double lognormal(double mu, double sigma);
  double normal(double mean, double stddev);

  /// Zipf-distributed rank in [0, n) with exponent s (rank 0 most popular).
  /// Sampling is by inverse CDF over precomputed weights; callers that need
  /// many draws over the same (n, s) should use ZipfSampler.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

  /// Picks k distinct indices from [0, n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

/// Precomputed Zipf CDF for repeated sampling over a fixed (n, s).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);
  std::uint64_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace hpop::util
