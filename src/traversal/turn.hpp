#pragma once

#include <functional>
#include <map>
#include <memory>

#include "transport/mux.hpp"
#include "util/result.hpp"

namespace hpop::traversal {

// --- Control/relay frames on the allocation connection ---

struct TurnAllocateRequest : net::Payload {
  std::size_t wire_size() const override { return 36; }
};

struct TurnAllocateResponse : net::Payload {
  net::Endpoint relay;  // where external peers connect
  std::size_t wire_size() const override { return 40; }
};

/// Peer connection lifecycle + data, multiplexed by connection id.
struct TurnConnectionEvent : net::Payload {
  std::uint64_t conn_id = 0;
  bool open = true;  // false: peer connection closed
  std::size_t wire_size() const override { return 24; }
};

struct TurnData : net::Payload {
  std::uint64_t conn_id = 0;
  net::PayloadPtr inner;       // the relayed application message
  std::size_t filler = 0;      // relayed synthetic bytes
  std::size_t wire_size() const override {
    return 12 + (inner ? inner->wire_size() : filler);
  }
};

/// TURN-style relay (§III fallback): clients that cannot be reached behind
/// hostile NATs allocate a public relay endpoint here. Every inbound TCP
/// connection to the relay endpoint is bridged over the allocation
/// connection — all traffic pays the extra relay round trip and the relay's
/// bandwidth, the "limited functionality" cost the paper notes.
class TurnServer {
 public:
  TurnServer(transport::TransportMux& mux, std::uint16_t control_port = 3478);

  std::uint16_t control_port() const { return control_port_; }
  std::uint64_t allocations() const { return allocations_; }
  std::uint64_t bytes_relayed() const { return bytes_relayed_; }

 private:
  struct Allocation;
  void handle_allocate(
      const std::shared_ptr<transport::TcpConnection>& control);

  transport::TransportMux& mux_;
  std::uint16_t control_port_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::map<std::uint16_t, std::shared_ptr<Allocation>> allocations_by_port_;
  std::uint16_t next_relay_port_ = 49000;
  std::uint64_t allocations_ = 0;
  std::uint64_t bytes_relayed_ = 0;
};

/// Client side: allocates a relay endpoint and bridges each relayed peer
/// connection to a *local* TCP service (the HPoP's own HTTP server), so
/// unmodified servers work through the relay.
class TurnAllocation {
 public:
  TurnAllocation(transport::TransportMux& mux, net::Endpoint turn_server,
                 std::uint16_t local_service_port);

  using ReadyCallback = std::function<void(util::Result<net::Endpoint>)>;
  void allocate(ReadyCallback cb);

  bool active() const { return relay_.has_value(); }
  std::optional<net::Endpoint> relay_endpoint() const { return relay_; }

 private:
  struct Bridge {
    std::shared_ptr<transport::TcpConnection> local;
    bool local_ready = false;
    std::vector<std::shared_ptr<const TurnData>> pending;  // pre-connect
  };
  void on_control_message(net::PayloadPtr msg);

  transport::TransportMux& mux_;
  net::Endpoint server_;
  std::uint16_t local_service_port_;
  std::shared_ptr<transport::TcpConnection> control_;
  std::optional<net::Endpoint> relay_;
  ReadyCallback ready_cb_;
  std::map<std::uint64_t, Bridge> bridges_;
};

}  // namespace hpop::traversal
