#include "traversal/reachability.hpp"

#include "util/logging.hpp"

namespace hpop::traversal {

std::string to_string(ReachMethod m) {
  switch (m) {
    case ReachMethod::kDirect: return "direct";
    case ReachMethod::kUpnp: return "upnp";
    case ReachMethod::kStunPunch: return "stun-punch";
    case ReachMethod::kTurnRelay: return "turn-relay";
    case ReachMethod::kUnreachable: return "unreachable";
  }
  return "?";
}

Reflector::Reflector(transport::TransportMux& mux, std::uint16_t port)
    : mux_(mux), port_(port), listener_(mux.tcp_listen(port)) {
  listener_->set_on_accept([this](
                               std::shared_ptr<transport::TcpConnection>
                                   control) {
    control->set_on_message([this, control](net::PayloadPtr msg) {
      const auto req =
          std::dynamic_pointer_cast<const ReflectTestRequest>(msg);
      if (!req) return;

      const std::uint16_t probe_port = next_probe_port_++;
      auto launch_probe = [this, control, target = req->target, probe_port] {
        transport::TcpOptions opts;
        opts.local_port = probe_port;
        auto probe = mux_.tcp_connect(target, opts);
        auto finished = std::make_shared<bool>(false);
        auto report = [control, probe, finished](bool ok) {
          if (*finished) return;
          *finished = true;
          auto result = std::make_shared<ReflectTestResult>();
          result->reachable = ok;
          control->send(result);
          probe->abort();
        };
        probe->set_on_established([report] { report(true); });
        probe->set_on_reset([report] { report(false); });
        // No SYN-ACK within 3 s (filtered silently by a NAT) => fail.
        mux_.simulator().schedule(3 * util::kSecond,
                                  [report] { report(false); });
      };

      if (req->announce_first) {
        auto announce = std::make_shared<ReflectAnnounce>();
        announce->from = {mux_.host().address(), probe_port};
        control->send(announce);
        // Give the requester time to punch before probing.
        mux_.simulator().schedule(200 * util::kMillisecond,
                                  std::move(launch_probe));
      } else {
        launch_probe();
      }
    });
    control->set_on_remote_close([control] { control->close(); });
  });
}

ReachabilityManager::ReachabilityManager(transport::TransportMux& mux,
                                         ReachabilityConfig config)
    : mux_(mux), config_(config) {}

bool ReachabilityManager::behind_nat() const {
  // 10/8 marks the private realms in our topologies.
  const net::IpAddr addr = mux_.host().address();
  return net::Prefix{net::IpAddr(10, 0, 0, 0), 8}.contains(addr);
}

void ReachabilityManager::verify(net::Endpoint target, bool announce_first,
                                 std::function<void(bool)> cb) {
  if (!config_.reflector) {
    // No external vantage point: trust the candidate optimistically.
    cb(true);
    return;
  }
  auto control = mux_.tcp_connect(*config_.reflector);
  auto req = std::make_shared<ReflectTestRequest>();
  req->target = target;
  req->announce_first = announce_first;
  control->set_on_established([control, req] { control->send(req); });
  auto done = std::make_shared<bool>(false);
  control->set_on_message(
      [this, control, cb, done](net::PayloadPtr msg) {
        if (const auto announce =
                std::dynamic_pointer_cast<const ReflectAnnounce>(msg)) {
          // Rendezvous: punch toward the announced probe source.
          expect_peer(announce->from);
          return;
        }
        if (const auto result =
                std::dynamic_pointer_cast<const ReflectTestResult>(msg)) {
          if (*done) return;
          *done = true;
          control->close();
          cb(result->reachable);
        }
      });
  control->set_on_reset([cb, done] {
    if (*done) return;
    *done = true;
    cb(false);
  });
}

void ReachabilityManager::establish(EstablishCallback cb) {
  callback_ = std::move(cb);
  try_direct();
}

void ReachabilityManager::finish(Advertisement adv) {
  advertisement_ = adv;
  HPOP_LOG(kInfo, "reach") << mux_.host().name() << " reachable via "
                           << to_string(adv.method) << " at "
                           << adv.endpoint.to_string();
  if (callback_) callback_(advertisement_);
}

void ReachabilityManager::try_direct() {
  if (behind_nat()) {
    try_upnp();
    return;
  }
  const net::Endpoint candidate{mux_.host().address(), config_.service_port};
  verify(candidate, false, [this, candidate](bool ok) {
    if (ok) {
      finish({ReachMethod::kDirect, candidate, false});
    } else {
      try_turn();  // publicly addressed but blocked: relay or bust
    }
  });
}

void ReachabilityManager::try_upnp() {
  if (config_.home_gateway == nullptr) {
    try_stun();
    return;
  }
  upnp_ = std::make_unique<UpnpClient>(mux_.simulator(),
                                       config_.home_gateway);
  const net::Endpoint internal{mux_.host().address(), config_.service_port};
  upnp_->add_port_mapping(
      net::Proto::kTcp, config_.service_port, internal,
      [this](util::Status status) {
        if (!status.ok()) {
          try_stun();
          return;
        }
        const net::Endpoint candidate{
            config_.home_gateway->public_ip(), config_.service_port};
        // Verification matters: behind a CGN the home mapping exists but
        // the gateway's "public" address is itself private (§III).
        verify(candidate, false, [this, candidate](bool ok) {
          if (ok) {
            finish({ReachMethod::kUpnp, candidate, false});
          } else {
            try_stun();
          }
        });
      });
}

void ReachabilityManager::try_stun() {
  if (!config_.stun_server) {
    try_turn();
    return;
  }
  // Keep a UDP mapping alive for rendezvous signalling and discover the
  // TCP mapping our service port gets.
  stun_ = std::make_unique<StunClient>(mux_, *config_.stun_server);
  stun_->start_keepalive(20 * util::kSecond);
  discover_tcp_mapping(
      mux_, *config_.stun_server, config_.service_port,
      [this](util::Result<net::Endpoint> mapped) {
        if (!mapped.ok()) {
          try_turn();
          return;
        }
        stun_mapped_tcp_ = mapped.value();
        // Verify punchability with a rendezvous-style probe. A symmetric
        // NAT maps our punch to a *different* public port than the one we
        // advertised, so the probe's SYN stays filtered and this fails.
        verify(*stun_mapped_tcp_, true, [this](bool ok) {
          if (ok) {
            finish({ReachMethod::kStunPunch, *stun_mapped_tcp_, true});
          } else {
            try_turn();
          }
        });
      });
}

void ReachabilityManager::try_turn() {
  if (!config_.turn_server) {
    finish({ReachMethod::kUnreachable, {}, false});
    return;
  }
  turn_ = std::make_unique<TurnAllocation>(mux_, *config_.turn_server,
                                           config_.service_port);
  turn_->allocate([this](util::Result<net::Endpoint> relay) {
    if (relay.ok()) {
      finish({ReachMethod::kTurnRelay, relay.value(), false});
    } else {
      finish({ReachMethod::kUnreachable, {}, false});
    }
  });
}

void ReachabilityManager::expect_peer(net::Endpoint peer) {
  punch_tcp(mux_.host(), config_.service_port, peer, config_.nat_depth + 1);
  if (stun_) punch_udp(*stun_->socket(), peer);
}

}  // namespace hpop::traversal
