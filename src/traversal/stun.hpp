#pragma once

#include <functional>
#include <memory>

#include "transport/mux.hpp"
#include "util/result.hpp"

namespace hpop::traversal {

/// STUN Binding messages (RFC 5389, reduced to what address discovery and
/// hole punching need).
struct StunBindingRequest : net::Payload {
  std::uint64_t txn_id = 0;
  std::size_t wire_size() const override { return 20; }
};

struct StunBindingResponse : net::Payload {
  std::uint64_t txn_id = 0;
  net::Endpoint mapped;  // XOR-MAPPED-ADDRESS in real STUN
  std::size_t wire_size() const override { return 32; }
};

/// Sent over the TCP variant: the observed remote endpoint of the
/// connection (how the HPoP discovers its service port's NAT mapping).
struct StunTcpMapped : net::Payload {
  net::Endpoint mapped;
  std::size_t wire_size() const override { return 32; }
};

/// Answers UDP binding requests with the source endpoint it observed — the
/// client's outermost NAT mapping — and, on TCP, immediately reports the
/// observed endpoint of each accepted connection (STUN-over-TCP).
class StunServer {
 public:
  StunServer(transport::TransportMux& mux, std::uint16_t port = 3478);

  std::uint64_t requests_served() const { return served_; }

 private:
  std::shared_ptr<transport::UdpSocket> socket_;
  std::shared_ptr<transport::TcpListener> tcp_listener_;
  std::uint64_t served_ = 0;
};

/// Discovers the NAT mapping for TCP connections originating from
/// `local_port` (the HPoP's service port) by dialing the STUN server's TCP
/// side from that port.
void discover_tcp_mapping(
    transport::TransportMux& mux, net::Endpoint stun_server,
    std::uint16_t local_port,
    std::function<void(util::Result<net::Endpoint>)> cb);

/// Client side: discovers the reflexive (outermost-NAT) UDP endpoint and
/// keeps the mapping alive. The HPoP holds one of these open permanently so
/// its public UDP endpoint stays stable (§III).
class StunClient {
 public:
  StunClient(transport::TransportMux& mux, net::Endpoint server);

  using DiscoverCallback =
      std::function<void(util::Result<net::Endpoint>)>;
  /// Binding request with up to `retries` retransmissions (UDP loss).
  void discover(DiscoverCallback cb, int retries = 3);

  /// Refreshes the mapping every `interval` (keeps NAT state from
  /// expiring).
  void start_keepalive(util::Duration interval);
  void stop_keepalive();

  /// Local UDP port of the mapping (the punched service rides this port).
  std::uint16_t local_port() const { return socket_->port(); }
  std::shared_ptr<transport::UdpSocket> socket() { return socket_; }

 private:
  void send_request(std::uint64_t txn, int remaining, DiscoverCallback cb);

  transport::TransportMux& mux_;
  net::Endpoint server_;
  std::shared_ptr<transport::UdpSocket> socket_;
  std::uint64_t next_txn_ = 1;
  std::map<std::uint64_t, DiscoverCallback> pending_;
  std::optional<sim::TimerId> keepalive_timer_;
};

/// TCP hole punch: emits a bare SYN from (host, local_port) toward
/// `remote` purely to install outbound mapping + filter state on the NAT
/// chain, so the remote's inbound SYN to the mapped endpoint is admitted.
/// `ttl` is set low (NAT depth + 1), the standard trick so the punch dies
/// inside the network instead of eliciting an RST from the far host.
void punch_tcp(net::Host& host, std::uint16_t local_port, net::Endpoint remote,
               int ttl = 2);

/// UDP hole punch: a small datagram with the same purpose.
void punch_udp(transport::UdpSocket& socket, net::Endpoint remote);

}  // namespace hpop::traversal
