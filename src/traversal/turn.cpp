#include "traversal/turn.hpp"

#include "util/logging.hpp"

namespace hpop::traversal {

/// Server-side state for one allocation: the control connection to the
/// allocating client and the relay listener for external peers.
struct TurnServer::Allocation {
  std::shared_ptr<transport::TcpConnection> control;
  std::shared_ptr<transport::TcpListener> relay_listener;
  std::uint16_t relay_port = 0;
  std::uint64_t next_conn_id = 1;
  std::map<std::uint64_t, std::shared_ptr<transport::TcpConnection>> peers;
};

TurnServer::TurnServer(transport::TransportMux& mux,
                       std::uint16_t control_port)
    : mux_(mux), control_port_(control_port) {
  listener_ = mux_.tcp_listen(control_port);
  listener_->set_on_accept(
      [this](std::shared_ptr<transport::TcpConnection> conn) {
        handle_allocate(conn);
      });
}

void TurnServer::handle_allocate(
    const std::shared_ptr<transport::TcpConnection>& control) {
  auto alloc = std::make_shared<Allocation>();
  alloc->control = control;

  control->set_on_message([this, alloc](net::PayloadPtr msg) {
    if (std::dynamic_pointer_cast<const TurnAllocateRequest>(msg)) {
      if (alloc->relay_listener) return;  // duplicate
      ++allocations_;
      alloc->relay_port = next_relay_port_++;
      alloc->relay_listener = mux_.tcp_listen(alloc->relay_port);
      allocations_by_port_[alloc->relay_port] = alloc;

      alloc->relay_listener->set_on_accept(
          [this, alloc](std::shared_ptr<transport::TcpConnection> peer) {
            const std::uint64_t id = alloc->next_conn_id++;
            alloc->peers[id] = peer;
            auto open = std::make_shared<TurnConnectionEvent>();
            open->conn_id = id;
            alloc->control->send(open);

            peer->set_on_message([this, alloc, id](net::PayloadPtr m) {
              auto data = std::make_shared<TurnData>();
              data->conn_id = id;
              data->inner = m;
              bytes_relayed_ += data->wire_size();
              alloc->control->send(data);
            });
            auto gone = [alloc, id] {
              if (alloc->peers.erase(id) > 0) {
                auto ev = std::make_shared<TurnConnectionEvent>();
                ev->conn_id = id;
                ev->open = false;
                alloc->control->send(ev);
              }
            };
            peer->set_on_remote_close([alloc, id] {
              const auto it = alloc->peers.find(id);
              if (it != alloc->peers.end()) it->second->close();
            });
            peer->set_on_closed(gone);
            peer->set_on_reset(gone);
          });

      auto resp = std::make_shared<TurnAllocateResponse>();
      resp->relay = {mux_.host().address(), alloc->relay_port};
      alloc->control->send(resp);
      return;
    }
    if (const auto data = std::dynamic_pointer_cast<const TurnData>(msg)) {
      // Client -> peer direction.
      const auto it = alloc->peers.find(data->conn_id);
      if (it == alloc->peers.end()) return;
      bytes_relayed_ += data->wire_size();
      if (data->inner) {
        it->second->send(data->inner);
      } else if (data->filler > 0) {
        it->second->send_bytes(data->filler);
      }
      return;
    }
    if (const auto ev =
            std::dynamic_pointer_cast<const TurnConnectionEvent>(msg)) {
      if (!ev->open) {
        const auto it = alloc->peers.find(ev->conn_id);
        if (it != alloc->peers.end()) {
          it->second->close();
          alloc->peers.erase(it);
        }
      }
    }
  });
}

TurnAllocation::TurnAllocation(transport::TransportMux& mux,
                               net::Endpoint turn_server,
                               std::uint16_t local_service_port)
    : mux_(mux),
      server_(turn_server),
      local_service_port_(local_service_port) {}

void TurnAllocation::allocate(ReadyCallback cb) {
  ready_cb_ = std::move(cb);
  control_ = mux_.tcp_connect(server_);
  control_->set_on_established(
      [this] { control_->send(std::make_shared<TurnAllocateRequest>()); });
  control_->set_on_message(
      [this](net::PayloadPtr msg) { on_control_message(std::move(msg)); });
  auto fail = [this] {
    if (ready_cb_) {
      auto cb = std::move(ready_cb_);
      ready_cb_ = nullptr;
      cb(util::Result<net::Endpoint>::failure("turn_unreachable",
                                              "allocation failed"));
    }
  };
  control_->set_on_reset(fail);
}

void TurnAllocation::on_control_message(net::PayloadPtr msg) {
  if (const auto resp =
          std::dynamic_pointer_cast<const TurnAllocateResponse>(msg)) {
    relay_ = resp->relay;
    if (ready_cb_) {
      auto cb = std::move(ready_cb_);
      ready_cb_ = nullptr;
      cb(*relay_);
    }
    return;
  }
  if (const auto ev =
          std::dynamic_pointer_cast<const TurnConnectionEvent>(msg)) {
    if (ev->open) {
      // New relayed peer: bridge it to the local service over loopback.
      Bridge bridge;
      bridge.local = mux_.tcp_connect(
          {mux_.host().address(), local_service_port_});
      const std::uint64_t id = ev->conn_id;
      bridge.local->set_on_message([this, id](net::PayloadPtr m) {
        auto data = std::make_shared<TurnData>();
        data->conn_id = id;
        data->inner = m;
        control_->send(data);
      });
      bridge.local->set_on_closed([this, id] {
        auto done = std::make_shared<TurnConnectionEvent>();
        done->conn_id = id;
        done->open = false;
        control_->send(done);
        bridges_.erase(id);
      });
      bridges_.emplace(id, std::move(bridge));
    } else {
      const auto it = bridges_.find(ev->conn_id);
      if (it != bridges_.end()) {
        it->second.local->close();
        bridges_.erase(it);
      }
    }
    return;
  }
  if (const auto data = std::dynamic_pointer_cast<const TurnData>(msg)) {
    const auto it = bridges_.find(data->conn_id);
    if (it == bridges_.end()) return;
    if (data->inner) {
      it->second.local->send(data->inner);
    } else if (data->filler > 0) {
      it->second.local->send_bytes(data->filler);
    }
  }
}

}  // namespace hpop::traversal
