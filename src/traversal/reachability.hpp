#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "traversal/stun.hpp"
#include "traversal/turn.hpp"
#include "traversal/upnp.hpp"

namespace hpop::traversal {

// --- Reflector: an external vantage point that verifies reachability ---

struct ReflectTestRequest : net::Payload {
  net::Endpoint target;
  bool announce_first = false;  // rendezvous-style: announce, wait, connect
  std::size_t wire_size() const override { return 40; }
};

struct ReflectAnnounce : net::Payload {
  net::Endpoint from;  // endpoint the reflector will connect from
  std::size_t wire_size() const override { return 32; }
};

struct ReflectTestResult : net::Payload {
  bool reachable = false;
  std::size_t wire_size() const override { return 24; }
};

/// A public service that attempts a TCP connection to a requested endpoint
/// and reports whether it succeeded. In `announce_first` mode it first
/// tells the requester which endpoint the probe will come from and delays
/// briefly — giving a NATed requester time to punch (the rendezvous dance
/// the HPoP directory performs in production use).
class Reflector {
 public:
  Reflector(transport::TransportMux& mux, std::uint16_t port = 7100);
  std::uint16_t port() const { return port_; }

 private:
  transport::TransportMux& mux_;
  std::uint16_t port_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::uint16_t next_probe_port_ = 36000;
};

// --- Reachability manager: the HPoP boot sequence from §III ---

enum class ReachMethod {
  kDirect,      // publicly addressed (the IPv6 future of §III)
  kUpnp,        // home NAT port mapping
  kStunPunch,   // hole punching; requires rendezvous per client
  kTurnRelay,   // relayed; "limited functionality" fallback
  kUnreachable,
};

std::string to_string(ReachMethod m);

struct Advertisement {
  ReachMethod method = ReachMethod::kUnreachable;
  net::Endpoint endpoint;  // where clients should connect
  bool rendezvous_required = false;

  /// Serialized footprint when carried inside a directory message: method
  /// byte + flags byte + (ip, port) endpoint + framing. Messages that
  /// carry an advertisement add this to their own header size so the
  /// telemetry byte counters meter the real payload.
  std::size_t wire_bytes() const { return 16; }
};

struct ReachabilityConfig {
  std::uint16_t service_port = 443;
  net::NatBox* home_gateway = nullptr;  // discovered IGD, if any
  std::optional<net::Endpoint> stun_server;
  std::optional<net::Endpoint> turn_server;
  std::optional<net::Endpoint> reflector;
  /// NAT chain depth above this host (punch TTL = depth + 1).
  int nat_depth = 1;
};

/// Implements §III: "UPnP ... for home networks behind a local NAT device
/// only; STUN (hole punching) for ISP-operated NAT; TURN relaying where
/// hole punching does not work." Tries each in that order, verifying with
/// the reflector, and exposes the resulting public advertisement.
class ReachabilityManager {
 public:
  ReachabilityManager(transport::TransportMux& mux, ReachabilityConfig config);

  using EstablishCallback = std::function<void(const Advertisement&)>;
  void establish(EstablishCallback cb);

  const Advertisement& advertisement() const { return advertisement_; }

  /// Rendezvous notification: `peer` is about to connect; punch the NAT so
  /// its SYN is admitted.
  void expect_peer(net::Endpoint peer);

 private:
  void try_direct();
  void try_upnp();
  void try_stun();
  void try_turn();
  void finish(Advertisement adv);
  void verify(net::Endpoint target, bool announce_first,
              std::function<void(bool)> cb);
  bool behind_nat() const;

  transport::TransportMux& mux_;
  ReachabilityConfig config_;
  Advertisement advertisement_;
  EstablishCallback callback_;
  std::unique_ptr<UpnpClient> upnp_;
  std::unique_ptr<StunClient> stun_;
  std::unique_ptr<TurnAllocation> turn_;
  std::optional<net::Endpoint> stun_mapped_tcp_;
};

}  // namespace hpop::traversal
