#include "traversal/upnp.hpp"

namespace hpop::traversal {

void UpnpClient::add_port_mapping(net::Proto proto,
                                  std::uint16_t external_port,
                                  net::Endpoint internal, Callback cb) {
  sim_.schedule(kControlLatency, [this, proto, external_port, internal,
                                  cb = std::move(cb)] {
    if (gateway_ == nullptr) {
      cb(util::Status::failure("no_gateway", "no IGD discovered"));
      return;
    }
    cb(gateway_->add_port_mapping(proto, external_port, internal));
  });
}

void UpnpClient::remove_port_mapping(net::Proto proto,
                                     std::uint16_t external_port,
                                     Callback cb) {
  sim_.schedule(kControlLatency,
                [this, proto, external_port, cb = std::move(cb)] {
                  if (gateway_ == nullptr) {
                    cb(util::Status::failure("no_gateway",
                                             "no IGD discovered"));
                    return;
                  }
                  cb(gateway_->remove_port_mapping(proto, external_port));
                });
}

util::Result<net::IpAddr> UpnpClient::external_ip() const {
  if (gateway_ == nullptr) {
    return util::Result<net::IpAddr>::failure("no_gateway",
                                              "no IGD discovered");
  }
  return gateway_->public_ip();
}

}  // namespace hpop::traversal
