#include "traversal/stun.hpp"

#include "util/logging.hpp"

namespace hpop::traversal {

StunServer::StunServer(transport::TransportMux& mux, std::uint16_t port)
    : socket_(mux.udp_open(port)), tcp_listener_(mux.tcp_listen(port)) {
  socket_->set_on_datagram([this](net::Endpoint from, net::PayloadPtr msg) {
    const auto req =
        std::dynamic_pointer_cast<const StunBindingRequest>(msg);
    if (!req) return;
    ++served_;
    auto resp = std::make_shared<StunBindingResponse>();
    resp->txn_id = req->txn_id;
    resp->mapped = from;
    socket_->send_to(from, resp);
  });
  tcp_listener_->set_on_accept(
      [this](std::shared_ptr<transport::TcpConnection> conn) {
        ++served_;
        auto resp = std::make_shared<StunTcpMapped>();
        resp->mapped = conn->remote();
        conn->send(resp);
        conn->close();
      });
}

void discover_tcp_mapping(
    transport::TransportMux& mux, net::Endpoint stun_server,
    std::uint16_t local_port,
    std::function<void(util::Result<net::Endpoint>)> cb) {
  transport::TcpOptions opts;
  opts.local_port = local_port;
  auto conn = mux.tcp_connect(stun_server, opts);
  auto done = std::make_shared<bool>(false);
  conn->set_on_message([conn, cb, done](net::PayloadPtr msg) {
    const auto resp = std::dynamic_pointer_cast<const StunTcpMapped>(msg);
    if (!resp || *done) return;
    *done = true;
    cb(resp->mapped);
  });
  conn->set_on_remote_close([conn] { conn->close(); });
  conn->set_on_reset([cb, done] {
    if (*done) return;
    *done = true;
    cb(util::Result<net::Endpoint>::failure("unreachable",
                                            "STUN TCP connect failed"));
  });
}

StunClient::StunClient(transport::TransportMux& mux, net::Endpoint server)
    : mux_(mux), server_(server), socket_(mux.udp_open()) {
  socket_->set_on_datagram([this](net::Endpoint from, net::PayloadPtr msg) {
    (void)from;
    const auto resp =
        std::dynamic_pointer_cast<const StunBindingResponse>(msg);
    if (!resp) return;
    const auto it = pending_.find(resp->txn_id);
    if (it == pending_.end()) return;  // duplicate/late response
    DiscoverCallback cb = std::move(it->second);
    pending_.erase(it);
    cb(resp->mapped);
  });
}

void StunClient::send_request(std::uint64_t txn, int remaining,
                              DiscoverCallback cb) {
  auto req = std::make_shared<StunBindingRequest>();
  req->txn_id = txn;
  socket_->send_to(server_, req);
  pending_[txn] = std::move(cb);

  mux_.simulator().schedule(500 * util::kMillisecond,
                            [this, txn, remaining] {
    const auto it = pending_.find(txn);
    if (it == pending_.end()) return;  // answered
    DiscoverCallback cb = std::move(it->second);
    pending_.erase(it);
    if (remaining > 0) {
      send_request(next_txn_++, remaining - 1, std::move(cb));
    } else {
      cb(util::Result<net::Endpoint>::failure("timeout",
                                              "no STUN response"));
    }
  });
}

void StunClient::discover(DiscoverCallback cb, int retries) {
  send_request(next_txn_++, retries, std::move(cb));
}

void StunClient::start_keepalive(util::Duration interval) {
  stop_keepalive();
  keepalive_timer_ = mux_.simulator().schedule(interval, [this, interval] {
    auto req = std::make_shared<StunBindingRequest>();
    req->txn_id = next_txn_++;
    socket_->send_to(server_, req);  // response (if any) refreshes nothing
    start_keepalive(interval);
  });
}

void StunClient::stop_keepalive() {
  if (keepalive_timer_) {
    mux_.simulator().cancel(*keepalive_timer_);
    keepalive_timer_.reset();
  }
}

void punch_tcp(net::Host& host, std::uint16_t local_port, net::Endpoint remote,
               int ttl) {
  net::Packet syn;
  syn.src = host.address();
  syn.dst = remote.ip;
  syn.proto = net::Proto::kTcp;
  syn.tcp.src_port = local_port;
  syn.tcp.dst_port = remote.port;
  syn.tcp.syn = true;
  syn.ttl = ttl;
  host.send_packet(std::move(syn));
}

void punch_udp(transport::UdpSocket& socket, net::Endpoint remote) {
  socket.send_to(remote, std::make_shared<StunBindingRequest>());
}

}  // namespace hpop::traversal
