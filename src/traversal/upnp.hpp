#pragma once

#include <functional>

#include "net/nat.hpp"
#include "util/result.hpp"

namespace hpop::traversal {

/// UPnP-IGD client (§III): programmatic port forwarding on the *home* NAT
/// during HPoP setup. The SSDP discovery + SOAP AddPortMapping exchange is
/// modeled as a small control-latency delay against the gateway device; a
/// CGN (or a gateway with UPnP disabled) refuses.
class UpnpClient {
 public:
  /// `gateway` is the LAN's IGD as found by SSDP discovery; nullptr when
  /// discovery found none.
  UpnpClient(sim::Simulator& sim, net::NatBox* gateway)
      : sim_(sim), gateway_(gateway) {}

  using Callback = std::function<void(util::Status)>;

  void add_port_mapping(net::Proto proto, std::uint16_t external_port,
                        net::Endpoint internal, Callback cb);
  void remove_port_mapping(net::Proto proto, std::uint16_t external_port,
                           Callback cb);

  /// The gateway's external address (what the mapping exposes). Note that
  /// behind a CGN this is still a private realm address — which is exactly
  /// why UPnP alone is insufficient there (§III).
  util::Result<net::IpAddr> external_ip() const;

 private:
  static constexpr util::Duration kControlLatency =
      20 * util::kMillisecond;  // SSDP + SOAP round trips on the LAN

  sim::Simulator& sim_;
  net::NatBox* gateway_;
};

}  // namespace hpop::traversal
