#include "hpop/directory.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace hpop::core {

DirectoryServer::DirectoryServer(transport::TransportMux& mux,
                                 std::uint16_t port)
    : mux_(mux), listener_(mux.tcp_listen(port)) {
  listener_->set_on_accept([this](
                               std::shared_ptr<transport::TcpConnection>
                                   conn) {
    conn->set_on_message([this, conn](net::PayloadPtr msg) {
      if (const auto reg = std::dynamic_pointer_cast<const DirRegister>(msg)) {
        if (wal_ != nullptr) {
          durable::PayloadWriter w;
          w.put_string(reg->household);
          w.put_u8(static_cast<std::uint8_t>(reg->advertisement.method));
          w.put_u32(reg->advertisement.endpoint.ip.value);
          w.put_u32(reg->advertisement.endpoint.port);
          w.put_u8(reg->advertisement.rendezvous_required ? 1 : 0);
          wal_->append(kWalRegister, w.take());
          wal_->sync();
        }
        households_.insert_or_assign(reg->household,
                                     Registration{reg->advertisement, conn});
        HPOP_LOG(kInfo, "directory")
            << "registered " << reg->household << " via "
            << traversal::to_string(reg->advertisement.method);
        return;
      }
      if (const auto lookup =
              std::dynamic_pointer_cast<const DirLookupRequest>(msg)) {
        auto resp = std::make_shared<DirLookupResponse>();
        resp->txn = lookup->txn;
        util::Duration hint = 0;
        if (admission_ && !admission_->try_admit_instant(
                              overload::Class::kThirdParty, &hint)) {
          ++sheds_;
          resp->busy = true;
          resp->retry_after_s = static_cast<std::uint32_t>(
              std::max<util::Duration>(hint, util::kSecond) / util::kSecond);
          conn->send(resp);
          return;
        }
        if (const Registration* r = households_.find(lookup->household)) {
          resp->found = true;
          resp->advertisement = r->advertisement;
        }
        conn->send(resp);
        return;
      }
      if (const auto rdv =
              std::dynamic_pointer_cast<const DirRendezvousRequest>(msg)) {
        util::Duration hint = 0;
        if (admission_ && !admission_->try_admit_instant(
                              overload::Class::kOwner, &hint)) {
          ++sheds_;
          auto ready = std::make_shared<DirRendezvousReady>();
          ready->txn = rdv->txn;
          ready->ok = false;
          ready->busy = true;
          ready->retry_after_s = static_cast<std::uint32_t>(
              std::max<util::Duration>(hint, util::kSecond) / util::kSecond);
          conn->send(ready);
          return;
        }
        const Registration* r = households_.find(rdv->household);
        if (r == nullptr || !r->control) {
          auto ready = std::make_shared<DirRendezvousReady>();
          ready->txn = rdv->txn;
          ready->ok = false;
          conn->send(ready);
          return;
        }
        rendezvous_waiters_[rdv->txn] = conn;
        r->control->send(std::make_shared<DirRendezvousRequest>(*rdv));
        return;
      }
      if (const auto ready =
              std::dynamic_pointer_cast<const DirRendezvousReady>(msg)) {
        // Relayed back from the HPoP to the waiting requester.
        const auto it = rendezvous_waiters_.find(ready->txn);
        if (it == rendezvous_waiters_.end()) return;
        if (const auto waiter = it->second.lock()) {
          waiter->send(std::make_shared<DirRendezvousReady>(*ready));
        }
        rendezvous_waiters_.erase(it);
        return;
      }
    });
    conn->set_on_remote_close([conn] { conn->close(); });
  });
}

void DirectoryServer::apply_record(const durable::WalRecord& rec) {
  if (rec.type == durable::kSnapshotRecordType) {
    restore_state(rec.payload);
    return;
  }
  if (rec.type != kWalRegister) return;
  durable::PayloadReader r(rec.payload);
  std::string household;
  std::uint8_t method = 0, rendezvous = 0;
  std::uint32_t ip = 0, port = 0;
  if (!r.get_string(household) || !r.get_u8(method) || !r.get_u32(ip) ||
      !r.get_u32(port) || !r.get_u8(rendezvous)) {
    return;
  }
  traversal::Advertisement adv;
  adv.method = static_cast<traversal::ReachMethod>(method);
  adv.endpoint = {net::IpAddr(ip), static_cast<std::uint16_t>(port)};
  adv.rendezvous_required = rendezvous != 0;
  households_.insert_or_assign(household, Registration{adv, nullptr});
}

durable::Wal::RecoveryStats DirectoryServer::recover_from_wal(
    durable::Wal& wal) {
  households_.clear();
  wal_ = &wal;
  return wal.recover(
      [this](const durable::WalRecord& rec) { apply_record(rec); });
}

bool DirectoryServer::compact_wal() {
  if (wal_ == nullptr) return false;
  return wal_->compact(serialize_state());
}

util::Bytes DirectoryServer::serialize_state() const {
  durable::PayloadWriter w;
  w.put_u32(static_cast<std::uint32_t>(households_.size()));
  for (const auto& [household, reg] : households_) {
    w.put_string(household.str());
    w.put_u8(static_cast<std::uint8_t>(reg.advertisement.method));
    w.put_u32(reg.advertisement.endpoint.ip.value);
    w.put_u32(reg.advertisement.endpoint.port);
    w.put_u8(reg.advertisement.rendezvous_required ? 1 : 0);
  }
  return w.take();
}

bool DirectoryServer::restore_state(const util::Bytes& payload) {
  households_.clear();
  durable::PayloadReader r(payload);
  std::uint32_t count = 0;
  if (!r.get_u32(count)) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string household;
    std::uint8_t method = 0, rendezvous = 0;
    std::uint32_t ip = 0, port = 0;
    if (!r.get_string(household) || !r.get_u8(method) || !r.get_u32(ip) ||
        !r.get_u32(port) || !r.get_u8(rendezvous)) {
      return false;
    }
    traversal::Advertisement adv;
    adv.method = static_cast<traversal::ReachMethod>(method);
    adv.endpoint = {net::IpAddr(ip), static_cast<std::uint16_t>(port)};
    adv.rendezvous_required = rendezvous != 0;
    households_.insert_or_assign(household, Registration{adv, nullptr});
  }
  return true;
}

std::uint64_t DirectoryServer::fingerprint() const {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= kPrime;
    }
  };
  for (const auto& [household, reg] : households_) {
    const std::string_view name = household.str();
    mix(name.size());
    for (const char c : name) {
      h ^= static_cast<std::uint8_t>(c);
      h *= kPrime;
    }
    mix(static_cast<std::uint64_t>(reg.advertisement.method));
    mix(reg.advertisement.endpoint.ip.value);
    mix(reg.advertisement.endpoint.port);
    mix(reg.advertisement.rendezvous_required ? 1 : 0);
  }
  return h;
}

void DirectoryServer::enable_admission(overload::AdmissionConfig config) {
  admission_ = std::make_unique<overload::AdmissionController>(
      mux_.simulator(), "hpop.directory", config);
}

DirectoryRegistration::DirectoryRegistration(
    transport::TransportMux& mux, net::Endpoint directory,
    std::string household, traversal::ReachabilityManager& reach)
    : mux_(mux),
      directory_(directory),
      household_(std::move(household)),
      reach_(reach) {
  control_ = mux_.tcp_connect(directory_);
  control_->set_on_message([this](net::PayloadPtr msg) {
    if (const auto rdv =
            std::dynamic_pointer_cast<const DirRendezvousRequest>(msg)) {
      // A client is about to connect: punch so its SYN traverses our NAT,
      // then confirm readiness through the directory.
      reach_.expect_peer(rdv->client);
      auto ready = std::make_shared<DirRendezvousReady>();
      ready->txn = rdv->txn;
      ready->ok = true;
      control_->send(ready);
    }
  });
}

void DirectoryRegistration::register_advertisement(
    const traversal::Advertisement& adv) {
  auto reg = std::make_shared<DirRegister>();
  reg->household = household_;
  reg->advertisement = adv;
  control_->send(reg);
}

void DirectoryClient::lookup(const std::string& household,
                             LookupCallback cb) {
  auto conn = mux_.tcp_connect(directory_);
  auto req = std::make_shared<DirLookupRequest>();
  req->household = household;
  req->txn = next_txn_++;
  conn->set_on_established([conn, req] { conn->send(req); });
  auto done = std::make_shared<bool>(false);
  conn->set_on_message([conn, cb, done](net::PayloadPtr msg) {
    const auto resp = std::dynamic_pointer_cast<const DirLookupResponse>(msg);
    if (!resp || *done) return;
    *done = true;
    conn->close();
    if (resp->busy) {
      cb(util::Result<traversal::Advertisement>::failure(
          "directory_busy",
          "directory overloaded; retry after " +
              std::to_string(resp->retry_after_s) + "s"));
      return;
    }
    if (!resp->found) {
      cb(util::Result<traversal::Advertisement>::failure(
          "not_found", "household not registered"));
      return;
    }
    cb(resp->advertisement);
  });
  conn->set_on_reset([cb, done] {
    if (*done) return;
    *done = true;
    cb(util::Result<traversal::Advertisement>::failure(
        "directory_unreachable", "could not reach directory"));
  });
}

void DirectoryClient::connect(const std::string& household,
                              ConnectCallback cb) {
  lookup(household, [this, household, cb](
                        util::Result<traversal::Advertisement> adv) {
    if (!adv.ok()) {
      cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
          adv.error().code, adv.error().message));
      return;
    }
    if (adv.value().method == traversal::ReachMethod::kUnreachable) {
      cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
          "unreachable", "household HPoP is unreachable"));
      return;
    }
    if (adv.value().rendezvous_required) {
      rendezvous_and_connect(adv.value(), household, cb);
    } else {
      cb(mux_.tcp_connect(adv.value().endpoint));
    }
  });
}

void DirectoryClient::rendezvous_and_connect(
    const traversal::Advertisement& adv, const std::string& household,
    ConnectCallback cb) {
  // Pre-choose our source port and announce it, so the HPoP can punch the
  // exact (address, port) pair even through port-restricted filters.
  const std::uint16_t source_port = mux_.host().allocate_port();
  auto control = mux_.tcp_connect(directory_);
  auto req = std::make_shared<DirRendezvousRequest>();
  req->household = household;
  req->client = {mux_.host().address(), source_port};
  req->txn = next_txn_++;
  control->set_on_established([control, req] { control->send(req); });
  auto done = std::make_shared<bool>(false);
  control->set_on_message([this, control, adv, source_port, cb,
                           done](net::PayloadPtr msg) {
    const auto ready =
        std::dynamic_pointer_cast<const DirRendezvousReady>(msg);
    if (!ready || *done) return;
    *done = true;
    control->close();
    if (!ready->ok) {
      cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
          ready->busy ? "directory_busy" : "rendezvous_failed",
          ready->busy ? "directory overloaded; retry after " +
                            std::to_string(ready->retry_after_s) + "s"
                      : "HPoP did not acknowledge rendezvous"));
      return;
    }
    transport::TcpOptions opts;
    opts.local_port = source_port;
    cb(mux_.tcp_connect(adv.endpoint, opts));
  });
  control->set_on_reset([cb, done] {
    if (*done) return;
    *done = true;
    cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
        "directory_unreachable", "could not reach directory"));
  });
}

}  // namespace hpop::core
