#include "hpop/directory.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace hpop::core {

DirectoryServer::DirectoryServer(transport::TransportMux& mux,
                                 std::uint16_t port)
    : mux_(mux), listener_(mux.tcp_listen(port)) {
  listener_->set_on_accept([this](
                               std::shared_ptr<transport::TcpConnection>
                                   conn) {
    conn->set_on_message([this, conn](net::PayloadPtr msg) {
      if (const auto reg = std::dynamic_pointer_cast<const DirRegister>(msg)) {
        households_.insert_or_assign(reg->household,
                                     Registration{reg->advertisement, conn});
        HPOP_LOG(kInfo, "directory")
            << "registered " << reg->household << " via "
            << traversal::to_string(reg->advertisement.method);
        return;
      }
      if (const auto lookup =
              std::dynamic_pointer_cast<const DirLookupRequest>(msg)) {
        auto resp = std::make_shared<DirLookupResponse>();
        resp->txn = lookup->txn;
        util::Duration hint = 0;
        if (admission_ && !admission_->try_admit_instant(
                              overload::Class::kThirdParty, &hint)) {
          ++sheds_;
          resp->busy = true;
          resp->retry_after_s = static_cast<std::uint32_t>(
              std::max<util::Duration>(hint, util::kSecond) / util::kSecond);
          conn->send(resp);
          return;
        }
        if (const Registration* r = households_.find(lookup->household)) {
          resp->found = true;
          resp->advertisement = r->advertisement;
        }
        conn->send(resp);
        return;
      }
      if (const auto rdv =
              std::dynamic_pointer_cast<const DirRendezvousRequest>(msg)) {
        util::Duration hint = 0;
        if (admission_ && !admission_->try_admit_instant(
                              overload::Class::kOwner, &hint)) {
          ++sheds_;
          auto ready = std::make_shared<DirRendezvousReady>();
          ready->txn = rdv->txn;
          ready->ok = false;
          ready->busy = true;
          ready->retry_after_s = static_cast<std::uint32_t>(
              std::max<util::Duration>(hint, util::kSecond) / util::kSecond);
          conn->send(ready);
          return;
        }
        const Registration* r = households_.find(rdv->household);
        if (r == nullptr || !r->control) {
          auto ready = std::make_shared<DirRendezvousReady>();
          ready->txn = rdv->txn;
          ready->ok = false;
          conn->send(ready);
          return;
        }
        rendezvous_waiters_[rdv->txn] = conn;
        r->control->send(std::make_shared<DirRendezvousRequest>(*rdv));
        return;
      }
      if (const auto ready =
              std::dynamic_pointer_cast<const DirRendezvousReady>(msg)) {
        // Relayed back from the HPoP to the waiting requester.
        const auto it = rendezvous_waiters_.find(ready->txn);
        if (it == rendezvous_waiters_.end()) return;
        if (const auto waiter = it->second.lock()) {
          waiter->send(std::make_shared<DirRendezvousReady>(*ready));
        }
        rendezvous_waiters_.erase(it);
        return;
      }
    });
    conn->set_on_remote_close([conn] { conn->close(); });
  });
}

void DirectoryServer::enable_admission(overload::AdmissionConfig config) {
  admission_ = std::make_unique<overload::AdmissionController>(
      mux_.simulator(), "hpop.directory", config);
}

DirectoryRegistration::DirectoryRegistration(
    transport::TransportMux& mux, net::Endpoint directory,
    std::string household, traversal::ReachabilityManager& reach)
    : mux_(mux),
      directory_(directory),
      household_(std::move(household)),
      reach_(reach) {
  control_ = mux_.tcp_connect(directory_);
  control_->set_on_message([this](net::PayloadPtr msg) {
    if (const auto rdv =
            std::dynamic_pointer_cast<const DirRendezvousRequest>(msg)) {
      // A client is about to connect: punch so its SYN traverses our NAT,
      // then confirm readiness through the directory.
      reach_.expect_peer(rdv->client);
      auto ready = std::make_shared<DirRendezvousReady>();
      ready->txn = rdv->txn;
      ready->ok = true;
      control_->send(ready);
    }
  });
}

void DirectoryRegistration::register_advertisement(
    const traversal::Advertisement& adv) {
  auto reg = std::make_shared<DirRegister>();
  reg->household = household_;
  reg->advertisement = adv;
  control_->send(reg);
}

void DirectoryClient::lookup(const std::string& household,
                             LookupCallback cb) {
  auto conn = mux_.tcp_connect(directory_);
  auto req = std::make_shared<DirLookupRequest>();
  req->household = household;
  req->txn = next_txn_++;
  conn->set_on_established([conn, req] { conn->send(req); });
  auto done = std::make_shared<bool>(false);
  conn->set_on_message([conn, cb, done](net::PayloadPtr msg) {
    const auto resp = std::dynamic_pointer_cast<const DirLookupResponse>(msg);
    if (!resp || *done) return;
    *done = true;
    conn->close();
    if (resp->busy) {
      cb(util::Result<traversal::Advertisement>::failure(
          "directory_busy",
          "directory overloaded; retry after " +
              std::to_string(resp->retry_after_s) + "s"));
      return;
    }
    if (!resp->found) {
      cb(util::Result<traversal::Advertisement>::failure(
          "not_found", "household not registered"));
      return;
    }
    cb(resp->advertisement);
  });
  conn->set_on_reset([cb, done] {
    if (*done) return;
    *done = true;
    cb(util::Result<traversal::Advertisement>::failure(
        "directory_unreachable", "could not reach directory"));
  });
}

void DirectoryClient::connect(const std::string& household,
                              ConnectCallback cb) {
  lookup(household, [this, household, cb](
                        util::Result<traversal::Advertisement> adv) {
    if (!adv.ok()) {
      cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
          adv.error().code, adv.error().message));
      return;
    }
    if (adv.value().method == traversal::ReachMethod::kUnreachable) {
      cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
          "unreachable", "household HPoP is unreachable"));
      return;
    }
    if (adv.value().rendezvous_required) {
      rendezvous_and_connect(adv.value(), household, cb);
    } else {
      cb(mux_.tcp_connect(adv.value().endpoint));
    }
  });
}

void DirectoryClient::rendezvous_and_connect(
    const traversal::Advertisement& adv, const std::string& household,
    ConnectCallback cb) {
  // Pre-choose our source port and announce it, so the HPoP can punch the
  // exact (address, port) pair even through port-restricted filters.
  const std::uint16_t source_port = mux_.host().allocate_port();
  auto control = mux_.tcp_connect(directory_);
  auto req = std::make_shared<DirRendezvousRequest>();
  req->household = household;
  req->client = {mux_.host().address(), source_port};
  req->txn = next_txn_++;
  control->set_on_established([control, req] { control->send(req); });
  auto done = std::make_shared<bool>(false);
  control->set_on_message([this, control, adv, source_port, cb,
                           done](net::PayloadPtr msg) {
    const auto ready =
        std::dynamic_pointer_cast<const DirRendezvousReady>(msg);
    if (!ready || *done) return;
    *done = true;
    control->close();
    if (!ready->ok) {
      cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
          ready->busy ? "directory_busy" : "rendezvous_failed",
          ready->busy ? "directory overloaded; retry after " +
                            std::to_string(ready->retry_after_s) + "s"
                      : "HPoP did not acknowledge rendezvous"));
      return;
    }
    transport::TcpOptions opts;
    opts.local_port = source_port;
    cb(mux_.tcp_connect(adv.endpoint, opts));
  });
  control->set_on_reset([cb, done] {
    if (*done) return;
    *done = true;
    cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
        "directory_unreachable", "could not reach directory"));
  });
}

}  // namespace hpop::core
