#include "hpop/directory.hpp"

#include <algorithm>
#include <vector>

#include "util/logging.hpp"

namespace hpop::core {

DirectoryServer::DirectoryServer(transport::TransportMux& mux,
                                 std::uint16_t port)
    : mux_(mux), listener_(mux.tcp_listen(port)) {
  listener_->set_on_accept(
      [this](std::shared_ptr<transport::TcpConnection> conn) {
        conn->set_on_message([this, conn](net::PayloadPtr msg) {
          handle_message(conn, msg);
        });
        conn->set_on_remote_close([conn] { conn->close(); });
      });
}

DirectoryServer::~DirectoryServer() {
  if (sweep_armed_) mux_.simulator().cancel(sweep_timer_);
}

bool DirectoryServer::expired(const Registration& reg) const {
  return reg.expires_at != 0 && mux_.simulator().now() >= reg.expires_at;
}

const DirectoryServer::Registration* DirectoryServer::find_live(
    const std::string& household) {
  const Registration* r = households_.find(household);
  if (r == nullptr) return nullptr;
  if (expired(*r)) {
    // The lease lapsed: the HPoP stopped renewing (died for good, or moved
    // to another shard). Serving the stale advertisement would point
    // clients at a dead endpoint forever — drop it instead. This check is
    // what keeps WAL-recovered entries honest too.
    households_.erase(household);
    ++stats_.expired_dropped;
    return nullptr;
  }
  return r;
}

bool DirectoryServer::would_resolve(const std::string& household) const {
  const Registration* r = households_.find(household);
  return r != nullptr && !expired(*r);
}

std::uint64_t DirectoryServer::next_version(
    const std::string& household) const {
  const auto now = static_cast<std::uint64_t>(mux_.simulator().now());
  const Registration* r = households_.find(household);
  return r == nullptr ? std::max<std::uint64_t>(now, 1)
                      : std::max(now, r->version + 1);
}

bool DirectoryServer::upsert(const std::string& household,
                             const Registration& reg, bool wal_log) {
  Registration* existing = households_.find(household);
  if (existing != nullptr && reg.version <= existing->version) return false;
  Registration stored = reg;
  if (!stored.control && existing != nullptr) {
    // Replication / recovery writes carry no socket; keep the live control
    // connection so rendezvous relaying survives an anti-entropy overwrite.
    stored.control = existing->control;
  }
  if (wal_log && wal_ != nullptr) wal_append(household, stored);
  households_.insert_or_assign(household, std::move(stored));
  return true;
}

void DirectoryServer::wal_append(std::string_view household,
                                 const Registration& reg) {
  durable::PayloadWriter w;
  w.put_string(household);
  w.put_u8(static_cast<std::uint8_t>(reg.advertisement.method));
  w.put_u32(reg.advertisement.endpoint.ip.value);
  w.put_u32(reg.advertisement.endpoint.port);
  w.put_u8(reg.advertisement.rendezvous_required ? 1 : 0);
  w.put_u64(reg.version);
  w.put_u64(static_cast<std::uint64_t>(reg.expires_at));
  wal_->append(kWalRegister, w.take());
}

void DirectoryServer::handle_message(
    const std::shared_ptr<transport::TcpConnection>& conn,
    const net::PayloadPtr& msg) {
  if (const auto reg = std::dynamic_pointer_cast<const DirRegister>(msg)) {
    const util::TimePoint now = mux_.simulator().now();
    const util::Duration granted =
        reg->lease_s > 0
            ? static_cast<util::Duration>(reg->lease_s) * util::kSecond
            : lease_ttl_;
    Registration r;
    r.advertisement = reg->advertisement;
    r.control = conn;
    r.version = next_version(reg->household);
    r.expires_at = granted > 0 ? now + granted : 0;
    upsert(reg->household, r, /*wal_log=*/true);
    if (wal_ != nullptr) wal_->sync();
    ++stats_.registrations;
    HPOP_LOG(kInfo, "directory")
        << "registered " << reg->household << " via "
        << traversal::to_string(reg->advertisement.method);
    auto ack = std::make_shared<DirRegisterAck>();
    ack->txn = reg->txn;
    ack->ok = true;
    ack->lease_s = static_cast<std::uint32_t>(granted / util::kSecond);
    conn->send(ack);
    on_registered(reg->household, *households_.find(reg->household));
    return;
  }
  if (const auto lookup =
          std::dynamic_pointer_cast<const DirLookupRequest>(msg)) {
    ++stats_.lookups;
    auto resp = std::make_shared<DirLookupResponse>();
    resp->txn = lookup->txn;
    util::Duration hint = 0;
    if (admission_ && !admission_->try_admit_instant(
                          overload::Class::kThirdParty, &hint)) {
      ++sheds_;
      resp->busy = true;
      resp->retry_after_s = static_cast<std::uint32_t>(
          std::max<util::Duration>(hint, util::kSecond) / util::kSecond);
      conn->send(resp);
      return;
    }
    if (const Registration* r = find_live(lookup->household)) {
      resp->found = true;
      resp->advertisement = r->advertisement;
      ++stats_.lookup_hits;
    }
    conn->send(resp);
    return;
  }
  if (const auto rdv =
          std::dynamic_pointer_cast<const DirRendezvousRequest>(msg)) {
    util::Duration hint = 0;
    if (admission_ && !admission_->try_admit_instant(
                          overload::Class::kOwner, &hint)) {
      ++sheds_;
      auto ready = std::make_shared<DirRendezvousReady>();
      ready->txn = rdv->txn;
      ready->ok = false;
      ready->busy = true;
      ready->retry_after_s = static_cast<std::uint32_t>(
          std::max<util::Duration>(hint, util::kSecond) / util::kSecond);
      conn->send(ready);
      return;
    }
    const Registration* r = find_live(rdv->household);
    if (r == nullptr || !r->control) {
      auto ready = std::make_shared<DirRendezvousReady>();
      ready->txn = rdv->txn;
      ready->ok = false;
      conn->send(ready);
      return;
    }
    rendezvous_waiters_[rdv->txn] = conn;
    r->control->send(std::make_shared<DirRendezvousRequest>(*rdv));
    return;
  }
  if (const auto ready =
          std::dynamic_pointer_cast<const DirRendezvousReady>(msg)) {
    // Relayed back from the HPoP to the waiting requester.
    const auto it = rendezvous_waiters_.find(ready->txn);
    if (it == rendezvous_waiters_.end()) return;
    if (const auto waiter = it->second.lock()) {
      waiter->send(std::make_shared<DirRendezvousReady>(*ready));
    }
    rendezvous_waiters_.erase(it);
    return;
  }
}

void DirectoryServer::start_expiry_sweep(util::Duration interval) {
  if (sweep_armed_) mux_.simulator().cancel(sweep_timer_);
  sweep_interval_ = interval;
  sweep_timer_ =
      mux_.simulator().schedule(interval, [this] { expiry_sweep_tick(); });
  sweep_armed_ = true;
}

void DirectoryServer::expiry_sweep_tick() {
  std::vector<std::string> dead;
  for (const auto& [household, reg] : households_) {
    if (expired(reg)) dead.emplace_back(household.str());
  }
  for (const std::string& h : dead) {
    households_.erase(h);
    ++stats_.expired_dropped;
  }
  sweep_timer_ = mux_.simulator().schedule(sweep_interval_,
                                           [this] { expiry_sweep_tick(); });
}

void DirectoryServer::apply_record(const durable::WalRecord& rec) {
  if (rec.type == durable::kSnapshotRecordType) {
    restore_state(rec.payload);
    return;
  }
  if (rec.type != kWalRegister) return;
  durable::PayloadReader r(rec.payload);
  std::string household;
  std::uint8_t method = 0, rendezvous = 0;
  std::uint32_t ip = 0, port = 0;
  std::uint64_t version = 0, expires = 0;
  if (!r.get_string(household) || !r.get_u8(method) || !r.get_u32(ip) ||
      !r.get_u32(port) || !r.get_u8(rendezvous) || !r.get_u64(version) ||
      !r.get_u64(expires)) {
    return;
  }
  Registration reg;
  reg.advertisement.method = static_cast<traversal::ReachMethod>(method);
  reg.advertisement.endpoint = {net::IpAddr(ip),
                                static_cast<std::uint16_t>(port)};
  reg.advertisement.rendezvous_required = rendezvous != 0;
  reg.version = version;
  reg.expires_at = static_cast<util::TimePoint>(expires);
  // Replay in version order: the log is append-ordered, so plain LWW
  // upsert (no WAL re-log) reconstructs the latest entry per household.
  upsert(household, reg, /*wal_log=*/false);
}

durable::Wal::RecoveryStats DirectoryServer::recover_from_wal(
    durable::Wal& wal) {
  households_.clear();
  wal_ = &wal;
  return wal.recover(
      [this](const durable::WalRecord& rec) { apply_record(rec); });
}

bool DirectoryServer::compact_wal() {
  if (wal_ == nullptr) return false;
  return wal_->compact(serialize_state());
}

util::Bytes DirectoryServer::serialize_state() const {
  durable::PayloadWriter w;
  w.put_u32(static_cast<std::uint32_t>(households_.size()));
  for (const auto& [household, reg] : households_) {
    w.put_string(household.str());
    w.put_u8(static_cast<std::uint8_t>(reg.advertisement.method));
    w.put_u32(reg.advertisement.endpoint.ip.value);
    w.put_u32(reg.advertisement.endpoint.port);
    w.put_u8(reg.advertisement.rendezvous_required ? 1 : 0);
    w.put_u64(reg.version);
    w.put_u64(static_cast<std::uint64_t>(reg.expires_at));
  }
  return w.take();
}

bool DirectoryServer::restore_state(const util::Bytes& payload) {
  households_.clear();
  durable::PayloadReader r(payload);
  std::uint32_t count = 0;
  if (!r.get_u32(count)) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string household;
    std::uint8_t method = 0, rendezvous = 0;
    std::uint32_t ip = 0, port = 0;
    std::uint64_t version = 0, expires = 0;
    if (!r.get_string(household) || !r.get_u8(method) || !r.get_u32(ip) ||
        !r.get_u32(port) || !r.get_u8(rendezvous) || !r.get_u64(version) ||
        !r.get_u64(expires)) {
      return false;
    }
    Registration reg;
    reg.advertisement.method = static_cast<traversal::ReachMethod>(method);
    reg.advertisement.endpoint = {net::IpAddr(ip),
                                  static_cast<std::uint16_t>(port)};
    reg.advertisement.rendezvous_required = rendezvous != 0;
    reg.version = version;
    reg.expires_at = static_cast<util::TimePoint>(expires);
    households_.insert_or_assign(household, std::move(reg));
  }
  return true;
}

std::uint64_t DirectoryServer::fingerprint() const {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= kPrime;
    }
  };
  for (const auto& [household, reg] : households_) {
    const std::string_view name = household.str();
    mix(name.size());
    for (const char c : name) {
      h ^= static_cast<std::uint8_t>(c);
      h *= kPrime;
    }
    mix(static_cast<std::uint64_t>(reg.advertisement.method));
    mix(reg.advertisement.endpoint.ip.value);
    mix(reg.advertisement.endpoint.port);
    mix(reg.advertisement.rendezvous_required ? 1 : 0);
    mix(reg.version);
    mix(static_cast<std::uint64_t>(reg.expires_at));
  }
  return h;
}

void DirectoryServer::enable_admission(overload::AdmissionConfig config) {
  admission_ = std::make_unique<overload::AdmissionController>(
      mux_.simulator(), "hpop.directory", config);
}

DirectoryRegistration::DirectoryRegistration(
    transport::TransportMux& mux, net::Endpoint directory,
    std::string household, traversal::ReachabilityManager& reach)
    : mux_(mux),
      directory_(directory),
      household_(std::move(household)),
      reach_(reach) {
  control_ = mux_.tcp_connect(directory_);
  control_->set_on_message([this](net::PayloadPtr msg) {
    if (const auto rdv =
            std::dynamic_pointer_cast<const DirRendezvousRequest>(msg)) {
      // A client is about to connect: punch so its SYN traverses our NAT,
      // then confirm readiness through the directory.
      reach_.expect_peer(rdv->client);
      auto ready = std::make_shared<DirRendezvousReady>();
      ready->txn = rdv->txn;
      ready->ok = true;
      control_->send(ready);
      return;
    }
    if (const auto ack =
            std::dynamic_pointer_cast<const DirRegisterAck>(msg)) {
      if (!ack->ok) return;
      ++acks_;
      if (auto_renew_ && ack->lease_s > 0) {
        // Renew at half-lease so one lost renewal still leaves headroom.
        const util::Duration renew_in =
            static_cast<util::Duration>(ack->lease_s) * util::kSecond / 2;
        if (renew_armed_) mux_.simulator().cancel(renew_timer_);
        renew_timer_ = mux_.simulator().schedule(
            renew_in, [this] { register_advertisement(last_adv_); });
        renew_armed_ = true;
      }
    }
  });
}

DirectoryRegistration::~DirectoryRegistration() {
  if (renew_armed_) mux_.simulator().cancel(renew_timer_);
}

void DirectoryRegistration::register_advertisement(
    const traversal::Advertisement& adv) {
  last_adv_ = adv;
  auto reg = std::make_shared<DirRegister>();
  reg->household = household_;
  reg->advertisement = adv;
  reg->txn = next_txn_++;
  control_->send(reg);
}

void DirectoryClient::lookup(const std::string& household,
                             LookupCallback cb) {
  auto conn = mux_.tcp_connect(directory_);
  auto req = std::make_shared<DirLookupRequest>();
  req->household = household;
  req->txn = next_txn_++;
  conn->set_on_established([conn, req] { conn->send(req); });
  auto done = std::make_shared<bool>(false);
  conn->set_on_message([conn, cb, done](net::PayloadPtr msg) {
    const auto resp = std::dynamic_pointer_cast<const DirLookupResponse>(msg);
    if (!resp || *done) return;
    *done = true;
    conn->close();
    if (resp->busy) {
      cb(util::Result<traversal::Advertisement>::failure(
          "directory_busy",
          "directory overloaded; retry after " +
              std::to_string(resp->retry_after_s) + "s"));
      return;
    }
    if (!resp->found) {
      cb(util::Result<traversal::Advertisement>::failure(
          "not_found", "household not registered"));
      return;
    }
    cb(resp->advertisement);
  });
  conn->set_on_reset([cb, done] {
    if (*done) return;
    *done = true;
    cb(util::Result<traversal::Advertisement>::failure(
        "directory_unreachable", "could not reach directory"));
  });
}

void DirectoryClient::connect(const std::string& household,
                              ConnectCallback cb) {
  lookup(household, [this, household, cb](
                        util::Result<traversal::Advertisement> adv) {
    if (!adv.ok()) {
      cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
          adv.error().code, adv.error().message));
      return;
    }
    if (adv.value().method == traversal::ReachMethod::kUnreachable) {
      cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
          "unreachable", "household HPoP is unreachable"));
      return;
    }
    if (adv.value().rendezvous_required) {
      rendezvous_and_connect(adv.value(), household, cb);
    } else {
      cb(mux_.tcp_connect(adv.value().endpoint));
    }
  });
}

void DirectoryClient::rendezvous_and_connect(
    const traversal::Advertisement& adv, const std::string& household,
    ConnectCallback cb) {
  // Pre-choose our source port and announce it, so the HPoP can punch the
  // exact (address, port) pair even through port-restricted filters.
  const std::uint16_t source_port = mux_.host().allocate_port();
  auto control = mux_.tcp_connect(directory_);
  auto req = std::make_shared<DirRendezvousRequest>();
  req->household = household;
  req->client = {mux_.host().address(), source_port};
  req->txn = next_txn_++;
  control->set_on_established([control, req] { control->send(req); });
  auto done = std::make_shared<bool>(false);
  control->set_on_message([this, control, adv, source_port, cb,
                           done](net::PayloadPtr msg) {
    const auto ready =
        std::dynamic_pointer_cast<const DirRendezvousReady>(msg);
    if (!ready || *done) return;
    *done = true;
    control->close();
    if (!ready->ok) {
      cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
          ready->busy ? "directory_busy" : "rendezvous_failed",
          ready->busy ? "directory overloaded; retry after " +
                            std::to_string(ready->retry_after_s) + "s"
                      : "HPoP did not acknowledge rendezvous"));
      return;
    }
    transport::TcpOptions opts;
    opts.local_port = source_port;
    cb(mux_.tcp_connect(adv.endpoint, opts));
  });
  control->set_on_reset([cb, done] {
    if (*done) return;
    *done = true;
    cb(util::Result<std::shared_ptr<transport::TcpConnection>>::failure(
        "directory_unreachable", "could not reach directory"));
  });
}

}  // namespace hpop::core
