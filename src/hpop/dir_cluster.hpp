#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "hpop/directory.hpp"
#include "overload/breaker.hpp"
#include "util/retry.hpp"

namespace hpop::core {

/// Sharded, replicated HPoP directory (ROADMAP item 3, directory half).
///
/// N DirectoryShards sit behind a seeded consistent-hash ring; every
/// household maps to R replicas. Registrations are leases (the HPoP
/// renews; a lapsed lease is never served), each shard has its own WAL,
/// and periodic epoch-stamped anti-entropy lets a shard that recovered
/// from its WAL catch up on the registrations it missed while down. The
/// client-visible namespace (household names) stays decoupled from which
/// shard answers — clients walk the same ring and fail over between
/// replicas with the shared RetryPolicy/CircuitBreaker machinery.

// --- Consistent-hash ring -------------------------------------------------

/// Seeded ring of virtual nodes. Both shards and clients build the same
/// ring from (shards, seed, vnodes), so replica sets agree everywhere
/// without any metadata exchange.
class HashRing {
 public:
  HashRing() = default;
  HashRing(std::size_t shards, std::uint64_t seed, int vnodes = 16);

  std::size_t shards() const { return shards_; }

  /// The first `r` distinct shards clockwise from hash(household).
  /// Deterministic; r is clamped to the shard count.
  void replicas(std::string_view household, std::size_t r,
                std::vector<std::uint32_t>& out) const;
  std::vector<std::uint32_t> replicas(std::string_view household,
                                      std::size_t r) const;
  /// The household's primary (first replica).
  std::uint32_t primary(std::string_view household) const;

  std::uint64_t fingerprint() const;

 private:
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  // point->shard
  std::size_t shards_ = 0;
};

// --- Replication wire messages --------------------------------------------

struct DirSyncEntry {
  std::string household;
  traversal::Advertisement advertisement;
  std::uint64_t version = 0;
  util::TimePoint expires_at = 0;
};

/// Shard -> shard state push: a single fresh registration (eager
/// replication) or a full anti-entropy round of every entry the receiver
/// replicates. Entries merge last-writer-wins by version.
struct DirSyncBatch : net::Payload {
  std::uint32_t from_shard = 0;
  std::uint64_t epoch = 0;  // sender's anti-entropy round counter
  bool full = false;        // full round (vs eager single-entry push)
  std::vector<DirSyncEntry> entries;
  std::size_t wire_size() const override {
    std::size_t n = 32;
    for (const DirSyncEntry& e : entries) {
      n += 24 + e.household.size() + e.advertisement.wire_bytes();
    }
    return n;
  }
};

struct DirSyncAck : net::Payload {
  std::uint32_t from_shard = 0;
  std::uint64_t epoch = 0;
  std::uint32_t applied = 0;  // LWW-won entries
  std::uint32_t total = 0;
  std::size_t wire_size() const override { return 32; }
};

// --- Shard ----------------------------------------------------------------

struct DirShardConfig {
  std::uint32_t shard_id = 0;
  std::uint16_t port = 5300;
  std::size_t replication = 2;
  /// 0 disables the periodic push (eager replication still runs).
  util::Duration anti_entropy_interval = 5 * util::kSecond;
  util::Duration lease_ttl = DirectoryServer::kDefaultLeaseTtl;
};

/// One directory shard: a DirectoryServer that additionally replicates.
/// A fresh registration is eagerly pushed to the household's other
/// replicas; a periodic anti-entropy round pushes the full relevant state
/// to one peer at a time (round-robin), so a peer that was down — and
/// recovered only its own WAL — converges within a few rounds. Applied
/// sync entries are WAL-logged on the receiver: catch-up is durable.
class DirectoryShard : public DirectoryServer {
 public:
  DirectoryShard(transport::TransportMux& mux, const HashRing* ring,
                 DirShardConfig cfg);
  ~DirectoryShard() override;

  /// Peer endpoints indexed by shard id (the self slot is ignored).
  void set_peers(std::vector<net::Endpoint> peers);
  void start_anti_entropy();

  std::uint32_t shard_id() const { return cfg_.shard_id; }
  std::uint64_t sync_epoch() const { return sync_epoch_; }

  struct SyncStats {
    std::uint64_t rounds = 0;            // anti-entropy pushes initiated
    std::uint64_t entries_sent = 0;      // across eager + full pushes
    std::uint64_t eager_pushes = 0;      // fresh registrations replicated
    std::uint64_t batches_received = 0;
    std::uint64_t entries_applied = 0;   // LWW-won upserts from peers
  };
  const SyncStats& sync_stats() const { return sync_stats_; }

 protected:
  void handle_message(const std::shared_ptr<transport::TcpConnection>& conn,
                      const net::PayloadPtr& msg) override;
  void on_registered(const std::string& household,
                     const Registration& reg) override;

 private:
  void anti_entropy_tick();
  void push_full_state(std::uint32_t peer);
  void send_to_peer(std::uint32_t peer, net::PayloadPtr batch);
  void apply_batch(const DirSyncBatch& batch,
                   const std::shared_ptr<transport::TcpConnection>& conn);

  const HashRing* ring_;
  DirShardConfig cfg_;
  std::vector<net::Endpoint> peers_;
  std::vector<std::shared_ptr<transport::TcpConnection>> peer_conns_;
  std::uint32_t rr_next_ = 0;  // next anti-entropy target (round-robin)
  std::uint64_t sync_epoch_ = 0;
  SyncStats sync_stats_;
  sim::TimerId ae_timer_ = 0;
  bool ae_armed_ = false;
  std::vector<std::uint32_t> scratch_;
};

// --- Client-side: shard-aware lookup with replica failover -----------------

struct DirClientConfig {
  std::size_t replication = 2;
  /// Per-attempt budget: a connect that hangs (partitioned shard) is
  /// aborted and the next replica tried.
  util::Duration attempt_timeout = 1500 * util::kMillisecond;
  /// Rounds over the whole replica set (max_attempts counts rounds).
  util::RetryPolicy retry{2, 300 * util::kMillisecond, 2.0, 0.5,
                          2 * util::kSecond, 0};
  overload::BreakerConfig breaker{};
};

/// Resolver that walks the household's replica set: per-shard circuit
/// breakers skip known-dead shards, timeouts/resets fail over to the next
/// replica, and whole-set failures back off with the shared RetryPolicy.
/// A found answer wins immediately; not_found is only final once every
/// reachable replica agreed (a freshly recovered shard may genuinely be
/// missing entries its replicas still hold).
class ShardedDirectoryClient {
 public:
  ShardedDirectoryClient(transport::TransportMux& mux, const HashRing* ring,
                         std::vector<net::Endpoint> shards,
                         DirClientConfig cfg, util::Rng rng);

  using LookupCallback =
      std::function<void(util::Result<traversal::Advertisement>)>;
  void lookup(const std::string& household, LookupCallback cb);

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t ok = 0;
    std::uint64_t not_found = 0;
    std::uint64_t busy = 0;         // every replica shed
    std::uint64_t unreachable = 0;  // every replica + retry round failed
    std::uint64_t failovers = 0;    // attempts beyond the first replica
    std::uint64_t timeouts = 0;     // per-attempt timer fired
    std::uint64_t breaker_skips = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending;
  void attempt(const std::shared_ptr<Pending>& p);
  void next_attempt(const std::shared_ptr<Pending>& p);

  transport::TransportMux& mux_;
  const HashRing* ring_;
  std::vector<net::Endpoint> shards_;
  DirClientConfig cfg_;
  util::Rng rng_;
  std::vector<overload::CircuitBreaker> breakers_;  // one per shard
  std::uint64_t next_txn_ = 1;
  Stats stats_;
};

// --- HPoP-side: sharded registration with renewal and failover -------------

struct DirRegistrationConfig {
  std::size_t replication = 2;
  std::uint32_t lease_s = 0;  // 0 asks for the shard's default TTL
  /// Renew at half the granted lease. Off = register once (a silent HPoP
  /// whose lease must lapse — the stale-advertisement probe in benches).
  bool auto_renew = true;
  util::Duration ack_timeout = 2 * util::kSecond;
  util::RetryPolicy retry{6, 500 * util::kMillisecond, 2.0, 0.5,
                          4 * util::kSecond, 0};
};

/// Keeps a household registered against its replica set by running an
/// independent register/renew loop against EVERY replica: each loop treats
/// a missing DirRegisterAck as failure and retries with backoff, and
/// renews at half-lease while auto_renew is on. Client-driven replication
/// keeps each live replica's lease client-fresh, so a lookup never finds
/// only expired copies just because the one replica taking writes got cut
/// off — anti-entropy only has to repair replicas that were down, not
/// carry the steady-state freshness. An ack means the entry is WAL-durable
/// on at least one replica — the zero acked-registration-loss invariant
/// benches gate on.
class ShardedDirectoryRegistration {
 public:
  ShardedDirectoryRegistration(transport::TransportMux& mux,
                               const HashRing* ring,
                               std::vector<net::Endpoint> shards,
                               std::string household,
                               DirRegistrationConfig cfg, util::Rng rng,
                               traversal::ReachabilityManager* reach = nullptr);
  ~ShardedDirectoryRegistration();

  void register_advertisement(const traversal::Advertisement& adv);

  struct Stats {
    std::uint64_t acks = 0;
    std::uint64_t renews = 0;
    std::uint64_t failovers = 0;  // retries after a failed/timed-out ack
    std::uint64_t ack_timeouts = 0;
  };
  const Stats& stats() const { return stats_; }
  bool acked() const { return stats_.acks > 0; }
  util::TimePoint last_ack_at() const { return last_ack_at_; }
  std::uint32_t granted_lease_s() const { return granted_lease_s_; }
  const std::string& household() const { return household_; }

 private:
  /// One register/renew loop per replica, failing and retrying alone.
  struct ReplicaLoop {
    std::uint32_t shard = 0;
    std::shared_ptr<transport::TcpConnection> control;
    std::uint64_t awaiting_txn = 0;
    sim::TimerId ack_timer = 0;
    bool ack_armed = false;
    sim::TimerId next_timer = 0;  // renewal or retry backoff
    bool next_armed = false;
    int attempt = 0;  // consecutive failures since the last ack
  };
  void attempt_register(std::size_t li);
  void fail_attempt(std::size_t li);
  void cancel_timers();

  transport::TransportMux& mux_;
  const HashRing* ring_;
  std::vector<net::Endpoint> shards_;
  std::string household_;
  DirRegistrationConfig cfg_;
  util::Rng rng_;
  traversal::ReachabilityManager* reach_;
  std::vector<std::uint32_t> replicas_;
  std::vector<ReplicaLoop> loops_;
  traversal::Advertisement adv_{};
  std::uint64_t next_txn_ = 1;
  util::TimePoint last_ack_at_ = 0;
  std::uint32_t granted_lease_s_ = 0;
  Stats stats_;
};

// --- Cluster owner ---------------------------------------------------------

struct DirClusterConfig {
  std::size_t shards = 4;
  std::size_t replication = 2;
  std::uint16_t port = 5300;
  int vnodes = 16;
  std::uint64_t ring_seed = 0x52494e47;  // "RING"
  util::Duration lease_ttl = 30 * util::kSecond;
  util::Duration anti_entropy_interval = 5 * util::kSecond;
};

/// Owns the shard processes: per shard a StorageDevice, a WAL on it, a
/// TransportMux on the given host, and the DirectoryShard itself. Knows
/// how to die and come back: register_with_chaos() wires crash/restart
/// callbacks that destroy the process image (device crashes first) and
/// rebuild it from the WAL, after which anti-entropy repairs the gap.
class DirectoryCluster {
 public:
  DirectoryCluster(std::vector<net::Host*> hosts, DirClusterConfig cfg,
                   util::Rng rng);
  ~DirectoryCluster() = default;
  DirectoryCluster(const DirectoryCluster&) = delete;
  DirectoryCluster& operator=(const DirectoryCluster&) = delete;

  const HashRing& ring() const { return ring_; }
  const DirClusterConfig& config() const { return cfg_; }
  std::size_t shards() const { return slots_.size(); }
  /// Null while the shard is crashed.
  DirectoryShard* shard(std::size_t i) { return slots_[i].shard.get(); }
  const DirectoryShard* shard(std::size_t i) const {
    return slots_[i].shard.get();
  }
  net::Host& host(std::size_t i) { return *slots_[i].host; }
  durable::StorageDevice& device(std::size_t i) { return *slots_[i].device; }
  std::vector<net::Endpoint> endpoints() const;
  DirClientConfig client_config() const;

  /// Registers every shard host as a crashable node (name = host name)
  /// with its device attached, so a FaultPlan crash against the host
  /// loses the process and recovers from the WAL.
  void register_with_chaos(fault::ChaosController& chaos);

  /// Serving-path oracle, no network: would some live shard in the
  /// household's replica set answer a lookup right now? (Entry present
  /// and lease unexpired.)
  bool resolves(const std::string& household) const;

  std::size_t total_registered() const;
  std::uint64_t fingerprint() const;
  DirectoryShard::SyncStats sync_totals() const;

 private:
  struct ShardSlot {
    net::Host* host = nullptr;
    std::unique_ptr<durable::StorageDevice> device;
    std::unique_ptr<durable::Wal> wal;
    std::unique_ptr<transport::TransportMux> mux;
    std::unique_ptr<DirectoryShard> shard;
  };
  void build_shard(std::size_t i, bool recover);

  DirClusterConfig cfg_;
  HashRing ring_;
  std::vector<ShardSlot> slots_;
};

}  // namespace hpop::core
