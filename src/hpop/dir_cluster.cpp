#include "hpop/dir_cluster.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace hpop::core {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

// --- HashRing --------------------------------------------------------------

HashRing::HashRing(std::size_t shards, std::uint64_t seed, int vnodes)
    : shards_(shards) {
  ring_.reserve(shards * static_cast<std::size_t>(vnodes));
  for (std::size_t s = 0; s < shards; ++s) {
    for (int v = 0; v < vnodes; ++v) {
      const std::uint64_t point = splitmix64(
          seed ^ splitmix64((static_cast<std::uint64_t>(s) << 20) +
                            static_cast<std::uint64_t>(v) + 1));
      ring_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

void HashRing::replicas(std::string_view household, std::size_t r,
                        std::vector<std::uint32_t>& out) const {
  out.clear();
  if (ring_.empty()) return;
  r = std::min(r, shards_);
  // FNV-1a alone has weak high-bit avalanche on short keys: sequential
  // household names ("home-0", "home-1", ...) land on neighbouring ring
  // points and pile onto a couple of shards. The finalizer scatters them.
  const std::uint64_t h = splitmix64(fnv1a(household));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& p, std::uint64_t v) { return p.first < v; });
  std::size_t i = static_cast<std::size_t>(it - ring_.begin());
  for (std::size_t step = 0; step < ring_.size() && out.size() < r; ++step) {
    const std::uint32_t shard = ring_[(i + step) % ring_.size()].second;
    if (std::find(out.begin(), out.end(), shard) == out.end()) {
      out.push_back(shard);
    }
  }
}

std::vector<std::uint32_t> HashRing::replicas(std::string_view household,
                                              std::size_t r) const {
  std::vector<std::uint32_t> out;
  replicas(household, r, out);
  return out;
}

std::uint32_t HashRing::primary(std::string_view household) const {
  std::vector<std::uint32_t> out;
  replicas(household, 1, out);
  return out.empty() ? 0 : out[0];
}

std::uint64_t HashRing::fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [point, shard] : ring_) {
    h = splitmix64(h ^ point ^ shard);
  }
  return h;
}

// --- DirectoryShard --------------------------------------------------------

DirectoryShard::DirectoryShard(transport::TransportMux& mux,
                               const HashRing* ring, DirShardConfig cfg)
    : DirectoryServer(mux, cfg.port), ring_(ring), cfg_(cfg) {
  set_lease_ttl(cfg_.lease_ttl);
  rr_next_ = cfg_.shard_id;  // stagger round-robin starts across shards
}

DirectoryShard::~DirectoryShard() {
  if (ae_armed_) mux_.simulator().cancel(ae_timer_);
}

void DirectoryShard::set_peers(std::vector<net::Endpoint> peers) {
  peers_ = std::move(peers);
  peer_conns_.assign(peers_.size(), nullptr);
}

void DirectoryShard::start_anti_entropy() {
  if (cfg_.anti_entropy_interval <= 0) return;
  if (ae_armed_) mux_.simulator().cancel(ae_timer_);
  // Phase-offset the first tick by shard id so a fleet of shards spreads
  // its rounds instead of pushing in lockstep.
  const util::Duration first =
      cfg_.anti_entropy_interval +
      (cfg_.anti_entropy_interval * (cfg_.shard_id % 8)) / 8;
  ae_timer_ = mux_.simulator().schedule(first, [this] { anti_entropy_tick(); });
  ae_armed_ = true;
}

void DirectoryShard::handle_message(
    const std::shared_ptr<transport::TcpConnection>& conn,
    const net::PayloadPtr& msg) {
  if (const auto batch = std::dynamic_pointer_cast<const DirSyncBatch>(msg)) {
    apply_batch(*batch, conn);
    return;
  }
  if (std::dynamic_pointer_cast<const DirSyncAck>(msg)) {
    return;  // fire-and-forget pushes; the ack only confirms liveness
  }
  DirectoryServer::handle_message(conn, msg);
}

void DirectoryShard::apply_batch(
    const DirSyncBatch& batch,
    const std::shared_ptr<transport::TcpConnection>& conn) {
  ++sync_stats_.batches_received;
  const util::TimePoint now = mux_.simulator().now();
  std::uint32_t applied = 0;
  for (const DirSyncEntry& e : batch.entries) {
    // Never resurrect a lapsed lease: a dead HPoP's entry must stay dead
    // even when a slow peer pushes it after expiry.
    if (e.expires_at != 0 && now >= e.expires_at) continue;
    Registration r;
    r.advertisement = e.advertisement;
    r.version = e.version;
    r.expires_at = e.expires_at;
    if (upsert(e.household, r, /*wal_log=*/true)) ++applied;
  }
  // One durability barrier per batch, not per entry — what makes a full
  // anti-entropy round one fsync instead of thousands.
  if (applied > 0 && wal_ != nullptr) wal_->sync();
  sync_stats_.entries_applied += applied;
  auto ack = std::make_shared<DirSyncAck>();
  ack->from_shard = cfg_.shard_id;
  ack->epoch = batch.epoch;
  ack->applied = applied;
  ack->total = static_cast<std::uint32_t>(batch.entries.size());
  conn->send(ack);
}

void DirectoryShard::on_registered(const std::string& household,
                                   const Registration& reg) {
  if (ring_ == nullptr || peers_.empty()) return;
  ring_->replicas(household, cfg_.replication, scratch_);
  auto batch = std::make_shared<DirSyncBatch>();
  batch->from_shard = cfg_.shard_id;
  batch->epoch = sync_epoch_;
  batch->full = false;
  batch->entries.push_back(
      {household, reg.advertisement, reg.version, reg.expires_at});
  bool pushed = false;
  for (const std::uint32_t peer : scratch_) {
    if (peer == cfg_.shard_id || peer >= peers_.size()) continue;
    send_to_peer(peer, batch);
    ++sync_stats_.entries_sent;
    pushed = true;
  }
  if (pushed) ++sync_stats_.eager_pushes;
}

void DirectoryShard::send_to_peer(std::uint32_t peer, net::PayloadPtr batch) {
  auto& slot = peer_conns_[peer];
  if (!slot) {
    slot = mux_.tcp_connect(peers_[peer]);
    auto conn = slot;
    conn->set_on_message([this, conn](net::PayloadPtr msg) {
      handle_message(conn, msg);
    });
    conn->set_on_reset([this, peer, conn] {
      // Peer crashed or the path is cut: drop the connection so the next
      // push dials fresh (the peer may have restarted with a new mux).
      if (peer_conns_[peer] == conn) peer_conns_[peer] = nullptr;
    });
    conn->set_on_remote_close([this, peer, conn] {
      if (peer_conns_[peer] == conn) peer_conns_[peer] = nullptr;
    });
  }
  slot->send(std::move(batch));
}

void DirectoryShard::anti_entropy_tick() {
  // Next peer in round-robin order, skipping self.
  if (ring_ != nullptr && peers_.size() > 1) {
    for (std::size_t step = 0; step < peers_.size(); ++step) {
      rr_next_ = (rr_next_ + 1) % static_cast<std::uint32_t>(peers_.size());
      if (rr_next_ != cfg_.shard_id) break;
    }
    if (rr_next_ != cfg_.shard_id) push_full_state(rr_next_);
  }
  ae_timer_ = mux_.simulator().schedule(cfg_.anti_entropy_interval,
                                        [this] { anti_entropy_tick(); });
}

void DirectoryShard::push_full_state(std::uint32_t peer) {
  ++sync_epoch_;
  ++sync_stats_.rounds;
  const util::TimePoint now = mux_.simulator().now();
  auto batch = std::make_shared<DirSyncBatch>();
  batch->from_shard = cfg_.shard_id;
  batch->epoch = sync_epoch_;
  batch->full = true;
  for (const auto& [household, reg] : households_) {
    if (reg.expires_at != 0 && now >= reg.expires_at) continue;
    ring_->replicas(household.str(), cfg_.replication, scratch_);
    if (std::find(scratch_.begin(), scratch_.end(), peer) == scratch_.end()) {
      continue;
    }
    batch->entries.push_back({std::string(household.str()), reg.advertisement,
                              reg.version, reg.expires_at});
  }
  if (batch->entries.empty()) return;
  sync_stats_.entries_sent += batch->entries.size();
  send_to_peer(peer, std::move(batch));
}

// --- ShardedDirectoryClient ------------------------------------------------

struct ShardedDirectoryClient::Pending {
  std::string household;
  std::vector<std::uint32_t> replicas;
  std::size_t idx = 0;
  int round = 1;
  int attempts_this_round = 0;
  bool forced = false;  // breaker override used (all replicas were open)
  bool any_not_found = false;
  bool any_busy = false;
  util::Duration busy_hint = 0;
  util::TimePoint started = 0;
  LookupCallback cb;
};

ShardedDirectoryClient::ShardedDirectoryClient(
    transport::TransportMux& mux, const HashRing* ring,
    std::vector<net::Endpoint> shards, DirClientConfig cfg, util::Rng rng)
    : mux_(mux),
      ring_(ring),
      shards_(std::move(shards)),
      cfg_(cfg),
      rng_(rng) {
  breakers_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    breakers_.emplace_back(cfg_.breaker, &rng_);
  }
}

void ShardedDirectoryClient::lookup(const std::string& household,
                                    LookupCallback cb) {
  ++stats_.lookups;
  auto p = std::make_shared<Pending>();
  p->household = household;
  ring_->replicas(household, cfg_.replication, p->replicas);
  p->started = mux_.simulator().now();
  p->cb = std::move(cb);
  if (p->replicas.empty()) {
    ++stats_.unreachable;
    p->cb(util::Result<traversal::Advertisement>::failure(
        "directory_unreachable", "no directory shards"));
    return;
  }
  attempt(p);
}

void ShardedDirectoryClient::next_attempt(const std::shared_ptr<Pending>& p) {
  ++p->idx;
  attempt(p);
}

void ShardedDirectoryClient::attempt(const std::shared_ptr<Pending>& p) {
  sim::Simulator& sim = mux_.simulator();
  const util::TimePoint now = sim.now();
  // Skip shards whose breaker is open — unless that would skip the whole
  // replica set without a single wire attempt, in which case force the
  // first replica (fail fast is worse than fail certain).
  while (p->idx < p->replicas.size() && !p->forced &&
         !breakers_[p->replicas[p->idx]].allow(now)) {
    ++stats_.breaker_skips;
    ++p->idx;
  }
  if (p->idx >= p->replicas.size()) {
    if (p->attempts_this_round == 0 && !p->forced && !p->any_not_found) {
      p->forced = true;
      p->idx = 0;
      attempt(p);
      return;
    }
    // Round exhausted.
    if (p->any_not_found) {
      // Every replica that answered agreed the household is absent.
      ++stats_.not_found;
      p->cb(util::Result<traversal::Advertisement>::failure(
          "not_found", "household not registered"));
      return;
    }
    if (cfg_.retry.may_retry(p->round, p->started, now)) {
      const util::Duration delay = cfg_.retry.backoff_with_hint(
          p->round, rng_, p->any_busy ? p->busy_hint : 0);
      ++p->round;
      p->idx = 0;
      p->attempts_this_round = 0;
      p->forced = false;
      sim.schedule(delay, [this, p] { attempt(p); });
      return;
    }
    if (p->any_busy) {
      ++stats_.busy;
      p->cb(util::Result<traversal::Advertisement>::failure(
          "directory_busy", "every replica shed the lookup"));
    } else {
      ++stats_.unreachable;
      p->cb(util::Result<traversal::Advertisement>::failure(
          "directory_unreachable", "no directory replica reachable"));
    }
    return;
  }

  const std::uint32_t s = p->replicas[p->idx];
  if (p->idx > 0 || p->round > 1) ++stats_.failovers;
  ++p->attempts_this_round;
  auto conn = mux_.tcp_connect(shards_[s]);
  auto req = std::make_shared<DirLookupRequest>();
  req->household = p->household;
  req->txn = next_txn_++;
  conn->set_on_established([conn, req] { conn->send(req); });
  auto done = std::make_shared<bool>(false);
  auto timer = std::make_shared<sim::TimerId>(
      sim.schedule(cfg_.attempt_timeout, [this, p, conn, done, s] {
        if (*done) return;
        *done = true;
        ++stats_.timeouts;
        breakers_[s].record_failure(mux_.simulator().now());
        conn->abort();
        next_attempt(p);
      }));
  conn->set_on_message([this, p, conn, done, timer, s](net::PayloadPtr msg) {
    const auto resp = std::dynamic_pointer_cast<const DirLookupResponse>(msg);
    if (!resp || *done) return;
    *done = true;
    sim::Simulator& sim2 = mux_.simulator();
    sim2.cancel(*timer);
    conn->close();
    if (resp->busy) {
      const util::Duration hold =
          static_cast<util::Duration>(resp->retry_after_s) * util::kSecond;
      breakers_[s].force_open(sim2.now(), hold);
      p->any_busy = true;
      p->busy_hint = std::max(p->busy_hint, hold);
      next_attempt(p);
      return;
    }
    breakers_[s].record_success(sim2.now());
    if (resp->found) {
      ++stats_.ok;
      p->cb(resp->advertisement);
      return;
    }
    p->any_not_found = true;
    next_attempt(p);
  });
  conn->set_on_reset([this, p, done, timer, s] {
    if (*done) return;
    *done = true;
    mux_.simulator().cancel(*timer);
    breakers_[s].record_failure(mux_.simulator().now());
    next_attempt(p);
  });
}

// --- ShardedDirectoryRegistration ------------------------------------------

ShardedDirectoryRegistration::ShardedDirectoryRegistration(
    transport::TransportMux& mux, const HashRing* ring,
    std::vector<net::Endpoint> shards, std::string household,
    DirRegistrationConfig cfg, util::Rng rng,
    traversal::ReachabilityManager* reach)
    : mux_(mux),
      ring_(ring),
      shards_(std::move(shards)),
      household_(std::move(household)),
      cfg_(cfg),
      rng_(rng),
      reach_(reach) {
  ring_->replicas(household_, cfg_.replication, replicas_);
}

ShardedDirectoryRegistration::~ShardedDirectoryRegistration() {
  cancel_timers();
}

void ShardedDirectoryRegistration::cancel_timers() {
  for (ReplicaLoop& loop : loops_) {
    if (loop.ack_armed) {
      mux_.simulator().cancel(loop.ack_timer);
      loop.ack_armed = false;
    }
    if (loop.next_armed) {
      mux_.simulator().cancel(loop.next_timer);
      loop.next_armed = false;
    }
  }
}

void ShardedDirectoryRegistration::register_advertisement(
    const traversal::Advertisement& adv) {
  adv_ = adv;
  if (loops_.empty()) {
    loops_.resize(replicas_.size());
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      loops_[i].shard = replicas_[i];
    }
  }
  for (std::size_t i = 0; i < loops_.size(); ++i) attempt_register(i);
}

void ShardedDirectoryRegistration::attempt_register(std::size_t li) {
  ReplicaLoop& loop = loops_[li];
  if (!loop.control) {
    loop.control = mux_.tcp_connect(shards_[loop.shard]);
    auto conn = loop.control;
    conn->set_on_message([this, conn, li](net::PayloadPtr msg) {
      ReplicaLoop& l = loops_[li];
      if (conn != l.control) return;  // superseded by a retry
      if (const auto ack =
              std::dynamic_pointer_cast<const DirRegisterAck>(msg)) {
        if (!ack->ok || ack->txn != l.awaiting_txn) return;
        l.awaiting_txn = 0;
        if (l.ack_armed) {
          mux_.simulator().cancel(l.ack_timer);
          l.ack_armed = false;
        }
        ++stats_.acks;
        last_ack_at_ = mux_.simulator().now();
        granted_lease_s_ = ack->lease_s;
        l.attempt = 0;
        if (cfg_.auto_renew && ack->lease_s > 0) {
          const util::Duration renew_in =
              static_cast<util::Duration>(ack->lease_s) * util::kSecond / 2;
          if (l.next_armed) mux_.simulator().cancel(l.next_timer);
          l.next_timer = mux_.simulator().schedule(renew_in, [this, li] {
            ++stats_.renews;
            attempt_register(li);
          });
          l.next_armed = true;
        }
        return;
      }
      if (const auto rdv =
              std::dynamic_pointer_cast<const DirRendezvousRequest>(msg)) {
        if (reach_ == nullptr) return;
        reach_->expect_peer(rdv->client);
        auto ready = std::make_shared<DirRendezvousReady>();
        ready->txn = rdv->txn;
        ready->ok = true;
        conn->send(ready);
      }
    });
    conn->set_on_reset([this, conn, li] {
      ReplicaLoop& l = loops_[li];
      if (conn != l.control) return;
      l.control = nullptr;
      if (l.awaiting_txn != 0) fail_attempt(li);
    });
  }
  auto reg = std::make_shared<DirRegister>();
  reg->household = household_;
  reg->advertisement = adv_;
  reg->lease_s = cfg_.lease_s;
  reg->txn = next_txn_++;
  loop.awaiting_txn = reg->txn;
  loop.control->send(reg);
  if (loop.ack_armed) mux_.simulator().cancel(loop.ack_timer);
  loop.ack_timer = mux_.simulator().schedule(cfg_.ack_timeout,
                                             [this, li] { fail_attempt(li); });
  loop.ack_armed = true;
}

void ShardedDirectoryRegistration::fail_attempt(std::size_t li) {
  ReplicaLoop& loop = loops_[li];
  if (loop.ack_armed) {
    mux_.simulator().cancel(loop.ack_timer);
    loop.ack_armed = false;
  }
  loop.awaiting_txn = 0;
  ++stats_.ack_timeouts;
  if (loop.control) {
    loop.control->abort();
    loop.control = nullptr;
  }
  ++stats_.failovers;
  ++loop.attempt;
  // Unbounded retries on purpose — an HPoP that stops trying to register
  // goes dark for its whole household on this replica. The policy's
  // max_backoff bounds the pace; max_attempts only bounds how far the
  // exponent climbs.
  const util::Duration delay = cfg_.retry.backoff(
      std::min(loop.attempt, cfg_.retry.max_attempts), rng_);
  if (loop.next_armed) mux_.simulator().cancel(loop.next_timer);
  loop.next_timer =
      mux_.simulator().schedule(delay, [this, li] { attempt_register(li); });
  loop.next_armed = true;
}

// --- DirectoryCluster ------------------------------------------------------

DirectoryCluster::DirectoryCluster(std::vector<net::Host*> hosts,
                                   DirClusterConfig cfg, util::Rng rng)
    : cfg_(cfg) {
  cfg_.shards = hosts.size();
  ring_ = HashRing(cfg_.shards, cfg_.ring_seed, cfg_.vnodes);
  slots_.resize(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    slots_[i].host = hosts[i];
    slots_[i].device = std::make_unique<durable::StorageDevice>(
        hosts[i]->name() + "-dirdisk", rng.fork());
    build_shard(i, /*recover=*/false);
  }
  // Peer endpoints exist only after every slot is built; wire them now.
  const std::vector<net::Endpoint> eps = endpoints();
  for (ShardSlot& slot : slots_) {
    slot.shard->set_peers(eps);
    slot.shard->start_anti_entropy();
  }
}

void DirectoryCluster::build_shard(std::size_t i, bool recover) {
  ShardSlot& slot = slots_[i];
  slot.mux = std::make_unique<transport::TransportMux>(*slot.host);
  slot.wal = std::make_unique<durable::Wal>(*slot.device, "directory.wal");
  DirShardConfig scfg;
  scfg.shard_id = static_cast<std::uint32_t>(i);
  scfg.port = cfg_.port;
  scfg.replication = cfg_.replication;
  scfg.anti_entropy_interval = cfg_.anti_entropy_interval;
  scfg.lease_ttl = cfg_.lease_ttl;
  slot.shard = std::make_unique<DirectoryShard>(*slot.mux, &ring_, scfg);
  slot.shard->recover_from_wal(*slot.wal);
  if (recover) {
    slot.shard->set_peers(endpoints());
    slot.shard->start_anti_entropy();
  }
}

std::vector<net::Endpoint> DirectoryCluster::endpoints() const {
  std::vector<net::Endpoint> eps;
  eps.reserve(slots_.size());
  for (const ShardSlot& slot : slots_) {
    eps.push_back({slot.host->address(), cfg_.port});
  }
  return eps;
}

DirClientConfig DirectoryCluster::client_config() const {
  DirClientConfig c;
  c.replication = cfg_.replication;
  return c;
}

void DirectoryCluster::register_with_chaos(fault::ChaosController& chaos) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    ShardSlot& slot = slots_[i];
    chaos.register_node(
        slot.host->name(), slot.host,
        [this, i] {
          // Process death: services, WAL handle, and sockets all go. The
          // device already crashed (chaos crashes attached devices first),
          // so the on-disk image is exactly what recovery will scan.
          slots_[i].shard.reset();
          slots_[i].wal.reset();
          slots_[i].mux.reset();
        },
        [this, i] { build_shard(i, /*recover=*/true); });
    chaos.attach_device(slot.host->name(), slot.device.get());
  }
}

bool DirectoryCluster::resolves(const std::string& household) const {
  std::vector<std::uint32_t> reps;
  ring_.replicas(household, cfg_.replication, reps);
  for (const std::uint32_t s : reps) {
    const DirectoryShard* shard = slots_[s].shard.get();
    if (shard != nullptr && shard->would_resolve(household)) return true;
  }
  return false;
}

std::size_t DirectoryCluster::total_registered() const {
  std::size_t n = 0;
  for (const ShardSlot& slot : slots_) {
    if (slot.shard) n += slot.shard->registered();
  }
  return n;
}

std::uint64_t DirectoryCluster::fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::uint64_t fp =
        slots_[i].shard ? slots_[i].shard->fingerprint() : 0;
    h = splitmix64(h ^ splitmix64(i) ^ fp);
  }
  return h;
}

DirectoryShard::SyncStats DirectoryCluster::sync_totals() const {
  DirectoryShard::SyncStats t;
  for (const ShardSlot& slot : slots_) {
    if (!slot.shard) continue;
    const DirectoryShard::SyncStats& s = slot.shard->sync_stats();
    t.rounds += s.rounds;
    t.entries_sent += s.entries_sent;
    t.eager_pushes += s.eager_pushes;
    t.batches_received += s.batches_received;
    t.entries_applied += s.entries_applied;
  }
  return t;
}

}  // namespace hpop::core
