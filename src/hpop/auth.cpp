#include "hpop/auth.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/encoding.hpp"

namespace hpop::core {

namespace {
util::Status deny(std::uint64_t serial, const char* code,
                  const char* message) {
  telemetry::registry().counter("attic.grants_denied")->inc();
  telemetry::tracer().emit(telemetry::TraceEvent::kAtticGrantDenied,
                           static_cast<double>(serial), 0, code);
  return util::Status::failure(code, message);
}
}  // namespace

std::string Capability::canonical() const {
  std::ostringstream os;
  os << household << "\n"
     << scope << "\n"
     << (allow_write ? "rw" : "r") << "\n"
     << expires << "\n"
     << serial;
  return os.str();
}

util::Digest TokenAuthority::sign(const Capability& cap) const {
  return util::hmac_sha256(secret_, cap.canonical());
}

Capability TokenAuthority::issue(const std::string& household,
                                 const std::string& scope, bool allow_write,
                                 util::TimePoint expires) {
  Capability cap;
  cap.household = household;
  cap.scope = scope;
  cap.allow_write = allow_write;
  cap.expires = expires;
  cap.serial = next_serial_++;
  cap.mac = sign(cap);
  return cap;
}

util::Status TokenAuthority::verify(const Capability& cap,
                                    const std::string& path,
                                    bool write_access,
                                    util::TimePoint now) const {
  if (!util::digest_equal(cap.mac, sign(cap))) {
    return deny(cap.serial, "bad_signature", "capability forged");
  }
  if (now > cap.expires) {
    return deny(cap.serial, "expired", "capability expired");
  }
  if (revoked_.count(cap.serial) > 0) {
    return deny(cap.serial, "revoked", "capability revoked");
  }
  if (path.rfind(cap.scope, 0) != 0) {
    return deny(cap.serial, "out_of_scope", "path outside granted scope");
  }
  if (write_access && !cap.allow_write) {
    return deny(cap.serial, "read_only", "write with read-only grant");
  }
  return util::Status::success();
}

std::string TokenAuthority::encode(const Capability& cap) {
  std::ostringstream os;
  os << cap.household << "|" << cap.scope << "|"
     << (cap.allow_write ? "rw" : "r") << "|" << cap.expires << "|"
     << cap.serial << "|"
     << util::hex_encode(util::Bytes(cap.mac.begin(), cap.mac.end()));
  return util::base64_encode(util::to_bytes(os.str()));
}

util::Result<Capability> TokenAuthority::decode(const std::string& token) {
  const auto raw = util::base64_decode(token);
  if (!raw.ok()) {
    return util::Result<Capability>::failure("bad_encoding",
                                             "token not base64");
  }
  const std::string text = util::to_string(raw.value());
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find('|', start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  if (parts.size() != 6) {
    return util::Result<Capability>::failure("bad_format",
                                             "wrong field count");
  }
  Capability cap;
  cap.household = parts[0];
  cap.scope = parts[1];
  cap.allow_write = parts[2] == "rw";
  cap.expires = std::atoll(parts[3].c_str());
  cap.serial = std::strtoull(parts[4].c_str(), nullptr, 10);
  const auto mac = util::hex_decode(parts[5]);
  if (!mac.ok() || mac.value().size() != cap.mac.size()) {
    return util::Result<Capability>::failure("bad_format", "bad mac field");
  }
  std::copy(mac.value().begin(), mac.value().end(), cap.mac.begin());
  return cap;
}

}  // namespace hpop::core
