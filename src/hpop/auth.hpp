#pragma once

#include <set>
#include <string>

#include "util/hash.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace hpop::core {

/// A capability: scoped, expiring, HMAC-signed access to a slice of an
/// HPoP's namespace. This is what the data attic's "QR code" bootstrap
/// (§IV-A1) carries to a medical provider: everything needed to access the
/// correct portion of the user's attic — endpoint, credentials, location.
struct Capability {
  std::string household;
  std::string scope;        // path prefix the holder may touch
  bool allow_write = false;
  util::TimePoint expires = 0;
  std::uint64_t serial = 0;  // lets the authority revoke individual grants
  util::Digest mac{};

  std::string canonical() const;
};

/// Issues and verifies capabilities using the household's secret. Lives on
/// the HPoP; external services only ever hold encoded capabilities.
class TokenAuthority {
 public:
  explicit TokenAuthority(util::Bytes secret) : secret_(std::move(secret)) {}

  Capability issue(const std::string& household, const std::string& scope,
                   bool allow_write, util::TimePoint expires);

  /// Checks signature, expiry, revocation, scope and mode.
  util::Status verify(const Capability& cap, const std::string& path,
                      bool write_access, util::TimePoint now) const;

  void revoke(std::uint64_t serial) { revoked_.insert(serial); }

  /// Compact string form (what the QR code encodes).
  static std::string encode(const Capability& cap);
  static util::Result<Capability> decode(const std::string& token);

 private:
  util::Digest sign(const Capability& cap) const;

  util::Bytes secret_;
  std::uint64_t next_serial_ = 1;
  std::set<std::uint64_t> revoked_;
};

}  // namespace hpop::core
