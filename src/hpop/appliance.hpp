#pragma once

#include <memory>
#include <string>

#include "hpop/auth.hpp"
#include "hpop/directory.hpp"
#include "http/client.hpp"
#include "http/server.hpp"
#include "overload/admission.hpp"
#include "traversal/reachability.hpp"
#include "util/symbol_map.hpp"

namespace hpop::core {

struct HpopConfig {
  std::string household;
  std::uint16_t service_port = 443;
  util::Bytes secret = util::to_bytes("household-secret");
  traversal::ReachabilityConfig reachability;
  std::optional<net::Endpoint> directory;
  /// Front-door overload admission (off by default). When set, requests
  /// bearing an owner-scoped capability outrank third-party traffic, and
  /// provider health-record writes (PUT /attic/records/...) are critical —
  /// they are never shed, per the §IV-A promise that the attic is the
  /// durable home for a patient's records.
  std::optional<overload::AdmissionConfig> admission;
};

/// The home point of presence (§II-III): an always-on appliance in the home
/// network that maintains a fixed Internet presence for the household and
/// hosts its services — the attic, NoCDN peer, DCol waypoint and
/// Internet@home all attach to one of these.
///
/// Owns the host's transport stack, an HTTP(S) front door on the service
/// port, the reachability machinery (UPnP -> STUN -> TURN), directory
/// registration, and the capability-token authority.
class Hpop {
 public:
  Hpop(net::Host& host, HpopConfig config);

  /// Boot sequence: establish reachability, register with the directory,
  /// then report how the appliance is reachable.
  using BootCallback = std::function<void(const traversal::Advertisement&)>;
  void boot(BootCallback cb = nullptr);

  /// Services register themselves for introspection; route installation
  /// happens directly on http_server().
  void register_service(const std::string& name,
                        const std::string& description);
  /// Registered services, in registration order.
  const util::SymbolMap<std::string>& services() const { return services_; }

  const std::string& household() const { return config_.household; }
  net::Host& host() { return host_; }
  sim::Simulator& simulator() { return host_.simulator(); }
  transport::TransportMux& mux() { return mux_; }
  http::HttpServer& http_server() { return http_server_; }
  http::HttpClient& http_client() { return http_client_; }
  TokenAuthority& tokens() { return tokens_; }
  traversal::ReachabilityManager& reachability() { return reachability_; }
  const traversal::Advertisement& advertisement() const {
    return reachability_.advertisement();
  }
  std::uint16_t service_port() const { return config_.service_port; }
  bool online() const { return online_; }
  overload::AdmissionController* admission() { return admission_.get(); }

 private:
  net::Host& host_;
  HpopConfig config_;
  transport::TransportMux mux_;
  http::HttpServer http_server_;
  http::HttpClient http_client_;
  TokenAuthority tokens_;
  std::unique_ptr<overload::AdmissionController> admission_;
  traversal::ReachabilityManager reachability_;
  std::unique_ptr<DirectoryRegistration> registration_;
  util::SymbolMap<std::string> services_;
  bool online_ = false;
};

}  // namespace hpop::core
