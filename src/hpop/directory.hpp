#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "durable/wal.hpp"
#include "overload/admission.hpp"
#include "traversal/reachability.hpp"
#include "transport/mux.hpp"
#include "util/symbol_map.hpp"

namespace hpop::core {

/// Directory wire messages. The directory is the fixed rendezvous point
/// that lets a household's devices find its HPoP "whether they are inside
/// or outside of their homes" (§III) — dynamic-DNS plus NAT-rendezvous
/// signalling.

struct DirRegister : net::Payload {
  std::string household;
  traversal::Advertisement advertisement;
  /// Requested lease in seconds; 0 asks for the server's default TTL.
  std::uint32_t lease_s = 0;
  /// Echoed in the DirRegisterAck so the HPoP can match its renewal.
  std::uint64_t txn = 0;
  std::size_t wire_size() const override {
    return 32 + household.size() + advertisement.wire_bytes();
  }
};

/// Directory -> HPoP: the registration is durable (WAL-synced) and the
/// lease clock is running. An HPoP that never sees an ack must assume the
/// registration was lost and retry (possibly against another shard).
struct DirRegisterAck : net::Payload {
  std::uint64_t txn = 0;
  bool ok = false;
  std::uint32_t lease_s = 0;  // granted lease (may differ from requested)
  std::size_t wire_size() const override { return 24; }
};

struct DirLookupRequest : net::Payload {
  std::string household;
  std::uint64_t txn = 0;
  std::size_t wire_size() const override { return 24 + household.size(); }
};

struct DirLookupResponse : net::Payload {
  std::uint64_t txn = 0;
  bool found = false;
  /// Overload shed: the directory exists and may know the household, but
  /// refused to answer right now. Retry after retry_after_s seconds.
  bool busy = false;
  std::uint32_t retry_after_s = 0;
  traversal::Advertisement advertisement;
  std::size_t wire_size() const override {
    // The advertisement only rides along on a hit; misses and sheds are
    // header-sized. Metering the payload honestly matters at metro scale
    // where lookup responses dominate directory bytes.
    return 24 + (found ? advertisement.wire_bytes() : 0);
  }
};

/// Client -> directory -> HPoP: "this endpoint is about to connect to you."
struct DirRendezvousRequest : net::Payload {
  std::string household;
  net::Endpoint client;
  std::uint64_t txn = 0;
  std::size_t wire_size() const override { return 40 + household.size(); }
};

/// HPoP -> directory -> client: "punched; connect now."
struct DirRendezvousReady : net::Payload {
  std::uint64_t txn = 0;
  bool ok = false;
  bool busy = false;  // overload shed, not a rendezvous failure
  std::uint32_t retry_after_s = 0;
  std::size_t wire_size() const override { return 24; }
};

/// The public directory service. HPoPs hold persistent registration
/// connections (their always-on presence); lookups and rendezvous requests
/// arrive from anywhere.
///
/// Registrations are leases: each entry carries an absolute expiry and a
/// monotone version (last-writer-wins across replicas). An entry past its
/// expiry is never served — the serving paths treat it as absent and drop
/// it — including entries recovered from the WAL, so a permanently dead
/// HPoP stops resolving one lease after its last renewal.
class DirectoryServer {
 public:
  DirectoryServer(transport::TransportMux& mux, std::uint16_t port = 5300);
  virtual ~DirectoryServer();
  DirectoryServer(const DirectoryServer&) = delete;
  DirectoryServer& operator=(const DirectoryServer&) = delete;

  std::size_t registered() const { return households_.size(); }

  /// Default lease granted to registrations that don't ask for one.
  /// 0 disables expiry (entries live until replaced).
  void set_lease_ttl(util::Duration ttl) { lease_ttl_ = ttl; }
  util::Duration lease_ttl() const { return lease_ttl_; }

  /// Opt-in periodic sweep that erases expired entries even when nobody
  /// looks them up. Off by default: the lazy serving-path check already
  /// guarantees nothing stale is ever served, and an always-armed timer
  /// would keep run-to-idle simulations alive forever.
  void start_expiry_sweep(util::Duration interval);

  /// Overload admission (off unless called). Registrations are critical —
  /// an HPoP that cannot re-register goes dark for every member of its
  /// household — so only lookups and rendezvous signalling are sheddable.
  void enable_admission(overload::AdmissionConfig config);
  std::uint64_t sheds() const { return sheds_; }

  struct Stats {
    std::uint64_t registrations = 0;  // fresh + renewals, network path
    std::uint64_t lookups = 0;
    std::uint64_t lookup_hits = 0;
    std::uint64_t expired_dropped = 0;  // entries dropped past their lease
  };
  const Stats& stats() const { return stats_; }

  /// Non-mutating serving-path preview: would a lookup answer right now?
  /// (Entry present and lease unexpired.) For invariant checks in benches.
  bool would_resolve(const std::string& household) const;

  /// Attaches a WAL so registrations survive a directory crash. A
  /// recovered entry has a null control connection (the process's sockets
  /// died with it) — lookups answer immediately from the recovered
  /// advertisement while HPoPs re-establish their persistent connections.
  void attach_wal(durable::Wal* wal) { wal_ = wal; }
  durable::Wal* wal() const { return wal_; }
  durable::Wal::RecoveryStats recover_from_wal(durable::Wal& wal);
  bool compact_wal();
  util::Bytes serialize_state() const;
  bool restore_state(const util::Bytes& payload);
  /// Digest over registrations (household, method, endpoint, rendezvous,
  /// version, expiry).
  std::uint64_t fingerprint() const;

  static constexpr std::uint8_t kWalRegister = 1;
  static constexpr util::Duration kDefaultLeaseTtl = util::kHour;

 protected:
  struct Registration {
    traversal::Advertisement advertisement;
    std::shared_ptr<transport::TcpConnection> control;
    std::uint64_t version = 0;       // LWW stamp, comparable across shards
    util::TimePoint expires_at = 0;  // absolute; 0 = no expiry
  };

  /// Per-connection message dispatch. Subclasses (DirectoryShard) extend
  /// this with their own message types and fall back to the base handler.
  virtual void handle_message(
      const std::shared_ptr<transport::TcpConnection>& conn,
      const net::PayloadPtr& msg);

  /// Hook: a registration was accepted on the network path (not recovery,
  /// not replication). Shards use it to push the entry to their replicas.
  virtual void on_registered(const std::string& household,
                             const Registration& reg) {
    (void)household;
    (void)reg;
  }

  /// Last-writer-wins upsert: applies iff `reg.version` beats the stored
  /// entry's. A null `reg.control` (recovery / replication) keeps any live
  /// control connection the entry already has. Returns whether it applied;
  /// `wal_log` appends the applied entry to the attached WAL (the caller
  /// decides when to sync — batching syncs is what makes anti-entropy
  /// batches one barrier instead of one per entry).
  bool upsert(const std::string& household, const Registration& reg,
              bool wal_log);

  /// Serving-path find: an entry past its lease is dropped and reported
  /// absent. This is the stale-advertisement fix — it applies equally to
  /// live and WAL-recovered entries.
  const Registration* find_live(const std::string& household);

  bool expired(const Registration& reg) const;
  void wal_append(std::string_view household, const Registration& reg);
  /// Version stamp for a registration accepted now: the current time,
  /// bumped past the stored version so renewals always win locally.
  std::uint64_t next_version(const std::string& household) const;

  transport::TransportMux& mux_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::unique_ptr<overload::AdmissionController> admission_;
  std::uint64_t sheds_ = 0;
  /// Household name -> registration, Symbol-keyed: at metro scale the
  /// directory holds one entry per home, and a std::map's per-node heap
  /// allocations plus string keys dominated its footprint.
  util::SymbolMap<Registration> households_;
  durable::Wal* wal_ = nullptr;
  util::Duration lease_ttl_ = kDefaultLeaseTtl;
  Stats stats_;

 private:
  void apply_record(const durable::WalRecord& rec);
  void expiry_sweep_tick();

  util::Duration sweep_interval_ = 0;
  sim::TimerId sweep_timer_{};
  bool sweep_armed_ = false;
  // txn -> requester connection, for relaying rendezvous-ready.
  std::map<std::uint64_t, std::weak_ptr<transport::TcpConnection>>
      rendezvous_waiters_;
};

/// HPoP-side registration client: keeps the persistent connection, renews
/// the advertisement, and punches on rendezvous notifications.
class DirectoryRegistration {
 public:
  DirectoryRegistration(transport::TransportMux& mux,
                        net::Endpoint directory,
                        std::string household,
                        traversal::ReachabilityManager& reach);
  ~DirectoryRegistration();

  void register_advertisement(const traversal::Advertisement& adv);

  /// Opt-in lease renewal: re-register at half the granted lease so the
  /// entry never lapses while this HPoP is alive. Off by default — the
  /// renewal timer keeps the simulator from going idle, which run-to-empty
  /// tests rely on.
  void enable_auto_renew() { auto_renew_ = true; }
  std::uint64_t acks() const { return acks_; }

 private:
  transport::TransportMux& mux_;
  net::Endpoint directory_;
  std::string household_;
  traversal::ReachabilityManager& reach_;
  std::shared_ptr<transport::TcpConnection> control_;
  traversal::Advertisement last_adv_{};
  bool auto_renew_ = false;
  sim::TimerId renew_timer_ = 0;
  bool renew_armed_ = false;
  std::uint64_t acks_ = 0;
  std::uint64_t next_txn_ = 1;
};

/// Device-side resolver: lookup + (if required) rendezvous + connect.
class DirectoryClient {
 public:
  DirectoryClient(transport::TransportMux& mux, net::Endpoint directory)
      : mux_(mux), directory_(directory) {}

  using LookupCallback =
      std::function<void(util::Result<traversal::Advertisement>)>;
  void lookup(const std::string& household, LookupCallback cb);

  /// Full flow: resolve the household and produce an established TCP
  /// connection to its HPoP service, transparently handling punching or
  /// relays. This is the "connect to home from anywhere" primitive every
  /// HPoP application builds on.
  using ConnectCallback = std::function<void(
      util::Result<std::shared_ptr<transport::TcpConnection>>)>;
  void connect(const std::string& household, ConnectCallback cb);

 private:
  void rendezvous_and_connect(const traversal::Advertisement& adv,
                              const std::string& household,
                              ConnectCallback cb);

  transport::TransportMux& mux_;
  net::Endpoint directory_;
  std::uint64_t next_txn_ = 1;
};

}  // namespace hpop::core
