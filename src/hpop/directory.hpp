#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "durable/wal.hpp"
#include "overload/admission.hpp"
#include "traversal/reachability.hpp"
#include "transport/mux.hpp"
#include "util/symbol_map.hpp"

namespace hpop::core {

/// Directory wire messages. The directory is the fixed rendezvous point
/// that lets a household's devices find its HPoP "whether they are inside
/// or outside of their homes" (§III) — dynamic-DNS plus NAT-rendezvous
/// signalling.

struct DirRegister : net::Payload {
  std::string household;
  traversal::Advertisement advertisement;
  std::size_t wire_size() const override { return 64 + household.size(); }
};

struct DirLookupRequest : net::Payload {
  std::string household;
  std::uint64_t txn = 0;
  std::size_t wire_size() const override { return 24 + household.size(); }
};

struct DirLookupResponse : net::Payload {
  std::uint64_t txn = 0;
  bool found = false;
  /// Overload shed: the directory exists and may know the household, but
  /// refused to answer right now. Retry after retry_after_s seconds.
  bool busy = false;
  std::uint32_t retry_after_s = 0;
  traversal::Advertisement advertisement;
  std::size_t wire_size() const override { return 64; }
};

/// Client -> directory -> HPoP: "this endpoint is about to connect to you."
struct DirRendezvousRequest : net::Payload {
  std::string household;
  net::Endpoint client;
  std::uint64_t txn = 0;
  std::size_t wire_size() const override { return 40 + household.size(); }
};

/// HPoP -> directory -> client: "punched; connect now."
struct DirRendezvousReady : net::Payload {
  std::uint64_t txn = 0;
  bool ok = false;
  bool busy = false;  // overload shed, not a rendezvous failure
  std::uint32_t retry_after_s = 0;
  std::size_t wire_size() const override { return 24; }
};

/// The public directory service. HPoPs hold persistent registration
/// connections (their always-on presence); lookups and rendezvous requests
/// arrive from anywhere.
class DirectoryServer {
 public:
  DirectoryServer(transport::TransportMux& mux, std::uint16_t port = 5300);

  std::size_t registered() const { return households_.size(); }

  /// Overload admission (off unless called). Registrations are critical —
  /// an HPoP that cannot re-register goes dark for every member of its
  /// household — so only lookups and rendezvous signalling are sheddable.
  void enable_admission(overload::AdmissionConfig config);
  std::uint64_t sheds() const { return sheds_; }

  /// Attaches a WAL so registrations survive a directory crash. A
  /// recovered entry has a null control connection (the process's sockets
  /// died with it) — lookups answer immediately from the recovered
  /// advertisement while HPoPs re-establish their persistent connections.
  void attach_wal(durable::Wal* wal) { wal_ = wal; }
  durable::Wal* wal() const { return wal_; }
  durable::Wal::RecoveryStats recover_from_wal(durable::Wal& wal);
  bool compact_wal();
  util::Bytes serialize_state() const;
  bool restore_state(const util::Bytes& payload);
  /// Digest over registrations (household, method, endpoint, rendezvous).
  std::uint64_t fingerprint() const;

  static constexpr std::uint8_t kWalRegister = 1;

 private:
  void apply_record(const durable::WalRecord& rec);
  struct Registration {
    traversal::Advertisement advertisement;
    std::shared_ptr<transport::TcpConnection> control;
  };

  transport::TransportMux& mux_;
  std::shared_ptr<transport::TcpListener> listener_;
  std::unique_ptr<overload::AdmissionController> admission_;
  std::uint64_t sheds_ = 0;
  /// Household name -> registration, Symbol-keyed: at metro scale the
  /// directory holds one entry per home, and a std::map's per-node heap
  /// allocations plus string keys dominated its footprint.
  util::SymbolMap<Registration> households_;
  durable::Wal* wal_ = nullptr;
  // txn -> requester connection, for relaying rendezvous-ready.
  std::map<std::uint64_t, std::weak_ptr<transport::TcpConnection>>
      rendezvous_waiters_;
};

/// HPoP-side registration client: keeps the persistent connection, renews
/// the advertisement, and punches on rendezvous notifications.
class DirectoryRegistration {
 public:
  DirectoryRegistration(transport::TransportMux& mux,
                        net::Endpoint directory,
                        std::string household,
                        traversal::ReachabilityManager& reach);

  void register_advertisement(const traversal::Advertisement& adv);

 private:
  transport::TransportMux& mux_;
  net::Endpoint directory_;
  std::string household_;
  traversal::ReachabilityManager& reach_;
  std::shared_ptr<transport::TcpConnection> control_;
};

/// Device-side resolver: lookup + (if required) rendezvous + connect.
class DirectoryClient {
 public:
  DirectoryClient(transport::TransportMux& mux, net::Endpoint directory)
      : mux_(mux), directory_(directory) {}

  using LookupCallback =
      std::function<void(util::Result<traversal::Advertisement>)>;
  void lookup(const std::string& household, LookupCallback cb);

  /// Full flow: resolve the household and produce an established TCP
  /// connection to its HPoP service, transparently handling punching or
  /// relays. This is the "connect to home from anywhere" primitive every
  /// HPoP application builds on.
  using ConnectCallback = std::function<void(
      util::Result<std::shared_ptr<transport::TcpConnection>>)>;
  void connect(const std::string& household, ConnectCallback cb);

 private:
  void rendezvous_and_connect(const traversal::Advertisement& adv,
                              const std::string& household,
                              ConnectCallback cb);

  transport::TransportMux& mux_;
  net::Endpoint directory_;
  std::uint64_t next_txn_ = 1;
};

}  // namespace hpop::core
