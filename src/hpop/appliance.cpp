#include "hpop/appliance.hpp"

#include "util/logging.hpp"

namespace hpop::core {

Hpop::Hpop(net::Host& host, HpopConfig config)
    : host_(host),
      config_(std::move(config)),
      mux_(host),
      http_server_(mux_, config_.service_port),
      http_client_(mux_),
      tokens_(config_.secret),
      reachability_(mux_, [this] {
        traversal::ReachabilityConfig rc = config_.reachability;
        rc.service_port = config_.service_port;
        return rc;
      }()) {
  if (config_.admission) {
    admission_ = std::make_unique<overload::AdmissionController>(
        simulator(), "hpop.front", *config_.admission);
    http_server_.set_admission(
        admission_.get(), [](const http::Request& req) {
          // Provider health-record writes must never bounce: the provider
          // fires them and forgets, and a lost record is a lost record.
          if (req.method == http::Method::kPut &&
              req.path.rfind("/attic/records/", 0) == 0) {
            return overload::Class::kCritical;
          }
          // Owner-scoped capabilities mark household traffic.
          if (const auto header = req.headers.get("x-capability")) {
            const auto cap = TokenAuthority::decode(*header);
            if (cap.ok() && cap.value().scope == "/") {
              return overload::Class::kOwner;
            }
          }
          return overload::Class::kThirdParty;
        });
  }
  // A friendly landing page, so "is my HPoP up?" has an answer.
  http_server_.route(http::Method::kGet, "/",
                     [this](const http::Request&, http::ResponseWriter& w) {
                       http::Response resp;
                       std::string body =
                           "HPoP for household '" + config_.household + "'\n";
                       for (const auto& [name, desc] : services_) {
                         body += std::string(name.str()) + ": " + desc + "\n";
                       }
                       resp.body = http::Body(body);
                       w.respond(std::move(resp));
                     });
}

void Hpop::boot(BootCallback cb) {
  reachability_.establish([this, cb](const traversal::Advertisement& adv) {
    online_ = adv.method != traversal::ReachMethod::kUnreachable;
    if (config_.directory && online_) {
      registration_ = std::make_unique<DirectoryRegistration>(
          mux_, *config_.directory, config_.household, reachability_);
      registration_->register_advertisement(adv);
    }
    HPOP_LOG(kInfo, "hpop") << config_.household << " online via "
                            << traversal::to_string(adv.method);
    if (cb) cb(adv);
  });
}

void Hpop::register_service(const std::string& name,
                            const std::string& description) {
  services_[name] = description;
}

}  // namespace hpop::core
