#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/trace.hpp"
#include "util/logging.hpp"

namespace hpop::fault {

FaultPlan& FaultPlan::crash(std::string node, util::TimePoint at,
                            util::Duration downtime) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kCrash;
  e.node = std::move(node);
  e.at = at;
  e.duration = downtime;
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::link_down(net::Link* link, util::TimePoint at,
                                util::Duration downtime) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLinkDown;
  e.link = link;
  e.at = at;
  e.duration = downtime;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::flap(net::Link* link, util::TimePoint at, int cycles,
                           util::Duration down_for, util::Duration up_for) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLinkFlap;
  e.link = link;
  e.at = at;
  e.count = cycles;
  e.duration = down_for;
  e.period = up_for;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::degrade(net::Link* link, util::TimePoint at,
                              util::BitRate rate, double loss,
                              util::Duration duration) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kDegrade;
  e.link = link;
  e.at = at;
  e.rate = rate;
  e.loss = loss;
  e.duration = duration;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::burst_loss(net::Link* link, util::TimePoint at,
                                 util::Duration duration, GilbertElliott ge) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kBurstLoss;
  e.link = link;
  e.at = at;
  e.duration = duration;
  e.ge = ge;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::nat_flush(net::NatBox* nat, util::TimePoint at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kNatFlush;
  e.nat = nat;
  e.at = at;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::torn_write(durable::StorageDevice* device,
                                 util::TimePoint at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kTornWrite;
  e.device = device;
  e.at = at;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::partial_flush(durable::StorageDevice* device,
                                    util::TimePoint at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kPartialFlush;
  e.device = device;
  e.at = at;
  events.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::partition(std::vector<net::Node*> a,
                                std::vector<net::Node*> b, util::TimePoint at,
                                util::Duration duration) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kPartition;
  e.set_a = std::move(a);
  e.set_b = std::move(b);
  e.at = at;
  e.duration = duration;
  events.push_back(std::move(e));
  return *this;
}

ChaosController::ChaosController(sim::Simulator& sim, util::Rng rng)
    : sim_(sim), rng_(rng) {}

ChaosController::Metrics& ChaosController::metrics() {
  if (!m_.bound) {
    auto& reg = telemetry::registry();
    m_.crashes = reg.counter("fault.node_crashes");
    m_.restarts = reg.counter("fault.node_restarts");
    m_.link_downs = reg.counter("fault.link_downs");
    m_.link_ups = reg.counter("fault.link_ups");
    m_.nat_flushes = reg.counter("fault.nat_flushes");
    m_.torn_armed = reg.counter("fault.torn_writes_armed");
    m_.partial_armed = reg.counter("fault.partial_flushes_armed");
    m_.partitions = reg.counter("fault.partitions");
    m_.partition_heals = reg.counter("fault.partition_heals");
    m_.downtime_s = reg.histogram("fault.node_downtime_s", 0, 120, 24);
    m_.bound = true;
  }
  return m_;
}

void ChaosController::register_node(const std::string& name, net::Node* node,
                                    std::function<void()> on_crash,
                                    std::function<void()> on_restart) {
  NodeEntry e;
  e.node = node;
  e.on_crash = std::move(on_crash);
  e.on_restart = std::move(on_restart);
  nodes_[name] = std::move(e);
}

void ChaosController::attach_device(const std::string& name,
                                    durable::StorageDevice* device) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    HPOP_LOG(kWarn, "fault") << "attach_device: unknown node " << name;
    return;
  }
  it->second.devices.push_back(device);
}

bool ChaosController::node_up(const std::string& name) const {
  auto it = nodes_.find(name);
  return it != nodes_.end() && it->second.node->is_up();
}

util::Duration ChaosController::delay_until(util::TimePoint when) const {
  return std::max<util::Duration>(0, when - sim_.now());
}

void ChaosController::do_crash(NodeEntry& e, util::Duration downtime) {
  if (!e.node->is_up()) return;  // already down: double-crash is a no-op
  HPOP_LOG(kInfo, "fault") << e.node->name() << ": crash (down for "
                           << util::format_duration(downtime) << ")";
  e.went_down = sim_.now();
  // The power cut reaches the platter first: attached devices drop their
  // unflushed tails (honouring an armed torn write) BEFORE teardown, so
  // the crash callback already sees the exact image recovery will scan.
  for (durable::StorageDevice* d : e.devices) {
    d->crash();
    ++stats_.device_crashes;
  }
  // Take the node down next (clears hooks that may reference service
  // objects), then tear the services down — process death loses both.
  e.node->set_up(false);
  if (e.on_crash) e.on_crash();
  ++stats_.crashes;
  metrics().crashes->inc();
  telemetry::tracer().emit(telemetry::TraceEvent::kNodeCrash,
                           util::to_seconds(downtime), 0, "crash");
  sim_.schedule(downtime, [this, ep = &e] { do_restart(*ep); });
}

void ChaosController::do_restart(NodeEntry& e) {
  if (e.node->is_up()) return;
  const util::Duration down = sim_.now() - e.went_down;
  HPOP_LOG(kInfo, "fault") << e.node->name() << ": restart after "
                           << util::format_duration(down);
  e.node->set_up(true);
  if (e.on_restart) e.on_restart();
  ++stats_.restarts;
  metrics().restarts->inc();
  metrics().downtime_s->observe(util::to_seconds(down));
  telemetry::tracer().emit(telemetry::TraceEvent::kNodeRestart,
                           util::to_seconds(down), 0, "restart");
}

void ChaosController::crash_at(const std::string& name, util::TimePoint when,
                               util::Duration downtime) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    HPOP_LOG(kWarn, "fault") << "crash_at: unknown node " << name;
    return;
  }
  sim_.schedule(delay_until(when),
                [this, e = &it->second, downtime] { do_crash(*e, downtime); });
}

void ChaosController::link_down_at(net::Link* link, util::TimePoint when,
                                   util::Duration downtime) {
  sim_.schedule(delay_until(when), [this, link, downtime] {
    link->set_admin_up(false);
    ++stats_.link_downs;
    metrics().link_downs->inc();
    telemetry::tracer().emit(telemetry::TraceEvent::kLinkDown, 0, 0,
                             "admin_down");
    sim_.schedule(downtime, [this, link] {
      link->set_admin_up(true);
      ++stats_.link_ups;
      metrics().link_ups->inc();
      telemetry::tracer().emit(telemetry::TraceEvent::kLinkUp, 0, 0,
                               "admin_up");
    });
  });
}

void ChaosController::flap_link(net::Link* link, util::TimePoint start,
                                int cycles, util::Duration down_for,
                                util::Duration up_for) {
  util::TimePoint at = start;
  for (int i = 0; i < cycles; ++i) {
    link_down_at(link, at, down_for);
    at += down_for + up_for;
  }
}

void ChaosController::degrade_link(net::Link* link, util::TimePoint when,
                                   util::BitRate rate, double loss,
                                   util::Duration duration) {
  sim_.schedule(delay_until(when), [this, link, rate, loss, duration] {
    const net::LinkParams saved = link->params();
    if (rate > 0) link->set_rate(rate);
    link->set_loss(loss);
    ++stats_.degradations;
    telemetry::tracer().emit(telemetry::TraceEvent::kLinkDegraded, rate, loss,
                             "degrade");
    sim_.schedule(duration, [link, saved] {
      link->set_rate(saved.rate);
      link->set_loss(saved.loss);
    });
  });
}

void ChaosController::ge_step(net::Link* link, util::TimePoint end,
                              GilbertElliott ge, bool bad,
                              double restore_loss) {
  if (sim_.now() >= end) {
    link->set_loss(restore_loss);
    if (bad) {
      telemetry::tracer().emit(telemetry::TraceEvent::kBurstLoss, 0,
                               ge.bad_loss, "episode_end");
    }
    return;
  }
  const bool flip =
      rng_.bernoulli(bad ? ge.p_bad_to_good : ge.p_good_to_bad);
  const bool next_bad = flip ? !bad : bad;
  if (next_bad != bad) {
    link->set_loss(next_bad ? ge.bad_loss : ge.good_loss);
    telemetry::tracer().emit(telemetry::TraceEvent::kBurstLoss,
                             next_bad ? 1 : 0, ge.bad_loss, "transition");
  }
  sim_.schedule(ge.step, [this, link, end, ge, next_bad, restore_loss] {
    ge_step(link, end, ge, next_bad, restore_loss);
  });
}

void ChaosController::burst_loss(net::Link* link, util::TimePoint start,
                                 util::Duration duration, GilbertElliott ge) {
  sim_.schedule(delay_until(start), [this, link, duration, ge] {
    const double restore = link->params().loss;
    link->set_loss(ge.good_loss);
    ++stats_.burst_episodes;
    telemetry::tracer().emit(telemetry::TraceEvent::kBurstLoss, 0,
                             ge.bad_loss, "episode_start");
    ge_step(link, sim_.now() + duration, ge, /*bad=*/false, restore);
  });
}

void ChaosController::torn_write_at(durable::StorageDevice* device,
                                    util::TimePoint when) {
  sim_.schedule(delay_until(when), [this, device] {
    device->arm_torn_write();
    ++stats_.torn_writes_armed;
    metrics().torn_armed->inc();
    HPOP_LOG(kInfo, "fault") << device->name() << ": torn write armed";
  });
}

void ChaosController::partial_flush_at(durable::StorageDevice* device,
                                       util::TimePoint when) {
  sim_.schedule(delay_until(when), [this, device] {
    device->arm_partial_flush();
    ++stats_.partial_flushes_armed;
    metrics().partial_armed->inc();
    HPOP_LOG(kInfo, "fault") << device->name() << ": partial flush armed";
  });
}

namespace {

bool addr_in(const std::vector<std::uint32_t>& sorted, std::uint32_t addr) {
  return std::binary_search(sorted.begin(), sorted.end(), addr);
}

std::vector<std::uint32_t> member_addrs(const std::vector<net::Node*>& nodes) {
  std::vector<std::uint32_t> addrs;
  for (net::Node* n : nodes) {
    for (const auto& ifc : n->interfaces()) addrs.push_back(ifc->addr.value);
  }
  std::sort(addrs.begin(), addrs.end());
  addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
  return addrs;
}

}  // namespace

void ChaosController::install_cut_hooks(
    net::Node* node, bool side_a, const std::shared_ptr<PartitionCut>& cut) {
  // A member of side A drops traffic to/from side B; with an empty side B
  // ("isolate A") it drops everything whose far end is outside A. Side-B
  // members mirror that against A. The shared `active` flag makes the heal
  // a single store; inert hooks cost one branch per packet.
  auto far_end_cut = [cut, side_a](std::uint32_t far) {
    if (!cut->active) return false;
    if (side_a) {
      return cut->addrs_b.empty() ? !addr_in(cut->addrs_a, far)
                                  : addr_in(cut->addrs_b, far);
    }
    return addr_in(cut->addrs_a, far);
  };
  Stats* stats = &stats_;
  node->add_egress_hook([far_end_cut, stats](net::Packet& p) {
    if (!far_end_cut(p.dst.value)) return false;
    ++stats->partition_drops;
    return true;
  });
  node->add_ingress_hook([far_end_cut, stats](net::Packet& p) {
    if (!far_end_cut(p.src.value)) return false;
    ++stats->partition_drops;
    return true;
  });
}

void ChaosController::partition_at(std::vector<net::Node*> a,
                                   std::vector<net::Node*> b,
                                   util::TimePoint when,
                                   util::Duration duration) {
  auto cut = std::make_shared<PartitionCut>();
  cut->addrs_a = member_addrs(a);
  cut->addrs_b = member_addrs(b);
  cuts_.push_back(cut);
  sim_.schedule(delay_until(when),
                [this, cut, a = std::move(a), b = std::move(b), duration] {
    cut->active = true;
    // Hooks are installed at activation (not scheduling) so nodes rebuilt
    // by an earlier crash/restart still get them. Installing on every
    // member catches both directions even when only one side is hooked —
    // the redundancy is what keeps the cut bidirectional if a member on
    // the other side crashed and lost its hooks.
    for (net::Node* n : a) install_cut_hooks(n, /*side_a=*/true, cut);
    for (net::Node* n : b) install_cut_hooks(n, /*side_a=*/false, cut);
    ++stats_.partitions;
    metrics().partitions->inc();
    HPOP_LOG(kInfo, "fault")
        << "partition: " << a.size() << " node(s) vs "
        << (b.empty() ? std::string("rest") : std::to_string(b.size()))
        << " for " << util::format_duration(duration);
    sim_.schedule(duration, [this, cut] {
      if (!cut->active) return;
      cut->active = false;
      ++stats_.partition_heals;
      metrics().partition_heals->inc();
      HPOP_LOG(kInfo, "fault") << "partition healed";
      telemetry::tracer().emit(telemetry::TraceEvent::kLinkUp, 0, 0,
                               "partition_heal");
    });
    telemetry::tracer().emit(telemetry::TraceEvent::kLinkDown, 0, 0,
                             "partition");
  });
}

void ChaosController::flush_nat(net::NatBox* nat, util::TimePoint when) {
  sim_.schedule(delay_until(when), [this, nat] {
    const double dropped = static_cast<double>(nat->mapping_count());
    nat->flush_mappings();
    ++stats_.nat_flushes;
    metrics().nat_flushes->inc();
    telemetry::tracer().emit(telemetry::TraceEvent::kNatFlush, dropped, 0,
                             "flush");
  });
}

std::vector<std::string> ChaosController::churn(
    const std::vector<std::string>& pool, util::TimePoint start,
    util::Duration window, double fraction, util::Duration downtime) {
  const std::size_t victims = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(pool.size())));
  std::vector<std::string> chosen;
  if (victims == 0 || pool.empty()) return chosen;
  for (std::size_t i : rng_.sample_indices(pool.size(), victims)) {
    chosen.push_back(pool[i]);
  }
  // sample_indices draws are order-stable; the per-victim offsets below are
  // drawn in the same (sorted) order so the whole schedule is reproducible.
  for (const std::string& name : chosen) {
    const util::TimePoint at =
        start + static_cast<util::Duration>(
                    rng_.uniform(0.0, static_cast<double>(window)));
    crash_at(name, at, downtime);
  }
  return chosen;
}

void ChaosController::execute(const FaultPlan& plan) {
  for (const FaultEvent& e : plan.events) {
    switch (e.kind) {
      case FaultEvent::Kind::kCrash:
        crash_at(e.node, e.at, e.duration);
        break;
      case FaultEvent::Kind::kLinkDown:
        link_down_at(e.link, e.at, e.duration);
        break;
      case FaultEvent::Kind::kLinkFlap:
        flap_link(e.link, e.at, e.count, e.duration, e.period);
        break;
      case FaultEvent::Kind::kDegrade:
        degrade_link(e.link, e.at, e.rate, e.loss, e.duration);
        break;
      case FaultEvent::Kind::kBurstLoss:
        burst_loss(e.link, e.at, e.duration, e.ge);
        break;
      case FaultEvent::Kind::kNatFlush:
        flush_nat(e.nat, e.at);
        break;
      case FaultEvent::Kind::kTornWrite:
        torn_write_at(e.device, e.at);
        break;
      case FaultEvent::Kind::kPartialFlush:
        partial_flush_at(e.device, e.at);
        break;
      case FaultEvent::Kind::kPartition:
        partition_at(e.set_a, e.set_b, e.at, e.duration);
        break;
    }
  }
}

}  // namespace hpop::fault
