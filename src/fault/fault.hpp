#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "durable/device.hpp"
#include "net/link.hpp"
#include "net/nat.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hpop::fault {

/// Two-state Markov burst-loss model (Gilbert–Elliott). The chain is
/// stepped every `step`; while in the bad state the link runs at
/// `bad_loss`, otherwise at `good_loss`.
struct GilbertElliott {
  double p_good_to_bad = 0.1;  // per-step transition probabilities
  double p_bad_to_good = 0.5;
  double good_loss = 0.0;
  double bad_loss = 0.3;
  util::Duration step = 100 * util::kMillisecond;
};

/// One scripted fault. Times are absolute simulated time; an `at` in the
/// past fires immediately.
struct FaultEvent {
  enum class Kind {
    kCrash,         // node: crash for `duration`, then restart
    kLinkDown,      // link: admin-down for `duration`
    kLinkFlap,      // link: `count` down/up cycles (`duration` down, `period` up)
    kDegrade,       // link: run at `rate`/`loss` for `duration`, then restore
    kBurstLoss,     // link: Gilbert–Elliott episode of `duration`
    kNatFlush,      // nat: drop every dynamic mapping
    kTornWrite,     // device: arm so the next crash keeps a torn prefix
    kPartialFlush,  // device: arm so the next fsync persists a prefix + fails
    kPartition,     // net: bidirectional cut between set_a and set_b
  };
  Kind kind = Kind::kCrash;
  util::TimePoint at = 0;
  std::string node;  // kCrash: a name registered with register_node
  net::Link* link = nullptr;
  net::NatBox* nat = nullptr;
  durable::StorageDevice* device = nullptr;  // kTornWrite / kPartialFlush
  util::Duration duration = 0;
  int count = 1;                // kLinkFlap: number of down/up cycles
  util::Duration period = 0;    // kLinkFlap: up time between cycles
  util::BitRate rate = 0;       // kDegrade: 0 keeps the current rate
  double loss = 0;              // kDegrade
  GilbertElliott ge{};          // kBurstLoss
  /// kPartition: the two sides of the cut. An empty set_b means "set_a is
  /// isolated from everyone else" (the complement cut).
  std::vector<net::Node*> set_a;
  std::vector<net::Node*> set_b;
};

/// A reproducible chaos script: an ordered set of fault events. Plans are
/// plain data so tests and benches can build, reuse, and print them.
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& crash(std::string node, util::TimePoint at,
                   util::Duration downtime);
  FaultPlan& link_down(net::Link* link, util::TimePoint at,
                       util::Duration downtime);
  FaultPlan& flap(net::Link* link, util::TimePoint at, int cycles,
                  util::Duration down_for, util::Duration up_for);
  FaultPlan& degrade(net::Link* link, util::TimePoint at, util::BitRate rate,
                     double loss, util::Duration duration);
  FaultPlan& burst_loss(net::Link* link, util::TimePoint at,
                        util::Duration duration, GilbertElliott ge);
  FaultPlan& nat_flush(net::NatBox* nat, util::TimePoint at);
  /// Arms a storage fault (durable-layer chaos): `torn_write` makes the
  /// device's NEXT crash keep a random prefix of each unflushed tail;
  /// `partial_flush` makes its NEXT fsync persist a random prefix and
  /// report failure. Both draw cut points from the device's own seeded Rng,
  /// so the plan stays byte-reproducible.
  FaultPlan& torn_write(durable::StorageDevice* device, util::TimePoint at);
  FaultPlan& partial_flush(durable::StorageDevice* device, util::TimePoint at);
  /// Bidirectional cut between `a` and `b` for `duration`, then heal. An
  /// empty `b` isolates `a` from the entire network.
  FaultPlan& partition(std::vector<net::Node*> a, std::vector<net::Node*> b,
                       util::TimePoint at, util::Duration duration);
};

/// Deterministic fault injector. Every stochastic choice (churn victims,
/// crash offsets, Gilbert–Elliott transitions) draws from the seeded Rng
/// handed in at construction, so a chaos run is as reproducible as any
/// other simulation: same seed, same faults, same byte-identical telemetry.
///
/// Node crashes model real process death: the scenario registers teardown
/// and rebuild callbacks; on crash the controller takes the node down
/// (dropping traffic, resetting soft interface state) and runs teardown so
/// in-memory service state is genuinely lost; on restart it brings the node
/// up and runs rebuild, which re-creates the mux and services from durable
/// state only.
class ChaosController {
 public:
  ChaosController(sim::Simulator& sim, util::Rng rng);

  /// Registers a crashable node. `on_crash` must destroy everything living
  /// in the node's process (transport mux, services); `on_restart` must
  /// rebuild it. Either may be null for nodes with no attached services.
  void register_node(const std::string& name, net::Node* node,
                     std::function<void()> on_crash = nullptr,
                     std::function<void()> on_restart = nullptr);

  /// Attaches a storage device to a registered node. When the node
  /// crashes, its devices crash FIRST (the power cut hits the platter
  /// before the teardown callback runs), so `on_crash` observes exactly
  /// the durable image recovery will see and `on_restart` can rebuild
  /// services with recover-from-device instead of a clean slate.
  void attach_device(const std::string& name, durable::StorageDevice* device);

  bool node_up(const std::string& name) const;

  // --- Immediate / scheduled primitives ---
  void crash_at(const std::string& name, util::TimePoint when,
                util::Duration downtime);
  void link_down_at(net::Link* link, util::TimePoint when,
                    util::Duration downtime);
  void flap_link(net::Link* link, util::TimePoint start, int cycles,
                 util::Duration down_for, util::Duration up_for);
  void degrade_link(net::Link* link, util::TimePoint when, util::BitRate rate,
                    double loss, util::Duration duration);
  void burst_loss(net::Link* link, util::TimePoint start,
                  util::Duration duration, GilbertElliott ge);
  void flush_nat(net::NatBox* nat, util::TimePoint when);
  void torn_write_at(durable::StorageDevice* device, util::TimePoint when);
  void partial_flush_at(durable::StorageDevice* device, util::TimePoint when);

  /// Scoped network partition: from `when` until `when + duration`, no
  /// packet crosses between `a` and `b` in either direction (an empty `b`
  /// isolates `a` from everyone). Implemented as egress+ingress hooks on
  /// the member nodes consulting shared cut state, so the heal is O(1) —
  /// the hooks stay installed but inert (node hooks are append-only).
  /// Caveat: a node crash clears its hooks, so crashing a member mid-cut
  /// ends that node's side of the partition early.
  void partition_at(std::vector<net::Node*> a, std::vector<net::Node*> b,
                    util::TimePoint when, util::Duration duration);

  /// Crashes `fraction` of the named pool (distinct victims, chosen by the
  /// controller's Rng), each at a uniform offset within [start,
  /// start+window], each down for `downtime`. Returns the victims.
  std::vector<std::string> churn(const std::vector<std::string>& pool,
                                 util::TimePoint start, util::Duration window,
                                 double fraction, util::Duration downtime);

  /// Schedules every event of a plan.
  void execute(const FaultPlan& plan);

  struct Stats {
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t link_downs = 0;
    std::uint64_t link_ups = 0;
    std::uint64_t degradations = 0;
    std::uint64_t nat_flushes = 0;
    std::uint64_t burst_episodes = 0;
    std::uint64_t torn_writes_armed = 0;
    std::uint64_t partial_flushes_armed = 0;
    std::uint64_t device_crashes = 0;
    std::uint64_t partitions = 0;
    std::uint64_t partition_heals = 0;
    std::uint64_t partition_drops = 0;  // packets eaten by active cuts
  };
  const Stats& stats() const { return stats_; }

 private:
  struct NodeEntry {
    net::Node* node = nullptr;
    std::function<void()> on_crash;
    std::function<void()> on_restart;
    std::vector<durable::StorageDevice*> devices;
    util::TimePoint went_down = 0;
  };

  /// Shared state of one cut: sorted member addresses of each side plus an
  /// active flag the installed hooks consult. Healing flips the flag.
  struct PartitionCut {
    std::vector<std::uint32_t> addrs_a;  // sorted
    std::vector<std::uint32_t> addrs_b;  // sorted; empty = complement cut
    bool active = false;
  };

  /// Delay from now to `when`, floored at zero (past events fire now).
  util::Duration delay_until(util::TimePoint when) const;
  void install_cut_hooks(net::Node* node, bool side_a,
                         const std::shared_ptr<PartitionCut>& cut);
  void do_crash(NodeEntry& e, util::Duration downtime);
  void do_restart(NodeEntry& e);
  void ge_step(net::Link* link, util::TimePoint end, GilbertElliott ge,
               bool bad, double restore_loss);

  /// Registry handles, resolved lazily on first use. The registry is
  /// thread_local; a per-shard controller in the parallel engine is built
  /// on the main thread but fires on its shard's worker, and must bind to
  /// THAT thread's registry — eager binding in the constructor would alias
  /// every shard onto the build thread's counters.
  struct Metrics {
    telemetry::Counter* crashes = nullptr;
    telemetry::Counter* restarts = nullptr;
    telemetry::Counter* link_downs = nullptr;
    telemetry::Counter* link_ups = nullptr;
    telemetry::Counter* nat_flushes = nullptr;
    telemetry::Counter* torn_armed = nullptr;
    telemetry::Counter* partial_armed = nullptr;
    telemetry::Counter* partitions = nullptr;
    telemetry::Counter* partition_heals = nullptr;
    telemetry::HistogramMetric* downtime_s = nullptr;
    bool bound = false;
  };
  Metrics& metrics();

  sim::Simulator& sim_;
  util::Rng rng_;
  std::map<std::string, NodeEntry> nodes_;
  std::vector<std::shared_ptr<PartitionCut>> cuts_;
  Stats stats_;
  Metrics m_;
};

}  // namespace hpop::fault
