#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "util/time.hpp"
#include "util/token_bucket.hpp"

namespace hpop::overload {

/// Traffic classes, highest priority first. The shed order under pressure
/// is the reverse: background work goes first, third-party serving next,
/// the household's own traffic after that, and critical work (attic health
/// writes, directory registrations) is never shed at all.
enum class Class {
  kCritical = 0,
  kOwner = 1,
  kThirdParty = 2,
  kBackground = 3,
};
inline constexpr int kNumClasses = 4;
const char* to_string(Class c);

enum class ShedReason {
  kRateLimited,  // token bucket empty -> 429
  kQueueFull,    // wait queue at capacity -> 503
  kDeadline,     // queued past the deadline -> 503
  kPreempted,    // evicted by higher-priority arrival -> 503
};
const char* to_string(ShedReason r);

struct AdmissionConfig {
  /// Admitted requests per second through the token bucket; 0 disables
  /// rate policing (concurrency/queue limits still apply).
  double rate = 0.0;
  double burst = 16.0;
  /// Maximum handlers in flight at once; 0 = unlimited (queueing off).
  int max_concurrent = 0;
  /// Wait-queue bound across all classes when the concurrency cap is hit.
  std::size_t max_queue = 64;
  /// Queued work older than this is shed — a response the client stopped
  /// waiting for is pure waste to compute.
  util::Duration queue_deadline = 2 * util::kSecond;
  /// Retry-After hint handed to queue/deadline sheds (rate sheds compute
  /// the exact bucket refill time instead).
  util::Duration retry_hint = util::kSecond;
};

/// Generic admission controller: token-bucket rate policing, a concurrency
/// cap with bounded per-class wait queues, deadline-aware shedding, and
/// priority preemption (an owner arrival evicts queued background work
/// rather than being turned away). One instance guards one service; the
/// `service` name labels its `overload.*` telemetry.
class AdmissionController {
 public:
  AdmissionController(sim::Simulator& sim, std::string service,
                      AdmissionConfig config);
  ~AdmissionController();
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  using RunFn = std::function<void()>;
  using ShedFn = std::function<void(ShedReason, util::Duration retry_after)>;

  /// Admits, queues, or sheds one unit of work. Exactly one of `run` /
  /// `shed` is eventually invoked (possibly synchronously). Every `run`
  /// must be balanced by a release() when the work completes.
  void submit(Class cls, RunFn run, ShedFn shed);

  /// Rate-gate only, no occupancy tracking — for fire-and-forget work
  /// (UDP joins, directory lookups) that completes within its handler.
  /// On refusal, `*retry_after` (if given) gets the suggested hold-off.
  bool try_admit_instant(Class cls, util::Duration* retry_after = nullptr);

  /// Marks one admitted unit finished; drains the wait queue.
  void release();

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t queued = 0;
    std::uint64_t shed_rate = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t shed_preempted = 0;
  };
  const Stats& stats() const { return stats_; }
  std::uint64_t total_shed() const {
    return stats_.shed_rate + stats_.shed_queue_full + stats_.shed_deadline +
           stats_.shed_preempted;
  }
  int in_flight() const { return in_flight_; }
  std::size_t queue_depth() const { return queued_total_; }
  const std::string& service() const { return service_; }

 private:
  struct Waiting {
    std::uint64_t id = 0;
    util::TimePoint enqueued = 0;
    RunFn run;
    ShedFn shed;
    sim::TimerId deadline_timer = 0;
  };

  void admit(RunFn& run);
  void shed(ShedFn& fn, ShedReason reason, util::Duration retry_after);
  void enqueue(Class cls, RunFn run, ShedFn shed_fn);
  /// Sheds the newest lowest-priority entry strictly below `cls`; true if
  /// an entry was evicted (making room).
  bool preempt_below(Class cls);
  void drain();
  void deadline_fired(Class cls, std::uint64_t id);

  sim::Simulator& sim_;
  std::string service_;
  AdmissionConfig config_;
  std::unique_ptr<util::TokenBucket> bucket_;
  std::array<std::deque<Waiting>, kNumClasses> queues_;
  std::size_t queued_total_ = 0;
  int in_flight_ = 0;
  std::uint64_t next_id_ = 1;
  Stats stats_;

  telemetry::Counter* m_admitted_;
  telemetry::Counter* m_queued_;
  telemetry::Counter* m_shed_rate_;
  telemetry::Counter* m_shed_queue_full_;
  telemetry::Counter* m_shed_deadline_;
  telemetry::Counter* m_shed_preempted_;
  telemetry::Gauge* m_in_flight_;
  telemetry::SummaryMetric* m_queue_wait_ms_;
};

}  // namespace hpop::overload
