#include "overload/breaker.hpp"

#include <algorithm>

namespace hpop::overload {

void CircuitBreaker::reset_window() {
  window_.clear();
  window_failures_ = 0;
}

void CircuitBreaker::note(bool failure) {
  window_.push_back(failure);
  if (failure) ++window_failures_;
  while (static_cast<int>(window_.size()) > config_.window) {
    if (window_.front()) --window_failures_;
    window_.pop_front();
  }
}

void CircuitBreaker::trip(util::TimePoint now, util::Duration at_least) {
  state_ = State::kOpen;
  probes_in_flight_ = 0;
  reset_window();
  double scale = 1.0;
  if (rng_ != nullptr && config_.jitter > 0.0) {
    const double j = std::clamp(config_.jitter, 0.0, 1.0);
    scale = rng_->uniform(1.0 - j, 1.0);
  }
  const auto open_for = static_cast<util::Duration>(
      static_cast<double>(config_.open_for) * scale);
  open_until_ = std::max(open_until_, now + std::max(open_for, at_least));
  ++stats_.trips;
}

bool CircuitBreaker::would_allow(util::TimePoint now) const {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return now >= open_until_;
    case State::kHalfOpen:
      return probes_in_flight_ < config_.half_open_probes;
  }
  return true;
}

bool CircuitBreaker::allow(util::TimePoint now) {
  if (state_ == State::kOpen && now >= open_until_) {
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
  }
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      ++stats_.fast_fails;
      return false;
    case State::kHalfOpen:
      if (probes_in_flight_ < config_.half_open_probes) {
        ++probes_in_flight_;
        ++stats_.probes;
        return true;
      }
      ++stats_.fast_fails;
      return false;
  }
  return true;
}

void CircuitBreaker::record_success(util::TimePoint now) {
  (void)now;
  switch (state_) {
    case State::kClosed:
      note(false);
      return;
    case State::kHalfOpen:
      // The probe came back healthy: close and start a fresh window.
      state_ = State::kClosed;
      probes_in_flight_ = 0;
      reset_window();
      return;
    case State::kOpen:
      // A late response from before the trip; the open timer stands.
      return;
  }
}

void CircuitBreaker::record_failure(util::TimePoint now) {
  switch (state_) {
    case State::kClosed:
      note(true);
      if (static_cast<int>(window_.size()) >= config_.min_samples &&
          static_cast<double>(window_failures_) >=
              config_.failure_threshold *
                  static_cast<double>(window_.size())) {
        trip(now);
      }
      return;
    case State::kHalfOpen:
      trip(now);  // the probe failed: straight back to open
      return;
    case State::kOpen:
      return;
  }
}

void CircuitBreaker::force_open(util::TimePoint now, util::Duration d) {
  // Server-directed: no jitter shortening — honour at least the full hint.
  state_ = State::kOpen;
  probes_in_flight_ = 0;
  reset_window();
  open_until_ = std::max(open_until_, now + d);
  ++stats_.trips;
}

}  // namespace hpop::overload
