#pragma once

#include <cstdint>
#include <deque>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace hpop::overload {

struct BreakerConfig {
  /// Sliding outcome window: trip when `failure_threshold` of the last
  /// `window` outcomes failed, once at least `min_samples` were seen.
  int window = 16;
  int min_samples = 8;
  double failure_threshold = 0.5;
  /// Open duration, jittered to uniform[open_for*(1-jitter), open_for]
  /// from the owner's seeded Rng so a fleet of breakers tripped by one
  /// outage does not probe back in lockstep.
  util::Duration open_for = 5 * util::kSecond;
  double jitter = 0.2;
  /// Concurrent trial requests allowed while half-open.
  int half_open_probes = 1;
};

/// Client-side circuit breaker: closed -> (failure rate trips) -> open ->
/// (timeout elapses) -> half-open -> (probe succeeds) -> closed, or
/// (probe fails) -> open again. A server-directed Retry-After maps to
/// force_open(), holding the circuit at least that long.
///
/// Deterministic like everything else here: the only randomness is the
/// open-duration jitter, drawn from the Rng passed in (nullptr = none).
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerConfig config = {},
                          util::Rng* rng = nullptr)
      : config_(config), rng_(rng) {}

  /// Whether a request may proceed now. Transitions open -> half-open when
  /// the open period has elapsed; in half-open, admits up to
  /// `half_open_probes` concurrent trials.
  bool allow(util::TimePoint now);
  /// Non-mutating preview of allow() — for scanning candidates without
  /// consuming half-open probe slots.
  bool would_allow(util::TimePoint now) const;

  void record_success(util::TimePoint now);
  void record_failure(util::TimePoint now);
  /// Server-directed open (Retry-After): hold at least until now + d.
  void force_open(util::TimePoint now, util::Duration d);

  State state() const { return state_; }
  util::TimePoint open_until() const { return open_until_; }

  struct Stats {
    std::uint64_t trips = 0;
    std::uint64_t fast_fails = 0;  // allow() == false
    std::uint64_t probes = 0;      // half-open trials admitted
  };
  const Stats& stats() const { return stats_; }

 private:
  void trip(util::TimePoint now, util::Duration at_least = 0);
  void note(bool failure);
  void reset_window();

  BreakerConfig config_;
  util::Rng* rng_;
  State state_ = State::kClosed;
  std::deque<bool> window_;  // true = failure
  int window_failures_ = 0;
  util::TimePoint open_until_ = 0;
  int probes_in_flight_ = 0;
  Stats stats_;
};

}  // namespace hpop::overload
