#include "overload/admission.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace hpop::overload {

const char* to_string(Class c) {
  switch (c) {
    case Class::kCritical: return "critical";
    case Class::kOwner: return "owner";
    case Class::kThirdParty: return "third_party";
    case Class::kBackground: return "background";
  }
  return "?";
}

const char* to_string(ShedReason r) {
  switch (r) {
    case ShedReason::kRateLimited: return "rate_limited";
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kDeadline: return "deadline";
    case ShedReason::kPreempted: return "preempted";
  }
  return "?";
}

AdmissionController::AdmissionController(sim::Simulator& sim,
                                         std::string service,
                                         AdmissionConfig config)
    : sim_(sim), service_(std::move(service)), config_(config) {
  if (config_.rate > 0.0) {
    bucket_ = std::make_unique<util::TokenBucket>(
        config_.rate, std::max(config_.burst, 1.0));
  }
  auto& reg = telemetry::registry();
  const std::string labels = "svc=" + service_;
  m_admitted_ = reg.counter("overload.admitted", labels);
  m_queued_ = reg.counter("overload.queued", labels);
  m_shed_rate_ = reg.counter("overload.shed_rate", labels);
  m_shed_queue_full_ = reg.counter("overload.shed_queue_full", labels);
  m_shed_deadline_ = reg.counter("overload.shed_deadline", labels);
  m_shed_preempted_ = reg.counter("overload.shed_preempted", labels);
  m_in_flight_ = reg.gauge("overload.in_flight", labels);
  m_queue_wait_ms_ = reg.summary("overload.queue_wait_ms", labels);
}

AdmissionController::~AdmissionController() {
  for (auto& queue : queues_) {
    for (Waiting& w : queue) sim_.cancel(w.deadline_timer);
  }
}

void AdmissionController::admit(RunFn& run) {
  ++stats_.admitted;
  m_admitted_->inc();
  ++in_flight_;
  m_in_flight_->add(1);
  run();
}

void AdmissionController::shed(ShedFn& fn, ShedReason reason,
                               util::Duration retry_after) {
  switch (reason) {
    case ShedReason::kRateLimited:
      ++stats_.shed_rate;
      m_shed_rate_->inc();
      break;
    case ShedReason::kQueueFull:
      ++stats_.shed_queue_full;
      m_shed_queue_full_->inc();
      break;
    case ShedReason::kDeadline:
      ++stats_.shed_deadline;
      m_shed_deadline_->inc();
      break;
    case ShedReason::kPreempted:
      ++stats_.shed_preempted;
      m_shed_preempted_->inc();
      break;
  }
  if (fn) fn(reason, retry_after);
}

void AdmissionController::submit(Class cls, RunFn run, ShedFn shed_fn) {
  // Critical work is never rate-policed, never queued, never shed.
  if (cls == Class::kCritical) {
    admit(run);
    return;
  }
  const util::TimePoint now = sim_.now();
  if (bucket_ != nullptr && !bucket_->try_take(1.0, now)) {
    shed(shed_fn, ShedReason::kRateLimited,
         std::max<util::Duration>(bucket_->available_at(1.0, now) - now,
                                  util::kMillisecond));
    return;
  }
  if (config_.max_concurrent <= 0 || in_flight_ < config_.max_concurrent) {
    admit(run);
    return;
  }
  if (queued_total_ >= config_.max_queue && !preempt_below(cls)) {
    shed(shed_fn, ShedReason::kQueueFull, config_.retry_hint);
    return;
  }
  enqueue(cls, std::move(run), std::move(shed_fn));
}

void AdmissionController::enqueue(Class cls, RunFn run, ShedFn shed_fn) {
  ++stats_.queued;
  m_queued_->inc();
  Waiting w;
  w.id = next_id_++;
  w.enqueued = sim_.now();
  w.run = std::move(run);
  w.shed = std::move(shed_fn);
  w.deadline_timer = sim_.schedule(
      config_.queue_deadline,
      [this, cls, id = w.id] { deadline_fired(cls, id); });
  queues_[static_cast<std::size_t>(cls)].push_back(std::move(w));
  ++queued_total_;
}

bool AdmissionController::preempt_below(Class cls) {
  for (int c = kNumClasses - 1; c > static_cast<int>(cls); --c) {
    auto& queue = queues_[static_cast<std::size_t>(c)];
    if (queue.empty()) continue;
    // Evict the newest entry of the lowest-priority class: it has waited
    // the least, so shedding it wastes the least accumulated queue time.
    Waiting victim = std::move(queue.back());
    queue.pop_back();
    --queued_total_;
    sim_.cancel(victim.deadline_timer);
    shed(victim.shed, ShedReason::kPreempted, config_.retry_hint);
    return true;
  }
  return false;
}

void AdmissionController::deadline_fired(Class cls, std::uint64_t id) {
  auto& queue = queues_[static_cast<std::size_t>(cls)];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (it->id != id) continue;
    Waiting victim = std::move(*it);
    queue.erase(it);
    --queued_total_;
    shed(victim.shed, ShedReason::kDeadline, config_.retry_hint);
    return;
  }
}

bool AdmissionController::try_admit_instant(Class cls,
                                            util::Duration* retry_after) {
  if (cls == Class::kCritical) {
    ++stats_.admitted;
    m_admitted_->inc();
    return true;
  }
  const util::TimePoint now = sim_.now();
  if (bucket_ != nullptr && !bucket_->try_take(1.0, now)) {
    const util::Duration wait = std::max<util::Duration>(
        bucket_->available_at(1.0, now) - now, util::kMillisecond);
    if (retry_after != nullptr) *retry_after = wait;
    ++stats_.shed_rate;
    m_shed_rate_->inc();
    return false;
  }
  ++stats_.admitted;
  m_admitted_->inc();
  return true;
}

void AdmissionController::release() {
  if (in_flight_ > 0) {
    --in_flight_;
    m_in_flight_->add(-1);
  }
  drain();
}

void AdmissionController::drain() {
  while (queued_total_ > 0 &&
         (config_.max_concurrent <= 0 || in_flight_ < config_.max_concurrent)) {
    Waiting* next = nullptr;
    std::deque<Waiting>* queue = nullptr;
    for (auto& q : queues_) {
      if (!q.empty()) {
        next = &q.front();
        queue = &q;
        break;
      }
    }
    if (next == nullptr) return;
    Waiting w = std::move(*next);
    queue->pop_front();
    --queued_total_;
    sim_.cancel(w.deadline_timer);
    m_queue_wait_ms_->observe(util::to_millis(sim_.now() - w.enqueued));
    admit(w.run);
  }
}

}  // namespace hpop::overload
