#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpop::sweep {

/// Seed-sweep scenarios: each builds a fresh world in its own Simulator,
/// runs to a fixed horizon, and reports a deterministic one-line summary.
/// Reports are built only from per-object state (client stats, received
/// bytes, admission counters) — never from the telemetry registry, which
/// is thread-local and accumulates across every seed a worker thread runs.
enum class Scenario {
  kChaos,       // HTTP fetches with retries through a flapping link
  kFlashCrowd,  // open-loop crowd vs one admission-controlled NoCDN peer
  kRampup,      // TCP slow-start ramp to 90% of a 1 Gbps path
  kMetro,       // small metro tree, diurnal NoCDN day with crowd + outage
  kDurable,     // WAL'd attic through torn crashes: zero acked-write loss
  kDirectory,   // sharded directory day: shard crash + subtree partition
  kPsim,        // sharded parallel metro day (2 workers), chaos in shards
  kPsimTcp,     // same day over TCP/MPTCP: segments cross shard cuts
};

const char* to_string(Scenario s);
std::optional<Scenario> scenario_from_string(std::string_view name);

/// Runs one scenario at one seed. Same (scenario, seed) always returns the
/// same string, regardless of which thread runs it or what ran before —
/// this is the property the parallel sweeper's CI check enforces.
std::string run_scenario(Scenario s, std::uint64_t seed);

/// Runs `seeds` across `jobs` worker threads (jobs <= 1 runs serially on
/// the calling thread) and returns one report line per seed, merged in
/// input-seed order — completion order never leaks into the output.
std::vector<std::string> run_sweep(Scenario s,
                                   const std::vector<std::uint64_t>& seeds,
                                   std::size_t jobs);

}  // namespace hpop::sweep
