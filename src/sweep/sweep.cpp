#include "sweep/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "attic/store.hpp"
#include "durable/device.hpp"
#include "durable/wal.hpp"
#include "fault/fault.hpp"
#include "http/client.hpp"
#include "http/server.hpp"
#include "metro/driver.hpp"
#include "metro/topology.hpp"
#include "metro/workload.hpp"
#include "net/topology.hpp"
#include "nocdn/origin.hpp"
#include "nocdn/peer.hpp"
#include "overload/admission.hpp"
#include "overload/breaker.hpp"
#include "psim/day.hpp"
#include "psim/tcp_day.hpp"
#include "transport/mux.hpp"
#include "util/retry.hpp"
#include "util/thread_pool.hpp"

namespace hpop::sweep {

using util::kGbps;
using util::kMbps;
using util::kMillisecond;
using util::kSecond;

namespace {

// ------------------------------------------- chaos: fetches vs a flapping link

std::string run_chaos(std::uint64_t seed) {
  sim::Simulator sim;
  net::Network net{sim, util::Rng(seed)};
  auto path =
      net::make_two_host_path(net, net::PathParams{}, net::PathParams{});
  transport::TransportMux mux_server(*path.b);
  http::HttpServer server(mux_server, 80);
  server.route(http::Method::kGet, "/",
               [](const http::Request&, http::ResponseWriter& w) {
                 http::Response resp;
                 resp.body = http::Body(std::string(1024, 'x'));
                 w.respond(std::move(resp));
               });
  transport::TransportMux mux_client(*path.a);
  http::HttpClient client(mux_client, util::Rng(seed ^ 0x9e3779b9u));

  fault::ChaosController chaos(sim, util::Rng(seed ^ 0x51ed2701u));
  chaos.flap_link(path.link_b, 5 * kSecond, 2, 5 * kSecond, 5 * kSecond);

  http::FetchOptions options;
  options.timeout = 2 * kSecond;
  options.retry = util::RetryPolicy{6, kSecond, 2.0, 0.5, 8 * kSecond, 0};

  int ok = 0;
  std::uint64_t bytes = 0;
  util::TimePoint last_ok = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(2 * i * kSecond, [&, options] {
      http::Request req;
      req.path = "/";
      client.fetch({path.b->address(), 80}, req,
                   [&](util::Result<http::Response> r) {
                     if (r.ok() && r.value().ok()) {
                       ++ok;
                       bytes += r.value().body.size();
                       last_ok = sim.now();
                     }
                   },
                   options);
    });
  }
  sim.run_until(120 * kSecond);

  char line[160];
  std::snprintf(line, sizeof line,
                "chaos seed=%llu ok=%d/10 retries=%llu bytes=%llu "
                "last_ok_s=%.6f",
                static_cast<unsigned long long>(seed), ok,
                static_cast<unsigned long long>(client.stats().retries),
                static_cast<unsigned long long>(bytes),
                static_cast<double>(last_ok) / kSecond);
  return line;
}

// --------------------------- flash crowd: open loop vs one admission'd peer

std::string run_flash_crowd(std::uint64_t seed) {
  constexpr int kClients = 8;
  constexpr util::Duration kIssueEvery = 250 * kMillisecond;
  constexpr util::Duration kWarmup = 3 * kSecond;
  constexpr util::Duration kHorizon = 12 * kSecond;
  constexpr std::size_t kObjectKb = 100;

  sim::Simulator sim;
  net::Network net{sim, util::Rng(seed)};
  net::Router& core = net.add_router("core");

  net::Host& origin_host = net.add_host("origin", net.next_public_address());
  net.connect(origin_host, origin_host.address(), core, net::IpAddr{},
              net::LinkParams{1 * kGbps, 20 * kMillisecond});
  net::Host& peer_host = net.add_host("peer", net.next_public_address());
  net.connect(peer_host, peer_host.address(), core, net::IpAddr{},
              net::LinkParams{20 * kMbps, 5 * kMillisecond});
  std::vector<net::Host*> client_hosts;
  for (int i = 0; i <= kClients; ++i) {  // [0] warms the cache
    client_hosts.push_back(&net.add_host("client-" + std::to_string(i),
                                         net.next_public_address()));
    net.connect(*client_hosts.back(), client_hosts.back()->address(), core,
                net::IpAddr{}, net::LinkParams{1 * kGbps, 8 * kMillisecond});
  }
  net.auto_route();

  transport::TransportMux mux_origin(origin_host);
  nocdn::OriginConfig oconfig;
  oconfig.provider = "nytimes";
  nocdn::OriginServer origin(mux_origin, oconfig, util::Rng(seed ^ 99u));
  const std::string url = "/news/hot.jpg";
  origin.add_object({url, http::Body::synthetic(kObjectKb * 1024, 0xF1)});

  transport::TransportMux mux_peer(peer_host);
  nocdn::PeerProxy peer(mux_peer, 8080, util::Rng(seed ^ 1000u));
  const std::uint64_t peer_id = origin.recruit_peer(peer.endpoint());
  peer.signup({"nytimes", peer_id, {origin_host.address(), 80}});
  overload::AdmissionConfig admission;
  admission.rate = 10.0;
  admission.burst = 4.0;
  peer.enable_admission(admission);

  struct ClientSlot {
    std::unique_ptr<transport::TransportMux> mux;
    std::unique_ptr<http::HttpClient> http;
  };
  std::vector<ClientSlot> clients(client_hosts.size());
  overload::BreakerConfig bconfig;
  bconfig.window = 8;
  bconfig.min_samples = 4;
  bconfig.open_for = 2 * kSecond;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients[i].mux =
        std::make_unique<transport::TransportMux>(*client_hosts[i]);
    clients[i].http = std::make_unique<http::HttpClient>(
        *clients[i].mux, util::Rng(seed * 7919u + i));
    clients[i].http->enable_breakers(bconfig);
  }

  http::FetchOptions options;
  options.timeout = 1500 * kMillisecond;
  options.retry =
      util::RetryPolicy{2, 400 * kMillisecond, 2.0, 0.3, 2 * kSecond, 0};
  options.retry_on_overload = true;

  const net::Endpoint peer_ep = peer.endpoint();
  auto get_hot = [&](std::size_t c, auto&& done) {
    http::Request req;
    req.path = url;
    req.headers.set("Host", "nytimes");
    clients[c].http->fetch(peer_ep, std::move(req),
                           std::forward<decltype(done)>(done), options);
  };

  bool warmed = false;
  get_hot(0, [&](util::Result<http::Response> r) {
    warmed = r.ok() && r.value().status == 200;
  });
  sim.run_until(kSecond);

  int issued = 0, ok = 0;
  std::uint64_t goodput = 0;
  std::vector<double> latencies;
  const util::Duration stagger = kIssueEvery / kClients;
  for (int c = 1; c <= kClients; ++c) {
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&, c, tick] {
      if (sim.now() >= kHorizon) return;
      const util::TimePoint issued_at = sim.now();
      if (issued_at >= kWarmup) ++issued;
      get_hot(static_cast<std::size_t>(c),
              [&, issued_at](util::Result<http::Response> r) {
                if (!r.ok() || r.value().status != 200) return;
                const util::TimePoint done_at = sim.now();
                if (issued_at < kWarmup || done_at > kHorizon) return;
                ++ok;
                goodput += r.value().body.size();
                latencies.push_back(
                    static_cast<double>(done_at - issued_at) / kSecond);
              });
      sim.schedule(kIssueEvery, *tick);
    };
    sim.schedule(kSecond + c * stagger, [tick] { (*tick)(); });
  }
  sim.run_until(kHorizon + 5 * kSecond);

  const std::uint64_t sheds =
      peer.admission() ? peer.admission()->total_shed() : 0;
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double q) {
    if (latencies.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(rank, latencies.size() - 1)];
  };

  char line[192];
  std::snprintf(line, sizeof line,
                "flash seed=%llu warmed=%d ok=%d/%d goodput=%llu sheds=%llu "
                "p50_s=%.6f p99_s=%.6f",
                static_cast<unsigned long long>(seed), warmed ? 1 : 0, ok,
                issued, static_cast<unsigned long long>(goodput),
                static_cast<unsigned long long>(sheds), pct(0.50), pct(0.99));
  return line;
}

// ----------------------------------- rampup: slow start on an empty fat path

std::string run_rampup(std::uint64_t seed) {
  // The seed picks the RTT (the interesting axis) plus the loss RNG stream.
  const double rtt_ms = 10.0 + 10.0 * static_cast<double>(seed % 8);
  const util::BitRate rate = 1 * kGbps;
  const util::Duration rtt = util::milliseconds(rtt_ms);

  sim::Simulator sim;
  net::Network net(sim, util::Rng(seed));
  const net::PathParams params{rate, rtt / 4, 0.0,
                               static_cast<std::size_t>(64) << 20};
  auto path = net::make_two_host_path(net, params, params);
  transport::TransportMux mux_a(*path.a), mux_b(*path.b);
  auto listener = mux_b.tcp_listen(80);
  std::uint64_t received = 0;
  listener->set_on_accept([&](std::shared_ptr<transport::TcpConnection> c) {
    c->set_on_bytes([&](std::size_t n) { received += n; });
  });
  auto client = mux_a.tcp_connect({path.b->address(), 80});
  util::TimePoint established = 0;
  client->set_on_established([&] {
    established = sim.now();
    client->send_bytes(1u << 30);
  });
  while (established == 0 && !sim.empty()) sim.run(1);

  int rtts_to_saturation = -1;
  std::uint64_t bytes_at_saturation = 0;
  std::uint64_t prev = 0;
  for (int w = 1; w <= 40; ++w) {
    sim.run_until(established + w * rtt);
    const std::uint64_t in_window = received - prev;
    prev = received;
    const double window_rate =
        static_cast<double>(in_window) * 8 / util::to_seconds(rtt);
    if (window_rate >= 0.9 * static_cast<double>(rate)) {
      rtts_to_saturation = w;
      bytes_at_saturation = received;
      break;
    }
  }

  char line[160];
  std::snprintf(line, sizeof line,
                "rampup seed=%llu rtt_ms=%.0f rtts_to_90pct=%d "
                "bytes_at_90pct=%llu",
                static_cast<unsigned long long>(seed), rtt_ms,
                rtts_to_saturation,
                static_cast<unsigned long long>(bytes_at_saturation));
  return line;
}

// ------------------- metro: a small diurnal metro day with crowd + outage

std::string run_metro(std::uint64_t seed) {
  constexpr util::Duration kDayLength = 20 * kSecond;  // compressed day
  const util::TimePoint horizon = kDayLength;

  sim::Simulator sim;
  net::Network net{sim, util::Rng(seed)};

  metro::MetroParams params;
  params.homes = 48;
  params.homes_per_dslam = 8;
  params.dslams_per_pop = 3;  // 6 DSLAMs, 2 PoPs
  params.access_rate_jitter = 0.1;
  util::Rng topo_rng(seed ^ 0x4d455452u);  // "METR"
  metro::MetroTopology topo = metro::build_metro(net, params, topo_rng);

  metro::ZipfCatalog catalog(64, 0.9);
  util::Rng plan_rng(seed ^ 0x504c414eu);  // "PLAN"
  metro::EventPlan plan = metro::EventPlan::generate(
      topo, catalog, horizon, /*flash_crowds=*/1, /*outages=*/1, plan_rng);
  metro::WorkloadModel model(metro::DiurnalCurve::residential(kDayLength),
                             catalog, plan, /*base_rate_per_home=*/0.5);

  metro::MetroDriverConfig dconfig;
  dconfig.active_homes = 32;
  dconfig.peers = 4;
  dconfig.attic_pairs = 2;
  dconfig.attic_interval = 4 * kSecond;
  dconfig.horizon = horizon;
  metro::MetroDriver driver(topo, model, dconfig, util::Rng(seed ^ 0xd1ce5u));
  driver.start();

  fault::ChaosController chaos(sim, util::Rng(seed ^ 0xfa017u));
  chaos.execute(plan.to_fault_plan(topo));

  sim.run_until(horizon + 10 * kSecond);

  char line[320];
  std::snprintf(line, sizeof line,
                "metro seed=%llu fp=%016llx crowds=%zu outages=%zu %s",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(topo.fingerprint()),
                plan.flash_crowd_count(), plan.outage_count(),
                driver.report().c_str());
  return line;
}

// ------------- durable: a WAL'd attic through seeded torn crashes

std::string run_durable(std::uint64_t seed) {
  constexpr std::size_t kOps = 240;
  constexpr std::size_t kCrashEvery = 48;
  constexpr std::size_t kPaths = 16;

  durable::StorageDevice dev("sweep-disk", util::Rng(seed ^ 0xD15Cu));
  util::Rng faults(seed ^ 0xFA17u);
  auto wal = std::make_unique<durable::Wal>(dev, "attic.wal");
  auto store = std::make_unique<attic::AtticStore>(1u << 20);
  store->recover_from_wal(*wal);

  // Acked writes carry their etag: after every recovery each one must
  // still resolve — the zero acked-write-loss invariant, per seed.
  std::vector<std::pair<std::string, std::string>> acked;
  std::size_t failed = 0, crashes = 0, missing = 0;
  std::uint64_t replayed = 0, torn = 0;
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::string path = "/day/f" + std::to_string(i % kPaths);
    if (faults.uniform_index(19) == 0) dev.arm_partial_flush();
    const auto put = store->put(
        path, http::Body("v" + std::to_string(i) + "@" + std::to_string(seed)),
        static_cast<util::TimePoint>(i));
    if (put.ok()) {
      acked.emplace_back(path, put.value());
    } else {
      ++failed;  // not durable: the client never saw an ack
    }
    if ((i + 1) % kCrashEvery == 0) {
      if (faults.uniform_index(2) == 0) dev.arm_torn_write();
      dev.crash();
      ++crashes;
      wal = std::make_unique<durable::Wal>(dev, "attic.wal");
      store = std::make_unique<attic::AtticStore>(1u << 20);
      const auto stats = store->recover_from_wal(*wal);
      replayed += stats.records;
      if (stats.wall_records_truncated > 0) ++torn;
      for (const auto& [p, etag] : acked) {
        const auto got = store->history(p);
        bool found = false;
        if (got.ok()) {
          for (const auto& v : got.value()) found = found || v.etag == etag;
        }
        if (!found) ++missing;
      }
      if (crashes == 3) store->compact_wal();  // epoch snapshot mid-run
    }
  }

  char line[192];
  std::snprintf(line, sizeof line,
                "durable seed=%llu acked=%zu failed=%zu crashes=%zu "
                "replayed=%llu torn=%llu missing=%zu fp=%016llx",
                static_cast<unsigned long long>(seed), acked.size(), failed,
                crashes, static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(torn), missing,
                static_cast<unsigned long long>(store->fingerprint()));
  return line;
}

// ---- directory: sharded HPoP directory through shard crash + partition

std::string run_directory(std::uint64_t seed) {
  constexpr util::Duration kDayLength = 20 * kSecond;
  const util::TimePoint horizon = kDayLength;

  sim::Simulator sim;
  net::Network net{sim, util::Rng(seed)};

  metro::MetroParams params;
  params.homes = 48;
  params.homes_per_dslam = 8;
  params.dslams_per_pop = 3;
  params.access_rate_jitter = 0.1;
  util::Rng topo_rng(seed ^ 0x4d455452u);
  metro::MetroTopology topo = metro::build_metro(net, params, topo_rng);

  metro::ZipfCatalog catalog(64, 0.9);
  util::Rng plan_rng(seed ^ 0x504c414eu);
  // One flash crowd, no uplink outage (lookups need a live edge), one
  // access-subtree partition — the new correlated-failure mode.
  metro::EventPlan plan =
      metro::EventPlan::generate(topo, catalog, horizon, /*flash_crowds=*/1,
                                 /*outages=*/0, plan_rng, /*partitions=*/1);
  metro::WorkloadModel model(metro::DiurnalCurve::residential(kDayLength),
                             catalog, plan, /*base_rate_per_home=*/0.5);

  metro::MetroDriverConfig dconfig;
  dconfig.active_homes = 24;
  dconfig.peers = 4;
  dconfig.attic_pairs = 2;
  dconfig.attic_interval = 4 * kSecond;
  dconfig.horizon = horizon;
  dconfig.dir_shards = 3;
  dconfig.dir_replication = 2;
  dconfig.dir_lease = 6 * kSecond;
  dconfig.dir_anti_entropy = 2 * kSecond;
  dconfig.dir_registered_homes = 24;
  dconfig.dir_silent_homes = 4;
  dconfig.dir_silent_lease_s = 2;
  dconfig.dir_warmup = 3 * kSecond;
  metro::MetroDriver driver(topo, model, dconfig, util::Rng(seed ^ 0xd1ce5u));
  driver.start();

  fault::ChaosController chaos(sim, util::Rng(seed ^ 0xfa017u));
  core::DirectoryCluster* cluster = driver.directory();
  cluster->register_with_chaos(chaos);
  chaos.execute(plan.to_fault_plan(topo));
  // Kill one shard mid-day: the WAL brings it back, anti-entropy and the
  // ongoing renewals close the gap it slept through.
  chaos.crash_at(cluster->host(seed % dconfig.dir_shards).name(),
                 8 * kSecond, 4 * kSecond);

  sim.run_until(horizon + 10 * kSecond);

  std::size_t acked = 0, resolved = 0;
  const auto& regs = driver.dir_registrations();
  for (std::size_t i = 0; i < driver.dir_renewing(); ++i) {
    if (!regs[i]->acked()) continue;
    ++acked;
    if (cluster->resolves(regs[i]->household())) ++resolved;
  }
  const auto sync = cluster->sync_totals();

  char line[448];
  std::snprintf(
      line, sizeof line,
      "directory seed=%llu fp=%016llx partitions=%llu heals=%llu "
      "cut_drops=%llu ae_rounds=%llu sync_applied=%llu acked=%zu "
      "resolved=%zu %s",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(cluster->fingerprint()),
      static_cast<unsigned long long>(chaos.stats().partitions),
      static_cast<unsigned long long>(chaos.stats().partition_heals),
      static_cast<unsigned long long>(chaos.stats().partition_drops),
      static_cast<unsigned long long>(sync.rounds),
      static_cast<unsigned long long>(sync.entries_applied), acked, resolved,
      driver.report().c_str());
  return line;
}

// ----- psim: the sharded parallel metro day, 2 workers, chaos in shards

std::string run_psim(std::uint64_t seed) {
  // Small world so a sweep over many seeds stays cheap; 2 workers so every
  // seed exercises the real cross-shard path (rings, barriers, drain
  // order), not the degenerate serial mode. The day report itself is
  // worker-count invariant, so its fingerprint is a pure function of the
  // seed — the property the jobs=1-vs-jobs=N CI diff leans on.
  psim::DayConfig cfg;
  cfg.homes = 2'000;
  cfg.workers = 2;
  cfg.seed = seed;
  cfg.day = 5 * kSecond;
  cfg.base_rate_per_home = 0.2;
  const psim::DayResult r = psim::run_day(cfg);

  std::uint64_t fp = 14695981039346656037ull;  // FNV-1a over the report
  for (const char c : r.report) {
    fp ^= static_cast<unsigned char>(c);
    fp *= 1099511628211ull;
  }

  char line[256];
  std::snprintf(line, sizeof line,
                "psim seed=%llu requests=%llu chunks=%llu rx_bytes=%llu "
                "epochs=%llu crossings=%llu spilled=%llu crashes=%llu "
                "cut_drops=%llu report_fp=%016llx",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(r.requests),
                static_cast<unsigned long long>(r.chunks),
                static_cast<unsigned long long>(r.rx_bytes),
                static_cast<unsigned long long>(r.epochs),
                static_cast<unsigned long long>(r.crossings),
                static_cast<unsigned long long>(r.spilled),
                static_cast<unsigned long long>(r.chaos_crashes),
                static_cast<unsigned long long>(r.partition_drops),
                static_cast<unsigned long long>(fp));
  return line;
}

// ----- psim_tcp: the same sharded day over real TCP/MPTCP transport

std::string run_psim_tcp(std::uint64_t seed) {
  // Endpoint state (cwnd, SACK scoreboards, RTO timers) lives on the
  // shard that owns the endpoint; only serialized segments cross the
  // boundary rings. As with run_psim, the report is worker-count
  // invariant, so its fingerprint depends on the seed alone.
  psim::TcpDayConfig cfg;
  cfg.homes = 2'000;
  cfg.workers = 2;
  cfg.seed = seed;
  cfg.day = 5 * kSecond;
  cfg.base_rate_per_home = 0.2;
  const psim::TcpDayResult r = psim::run_tcp_day(cfg);

  std::uint64_t fp = 14695981039346656037ull;  // FNV-1a over the report
  for (const char c : r.report) {
    fp ^= static_cast<unsigned char>(c);
    fp *= 1099511628211ull;
  }

  char line[256];
  std::snprintf(line, sizeof line,
                "psim_tcp seed=%llu conns=%llu completed=%llu mptcp=%llu "
                "rx_bytes=%llu retx=%llu crossings=%llu crashes=%llu "
                "cut_drops=%llu report_fp=%016llx",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(r.conns),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.mptcp_sessions),
                static_cast<unsigned long long>(r.rx_bytes),
                static_cast<unsigned long long>(r.retransmits),
                static_cast<unsigned long long>(r.crossings),
                static_cast<unsigned long long>(r.chaos_crashes),
                static_cast<unsigned long long>(r.partition_drops),
                static_cast<unsigned long long>(fp));
  return line;
}

}  // namespace

const char* to_string(Scenario s) {
  switch (s) {
    case Scenario::kChaos: return "chaos";
    case Scenario::kFlashCrowd: return "flash";
    case Scenario::kRampup: return "rampup";
    case Scenario::kMetro: return "metro";
    case Scenario::kDurable: return "durable";
    case Scenario::kDirectory: return "directory";
    case Scenario::kPsim: return "psim";
    case Scenario::kPsimTcp: return "psim_tcp";
  }
  return "?";
}

std::optional<Scenario> scenario_from_string(std::string_view name) {
  if (name == "chaos") return Scenario::kChaos;
  if (name == "flash") return Scenario::kFlashCrowd;
  if (name == "rampup") return Scenario::kRampup;
  if (name == "metro") return Scenario::kMetro;
  if (name == "durable") return Scenario::kDurable;
  if (name == "directory") return Scenario::kDirectory;
  if (name == "psim") return Scenario::kPsim;
  if (name == "psim_tcp") return Scenario::kPsimTcp;
  return std::nullopt;
}

std::string run_scenario(Scenario s, std::uint64_t seed) {
  switch (s) {
    case Scenario::kChaos: return run_chaos(seed);
    case Scenario::kFlashCrowd: return run_flash_crowd(seed);
    case Scenario::kRampup: return run_rampup(seed);
    case Scenario::kMetro: return run_metro(seed);
    case Scenario::kDurable: return run_durable(seed);
    case Scenario::kDirectory: return run_directory(seed);
    case Scenario::kPsim: return run_psim(seed);
    case Scenario::kPsimTcp: return run_psim_tcp(seed);
  }
  return {};
}

std::vector<std::string> run_sweep(Scenario s,
                                   const std::vector<std::uint64_t>& seeds,
                                   std::size_t jobs) {
  // Slot i is owned by task i; merging is just reading the vector in
  // order, so the schedule can never reorder the report.
  std::vector<std::string> results(seeds.size());
  util::ThreadPool pool(jobs <= 1 ? 0 : jobs);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    pool.submit([&, i] { results[i] = run_scenario(s, seeds[i]); });
  }
  pool.wait_idle();
  return results;
}

}  // namespace hpop::sweep
