#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace hpop::sim {

using util::Duration;
using util::TimePoint;

using TimerId = std::uint64_t;

/// Deterministic discrete-event simulator.
///
/// The entire reproduction runs on simulated time: links, TCP timers,
/// prefetch schedules and user think-times are all events in one queue.
/// Events at equal timestamps run in scheduling order (a monotonically
/// increasing sequence number breaks ties), which makes every run
/// bit-reproducible for a fixed seed.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0). Returns an id
  /// usable with cancel().
  TimerId schedule(Duration delay, std::function<void()> fn);
  TimerId schedule_at(TimePoint when, std::function<void()> fn);

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  void cancel(TimerId id);

  /// Runs until the queue drains or `limit` events execute.
  void run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with timestamp <= deadline, then sets now() = deadline.
  void run_until(TimePoint deadline);

  /// Runs for `d` simulated time from the current instant.
  void run_for(Duration d) { run_until(now_ + d); }

  std::uint64_t events_executed() const { return executed_; }
  bool empty() const;

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    TimerId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run(TimePoint deadline);

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// Ids of queued, not-yet-fired, not-cancelled events. cancel() moves an
  /// id from here to cancelled_; a cancel for an id not in pending_ (already
  /// fired or cancelled) is a true no-op, so neither set grows unboundedly.
  std::unordered_set<TimerId> pending_;
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace hpop::sim
