#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "util/inline_function.hpp"
#include "util/time.hpp"

namespace hpop::sim {

using util::Duration;
using util::TimePoint;

using TimerId = std::uint64_t;

/// Deterministic discrete-event simulator.
///
/// The entire reproduction runs on simulated time: links, TCP timers,
/// prefetch schedules and user think-times are all events in one queue.
/// Events at equal timestamps run in scheduling order (a monotonically
/// increasing sequence number breaks ties), which makes every run
/// bit-reproducible for a fixed seed.
///
/// Engine shape (the hot path every experiment funnels through):
///  - Events live in an indexed 4-ary heap. Each scheduled event owns a
///    slot; the slot tracks the event's heap position, so cancel() and
///    reschedule() are true O(log n) heap operations instead of tombstones
///    that fatten the queue and cost two hash-set touches per event.
///  - TimerIds encode (slot, generation); releasing a slot bumps its
///    generation, so a stale cancel/reschedule for an already-fired id is
///    an O(1) no-op — no bookkeeping set ever grows.
///  - Closures are util::InlineFunction: captures up to 64 bytes (every
///    timer closure in the tree) never touch the allocator. The closure
///    lives in the slot, not the heap: sift operations shuffle 24-byte
///    (when, seq, slot) nodes, and a closure is moved exactly twice in its
///    life — into its slot on schedule, out on fire.
class Simulator {
 public:
  using EventFn = util::InlineFunction<void()>;

  /// Per-simulator extension slot. A subsystem that needs state scoped to
  /// one simulator instance (today: the net::PacketPool arena) derives from
  /// Attachment and parks itself here. The attachment is destroyed *after*
  /// every queued closure (see member order below), so closures holding
  /// pool handles always release into a live pool.
  class Attachment {
   public:
    virtual ~Attachment() = default;
  };

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Attachment* attachment() { return attachment_.get(); }
  void set_attachment(std::unique_ptr<Attachment> a) {
    attachment_ = std::move(a);
  }

  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at now() + delay (delay >= 0). Returns an id
  /// usable with cancel() and reschedule().
  TimerId schedule(Duration delay, EventFn fn);
  TimerId schedule_at(TimePoint when, EventFn fn);

  /// Cancels a pending timer; no-op if it already fired or was cancelled.
  void cancel(TimerId id);

  /// Rearms a pending timer to fire at now() + delay, keeping its id valid
  /// and reusing its queued closure — the allocation-free replacement for
  /// cancel() + schedule() on persistent timers (TCP RTO, delayed ACK,
  /// prefetch refresh). Ordering matches cancel+schedule exactly: the event
  /// is re-sequenced behind everything already scheduled for the same
  /// instant. Returns false (and does nothing) if the timer already fired
  /// or was cancelled — the caller then schedules afresh.
  bool reschedule(TimerId id, Duration delay);

  /// True while `id` is queued and not yet fired or cancelled.
  bool pending(TimerId id) const { return slot_of(id) != kNone; }

  /// Runs until the queue drains or `limit` events execute.
  void run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with timestamp <= deadline, then sets now() = deadline.
  void run_until(TimePoint deadline);

  /// Runs for `d` simulated time from the current instant.
  void run_for(Duration d) { run_until(now_ + d); }

  std::uint64_t events_executed() const { return executed_; }
  bool empty() const { return heap_.empty(); }
  std::size_t queued() const { return heap_.size(); }

  /// Timestamp of the earliest queued event, or kNoEvent when the heap is
  /// empty. The parallel engine's barrier peeks this on every shard to
  /// skip dead time: the next epoch deadline is min(horizon, global
  /// minimum next-event time + lookahead), so idle windows cost one
  /// barrier instead of many.
  static constexpr TimePoint kNoEvent = std::numeric_limits<TimePoint>::max();
  TimePoint next_event_time() const {
    return heap_.empty() ? kNoEvent : heap_.front().when;
  }

 private:
  static constexpr std::uint32_t kArity = 4;
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// Heap node: trivially copyable so sifting never touches a closure.
  struct HeapNode {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    std::uint32_t pos = kNone;  // heap index while scheduled; kNone when free
    std::uint32_t gen = 0;      // bumped on release; stale ids never match
    std::uint32_t next_free = kNone;
    EventFn fn;  // stationary while queued; moved out only to fire
  };

  static bool earlier(const HeapNode& a, const HeapNode& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  TimerId make_id(std::uint32_t slot) const {
    // Slot indices are offset by one so no valid id is ever 0 — callers use
    // 0 as a "no timer" sentinel.
    return (static_cast<std::uint64_t>(slots_[slot].gen) << 32) |
           (static_cast<std::uint64_t>(slot) + 1);
  }
  std::uint32_t slot_of(TimerId id) const;
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::uint32_t i);
  void sift_down(std::uint32_t i);
  void restore_at(std::uint32_t i);
  void remove_at(std::uint32_t i);
  bool pop_and_run(TimePoint deadline);

  /// Declared before heap_/slots_ so it is destroyed after them: queued
  /// closures (which may own pool handles) die first, then the attachment.
  std::unique_ptr<Attachment> attachment_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<HeapNode> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNone;
};

}  // namespace hpop::sim
