#include "sim/simulator.hpp"

#include <cassert>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace hpop::sim {

Simulator::Simulator() {
  util::set_log_clock(&now_);
  telemetry::tracer().set_clock(&now_);
}

Simulator::~Simulator() {
  util::set_log_clock(nullptr);
  telemetry::tracer().set_clock(nullptr);
}

TimerId Simulator::schedule(Duration delay, std::function<void()> fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

TimerId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(when >= now_);
  const TimerId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

void Simulator::cancel(TimerId id) {
  // Only a still-pending timer moves to the cancelled set; a stale cancel
  // (already fired, already cancelled, or never scheduled) must not leave
  // a tombstone behind — long runs cancel millions of timers.
  if (pending_.erase(id) > 0) cancelled_.insert(id);
}

bool Simulator::pop_and_run(TimePoint deadline) {
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) return false;
    // priority_queue::top is const; the event is copied cheaply enough
    // (one shared function object) and popped before running so that the
    // handler may schedule or cancel freely.
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    pending_.erase(ev.id);
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t limit) {
  const std::uint64_t stop = executed_ + limit < executed_
                                 ? UINT64_MAX
                                 : executed_ + limit;
  while (executed_ < stop && pop_and_run(INT64_MAX)) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  while (pop_and_run(deadline)) {
  }
  if (deadline > now_) now_ = deadline;
}

bool Simulator::empty() const { return pending_.empty(); }

}  // namespace hpop::sim
