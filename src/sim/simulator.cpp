#include "sim/simulator.hpp"

#include <cassert>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace hpop::sim {

Simulator::Simulator() {
  util::set_log_clock(&now_);
  telemetry::tracer().set_clock(&now_);
}

Simulator::~Simulator() {
  util::set_log_clock(nullptr);
  telemetry::tracer().set_clock(nullptr);
}

std::uint32_t Simulator::slot_of(TimerId id) const {
  const std::uint64_t raw = id & 0xFFFFFFFFull;
  if (raw == 0 || raw > slots_.size()) return kNone;
  const auto slot = static_cast<std::uint32_t>(raw - 1);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  const Slot& s = slots_[slot];
  if (s.pos == kNone || s.gen != gen) return kNone;
  return slot;
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNone) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.pos = kNone;
  ++s.gen;  // invalidate every outstanding id for this slot
  s.fn = nullptr;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::sift_up(std::uint32_t i) {
  const HeapNode ev = heap_[i];
  while (i > 0) {
    const std::uint32_t parent = (i - 1) / kArity;
    if (!earlier(ev, heap_[parent])) break;
    heap_[i] = heap_[parent];
    slots_[heap_[i].slot].pos = i;
    i = parent;
  }
  heap_[i] = ev;
  slots_[ev.slot].pos = i;
}

void Simulator::sift_down(std::uint32_t i) {
  const auto n = static_cast<std::uint32_t>(heap_.size());
  const HeapNode ev = heap_[i];
  while (true) {
    const std::uint64_t first = std::uint64_t{i} * kArity + 1;
    if (first >= n) break;
    std::uint32_t best = static_cast<std::uint32_t>(first);
    const auto last =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(first + kArity, n));
    for (std::uint32_t c = best + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], ev)) break;
    heap_[i] = heap_[best];
    slots_[heap_[i].slot].pos = i;
    i = best;
  }
  heap_[i] = ev;
  slots_[ev.slot].pos = i;
}

void Simulator::restore_at(std::uint32_t i) {
  if (i > 0 && earlier(heap_[i], heap_[(i - 1) / kArity])) {
    sift_up(i);
  } else {
    sift_down(i);
  }
}

void Simulator::remove_at(std::uint32_t i) {
  release_slot(heap_[i].slot);
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  if (i != last) {
    heap_[i] = std::move(heap_[last]);
    slots_[heap_[i].slot].pos = i;
    heap_.pop_back();
    restore_at(i);
  } else {
    heap_.pop_back();
  }
}

TimerId Simulator::schedule(Duration delay, EventFn fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

TimerId Simulator::schedule_at(TimePoint when, EventFn fn) {
  assert(when >= now_);
  const std::uint32_t slot = acquire_slot();
  slots_[slot].fn = std::move(fn);
  const auto i = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapNode{when, next_seq_++, slot});
  slots_[slot].pos = i;
  sift_up(i);
  return make_id(slot);
}

void Simulator::cancel(TimerId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNone) return;  // already fired or cancelled: true no-op
  remove_at(slots_[slot].pos);
}

bool Simulator::reschedule(TimerId id, Duration delay) {
  assert(delay >= 0);
  const std::uint32_t slot = slot_of(id);
  if (slot == kNone) return false;
  const std::uint32_t i = slots_[slot].pos;
  heap_[i].when = now_ + delay;
  // Fresh sequence number: the rearmed event runs after everything already
  // scheduled for the same instant, exactly as cancel+schedule would.
  heap_[i].seq = next_seq_++;
  restore_at(i);
  return true;
}

bool Simulator::pop_and_run(TimePoint deadline) {
  if (heap_.empty()) return false;
  const HeapNode top = heap_.front();
  if (top.when > deadline) return false;
  now_ = top.when;
  // Move the closure out and remove the event before running it, so the
  // handler may schedule, cancel, and reschedule freely.
  EventFn fn = std::move(slots_[top.slot].fn);
  remove_at(0);
  ++executed_;
  fn();
  return true;
}

void Simulator::run(std::uint64_t limit) {
  const std::uint64_t stop = executed_ + limit < executed_
                                 ? UINT64_MAX
                                 : executed_ + limit;
  while (executed_ < stop && pop_and_run(INT64_MAX)) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  while (pop_and_run(deadline)) {
  }
  if (deadline > now_) now_ = deadline;
}

}  // namespace hpop::sim
