#include "sim/simulator.hpp"

#include <cassert>

#include "util/logging.hpp"

namespace hpop::sim {

Simulator::Simulator() { util::set_log_clock(&now_); }

Simulator::~Simulator() { util::set_log_clock(nullptr); }

TimerId Simulator::schedule(Duration delay, std::function<void()> fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

TimerId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(when >= now_);
  const TimerId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::cancel(TimerId id) { cancelled_.insert(id); }

bool Simulator::pop_and_run(TimePoint deadline) {
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) return false;
    // priority_queue::top is const; the event is copied cheaply enough
    // (one shared function object) and popped before running so that the
    // handler may schedule or cancel freely.
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t limit) {
  const std::uint64_t stop = executed_ + limit < executed_
                                 ? UINT64_MAX
                                 : executed_ + limit;
  while (executed_ < stop && pop_and_run(INT64_MAX)) {
  }
}

void Simulator::run_until(TimePoint deadline) {
  while (pop_and_run(deadline)) {
  }
  if (deadline > now_) now_ = deadline;
}

bool Simulator::empty() const {
  // Cancelled events may still sit in the queue; treat a queue of only
  // cancelled events as logically empty.
  return queue_.size() <= cancelled_.size();
}

}  // namespace hpop::sim
