#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace hpop::psim {

/// A sharded metro day over real transport: build_metro + plan_shards +
/// Engine, with per-home TCP (and a deterministic slice of MPTCP)
/// request/response transfers instead of the raw UDP trains of run_day.
/// Every piece of endpoint state — cwnd, SACK scoreboard, RTO timers,
/// reassembly maps — lives in the connection objects of a TransportMux
/// bound to the home's shard, so nothing but fully-serialized packets ever
/// crosses a shard boundary. The conservative-lookahead barrier bounds
/// those packets by the pop-uplink delay exactly as in the UDP day, which
/// is why the report stays byte-identical for any worker count.
struct TcpDayConfig {
  std::size_t homes = 10'000;
  std::size_t workers = 1;
  std::uint64_t seed = 42;
  /// Compressed day length (diurnal shape scaled into it).
  util::Duration day = 20 * util::kSecond;
  /// Requests/sec per home at diurnal multiplier 1.0.
  double base_rate_per_home = 0.05;
  std::size_t catalog_objects = 2'000;
  double zipf_skew = 0.9;
  std::size_t flash_crowds = 2;
  std::size_t ring_slots = 4'096;
  int burst_limit = 8;
  /// Every Nth home fetches over MPTCP with one extra subflow (0 disables).
  /// The slice is a function of the home index alone, so it is identical
  /// across worker counts.
  std::size_t mptcp_every = 16;
  /// Adds a DSLAM crash in PoP 1's shard and a partition cut inside PoP
  /// 2's shard (skipped when the topology has fewer than 3 PoPs). Both
  /// faults land mid-transfer, so recovery exercises RTO backoff and SACK
  /// retransmission across the sharded run.
  bool chaos = true;
};

struct TcpDayResult {
  /// Deterministic multi-line report: byte-identical for a fixed (config
  /// minus workers) across any worker count.
  std::string report;
  double wall_s = 0;

  std::uint64_t conns = 0;      // connections initiated by homes
  std::uint64_t completed = 0;  // closed cleanly with the full response
  std::uint64_t failed = 0;     // reset / timed out
  std::uint64_t mptcp_sessions = 0;
  std::uint64_t rx_bytes = 0;  // contiguous stream bytes received by homes
  std::uint64_t origin_served = 0;    // requests answered by the origin
  std::uint64_t origin_tx_bytes = 0;  // response bytes queued by the origin
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t events = 0;
  std::uint64_t epochs = 0;
  std::uint64_t crossings = 0;
  std::uint64_t spilled = 0;
  std::uint64_t chaos_crashes = 0;
  std::uint64_t chaos_restarts = 0;
  std::uint64_t partition_drops = 0;
};

TcpDayResult run_tcp_day(const TcpDayConfig& cfg);

}  // namespace hpop::psim
