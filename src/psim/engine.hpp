#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/pool.hpp"
#include "psim/spsc_ring.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace hpop::psim {

/// One packet in flight between shards: where it is due, a producer-side
/// sequence stamp (FIFO tie-break inside one crossing), and the interface
/// it will be delivered on.
struct CrossItem {
  util::TimePoint deliver_at = 0;
  std::uint64_t seq = 0;
  net::Interface* to = nullptr;
  net::Packet pkt;
};

/// The SPSC channel for one ordered partition pair (from → to). The
/// producer is the worker servicing `from` (during an epoch); the consumer
/// is the barrier (main thread, workers parked), so the ring is never
/// popped concurrently with pushes. A full ring spills to a producer-local
/// vector; once anything has spilled, later pushes spill too — popping
/// could reopen ring slots mid-epoch, and letting push order fork between
/// ring and spill would break FIFO.
class Crossing : public net::CrossSink {
 public:
  Crossing(std::size_t from, std::size_t to, std::size_t slots)
      : from_(from), to_(to), ring_(slots) {}

  void push(util::TimePoint deliver_at, net::Packet&& pkt,
            net::Interface* to) override;

  std::size_t from() const { return from_; }
  std::size_t to() const { return to_; }

 private:
  friend class Engine;
  std::size_t from_;
  std::size_t to_;
  SpscRing<CrossItem> ring_;
  std::vector<CrossItem> spill_;  // producer-written, barrier-drained
  std::uint64_t seq_ = 0;
  std::uint64_t spilled_ = 0;
};

/// Conservative-lookahead parallel engine (CMB-style). The topology is cut
/// into logical partitions, each with its own Simulator (event heap) and
/// PacketPool; partition p is pinned to worker p % workers for the
/// engine's lifetime. Execution alternates epochs and barriers:
///
///   1. barrier (main thread): drain every crossing, re-homing each packet
///      into its destination partition's pool and scheduling its delivery;
///      then read every shard's next-event time.
///   2. deadline = min(horizon, T_min + lookahead), where T_min is the
///      global minimum next-event time. Any packet a shard emits at t >=
///      T_min arrives at t + tx + delay > T_min + lookahead (boundary
///      delays >= lookahead, tx > 0), i.e. strictly after the epoch — so
///      shards cannot affect each other inside one epoch.
///   3. epoch: every shard runs to the deadline in parallel.
///
/// Partitioning is a function of the topology alone (never the worker
/// count) and crossings drain in registration order, so event order — and
/// therefore telemetry — is byte-identical for any worker count.
class Engine {
 public:
  struct Config {
    std::size_t workers = 1;
    std::size_t ring_slots = 1024;
    /// Minimum boundary-link one-way delay; must be > 0.
    util::Duration lookahead = 0;
  };

  explicit Engine(const Config& cfg);

  /// Adds a partition (own Simulator + PacketPool); returns its index.
  std::size_t add_partition();
  std::size_t partitions() const { return sims_.size(); }

  sim::Simulator& sim(std::size_t p) { return *sims_[p]; }
  net::PacketPool& pool(std::size_t p) {
    return net::PacketPool::of(*sims_[p]);
  }

  /// The crossing for ordered pair (from → to), created on first use.
  Crossing* crossing(std::size_t from, std::size_t to);

  /// Binds both directions of an intra-partition link to partition p.
  void bind_local(net::Link* link, std::size_t p);
  /// Binds link direction `dir` (sender side in `from`) as a boundary: it
  /// serializes on `from`'s clock and hands finished packets to the
  /// (from → to) crossing. The direction's propagation delay must be >=
  /// the configured lookahead.
  void bind_boundary(net::Link* link, int dir, std::size_t from,
                     std::size_t to);

  /// Runs every partition to `horizon` through the epoch/barrier protocol.
  void run_until(util::TimePoint horizon);

  struct Stats {
    std::uint64_t epochs = 0;
    std::uint64_t crossings = 0;  // packets drained across shard boundaries
    std::uint64_t spilled = 0;    // crossings that overflowed their ring
  };
  const Stats& stats() const { return stats_; }

  /// Total events executed across all partitions (worker-count invariant).
  std::uint64_t events_executed() const;

 private:
  void drain_all();
  void deliver_item(net::PacketPool& pool, sim::Simulator& dest,
                    CrossItem&& item);

  Config cfg_;
  std::vector<std::unique_ptr<sim::Simulator>> sims_;
  std::vector<std::unique_ptr<Crossing>> crossings_;  // registration order
  std::vector<std::vector<Crossing*>> inbound_;       // [to], reg. order
  util::ThreadPool pool_;
  Stats stats_;
};

}  // namespace hpop::psim
