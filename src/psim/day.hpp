#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace hpop::psim {

/// A sharded metro day: build_metro + plan_shards + Engine, with a raw
/// UDP request/response workload (per-home Poisson arrivals shaped by the
/// residential diurnal curve and flash crowds; origins answer each request
/// with a train of 1200-byte chunks). Transport stays packet-level on
/// purpose: every per-home state is owned by the home's shard, so the day
/// parallelizes without sharing anything but the boundary rings.
struct DayConfig {
  std::size_t homes = 10'000;
  std::size_t workers = 1;
  std::uint64_t seed = 42;
  /// Compressed day length (diurnal shape scaled into it).
  util::Duration day = 20 * util::kSecond;
  /// Requests/sec per home at diurnal multiplier 1.0.
  double base_rate_per_home = 0.05;
  std::size_t catalog_objects = 2'000;
  double zipf_skew = 0.9;
  std::size_t flash_crowds = 2;
  std::size_t ring_slots = 4'096;
  int burst_limit = 8;
  /// Adds a DSLAM crash in PoP 1's shard and a partition cut inside PoP
  /// 2's shard (skipped when the topology has fewer than 3 PoPs).
  bool chaos = true;
};

struct DayResult {
  /// Deterministic multi-line report: byte-identical for a fixed (config
  /// minus workers) across any worker count.
  std::string report;
  double wall_s = 0;

  std::uint64_t requests = 0;
  std::uint64_t chunks = 0;  // response packets sent by origins
  std::uint64_t rx_pkts = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t events = 0;
  std::uint64_t epochs = 0;
  std::uint64_t crossings = 0;
  std::uint64_t spilled = 0;
  std::uint64_t chaos_crashes = 0;
  std::uint64_t chaos_restarts = 0;
  std::uint64_t partition_drops = 0;
};

DayResult run_day(const DayConfig& cfg);

}  // namespace hpop::psim
