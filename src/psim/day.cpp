#include "psim/day.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "metro/partition.hpp"
#include "metro/topology.hpp"
#include "metro/workload.hpp"
#include "net/network.hpp"
#include "psim/engine.hpp"
#include "util/rng.hpp"

namespace hpop::psim {

namespace {

constexpr std::uint16_t kReqPort = 7100;
constexpr std::uint16_t kRespPort = 7200;
constexpr std::size_t kReqWire = 64;
constexpr std::size_t kChunkBytes = 1200;

/// What a request asks for; rides the request datagram as its (immutable)
/// message payload, so the origin needs no connection state.
struct RequestInfo : net::Payload {
  std::uint32_t home = 0;
  std::uint32_t rank = 0;
  std::uint64_t bytes = 0;
  RequestInfo(std::uint32_t h, std::uint32_t r, std::uint64_t b)
      : home(h), rank(r), bytes(b) {}
  std::size_t wire_size() const override { return 16; }
};

struct HomeState {
  util::Rng rng{0};
  std::uint64_t requests = 0;
  std::uint64_t rx_pkts = 0;
  std::uint64_t rx_bytes = 0;
};

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// Everything one day run owns. Heap-allocated so event closures can hold
/// a stable pointer.
struct DayCtx {
  const DayConfig& cfg;
  sim::Simulator build_sim;
  util::Rng rng;
  /// Declared before net so it is destroyed after it: when the day ends
  /// mid-traffic, link queues still hold PooledPackets whose pools live in
  /// the engine's shard simulators, and releasing a packet needs its pool.
  std::unique_ptr<Engine> eng;
  net::Network net;
  metro::MetroTopology topo;
  metro::ShardPlan plan;
  std::unique_ptr<metro::WorkloadModel> model;
  std::vector<HomeState> homes;
  std::uint64_t origin_requests = 0;
  std::uint64_t origin_chunks = 0;
  std::vector<std::unique_ptr<fault::ChaosController>> chaos;

  explicit DayCtx(const DayConfig& c)
      : cfg(c), rng(c.seed), net(build_sim, rng.fork()) {}

  void schedule_arrival(std::size_t h, util::TimePoint after) {
    util::TimePoint t = model->next_arrival(topo, h, after, homes[h].rng);
    if (t >= cfg.day) return;
    const std::size_t p = plan.of_home(topo, h);
    eng->sim(p).schedule_at(t, [this, h] { fire_request(h); });
  }

  void fire_request(std::size_t h) {
    const std::size_t p = plan.of_home(topo, h);
    sim::Simulator& sim = eng->sim(p);
    HomeState& hs = homes[h];
    const std::size_t rank = model->draw_object(topo, h, sim.now(), hs.rng);
    const std::uint64_t bytes = model->catalog().bytes_of(rank);
    net::PooledPacket q = eng->pool(p).acquire();
    q->src = topo.home_address(h);
    q->dst = topo.origins[0]->address();
    q->proto = net::Proto::kUdp;
    q->udp.src_port = kReqPort;
    q->udp.dst_port = kReqPort;
    q->payload_len = kReqWire;
    q->messages.push_back(
        {kReqWire, std::make_shared<RequestInfo>(
                       static_cast<std::uint32_t>(h),
                       static_cast<std::uint32_t>(rank), bytes)});
    topo.homes[h]->send_packet(std::move(q));
    ++hs.requests;
    schedule_arrival(h, sim.now());
  }

  void serve_request(const net::Packet& req) {
    if (req.messages.empty()) return;
    const auto* info =
        static_cast<const RequestInfo*>(req.messages[0].message.get());
    ++origin_requests;
    const std::size_t core_p = plan.core_partition;
    net::Host* origin = topo.origins[0];
    const net::IpAddr dst = req.src;
    std::uint64_t remaining = info->bytes;
    while (remaining > 0) {
      const std::size_t chunk =
          std::min<std::uint64_t>(remaining, kChunkBytes);
      net::PooledPacket q = eng->pool(core_p).acquire();
      q->src = origin->address();
      q->dst = dst;
      q->proto = net::Proto::kUdp;
      q->udp.src_port = kRespPort;
      q->udp.dst_port = kRespPort;
      q->payload_len = chunk;
      origin->send_packet(std::move(q));
      ++origin_chunks;
      remaining -= chunk;
    }
  }
};

}  // namespace

DayResult run_day(const DayConfig& cfg) {
  DayCtx ctx(cfg);

  metro::MetroParams mp;
  mp.homes = cfg.homes;
  mp.origins = 1;
  util::Rng topo_rng = ctx.rng.fork();
  ctx.topo = metro::build_metro(ctx.net, mp, topo_rng);
  ctx.plan = metro::plan_shards(ctx.topo);

  Engine::Config ec;
  ec.workers = cfg.workers;
  ec.ring_slots = cfg.ring_slots;
  ec.lookahead = ctx.plan.lookahead;
  ctx.eng = std::make_unique<Engine>(ec);
  for (std::size_t p = 0; p < ctx.plan.partitions; ++p) {
    ctx.eng->add_partition();
  }

  for (const auto& link : ctx.net.links()) {
    link->set_burst_limit(cfg.burst_limit);
  }
  for (std::size_t h = 0; h < ctx.topo.homes.size(); ++h) {
    ctx.eng->bind_local(ctx.topo.access_links[h], ctx.plan.of_home(ctx.topo, h));
  }
  for (std::size_t d = 0; d < ctx.topo.dslams.size(); ++d) {
    ctx.eng->bind_local(ctx.topo.dslam_uplinks[d],
                        ctx.plan.of_dslam(ctx.topo, d));
  }
  const std::size_t core_p = ctx.plan.core_partition;
  for (std::size_t p = 0; p < ctx.topo.pops.size(); ++p) {
    net::Link* up = ctx.topo.pop_uplinks[p];
    ctx.eng->bind_boundary(up, 0, p, core_p);  // pop -> core
    ctx.eng->bind_boundary(up, 1, core_p, p);  // core -> pop
  }
  for (net::Link* ol : ctx.topo.origin_links) {
    ctx.eng->bind_local(ol, core_p);
  }

  metro::DiurnalCurve curve = metro::DiurnalCurve::residential(cfg.day);
  metro::ZipfCatalog catalog(cfg.catalog_objects, cfg.zipf_skew);
  util::Rng plan_rng = ctx.rng.fork();
  metro::EventPlan eplan = metro::EventPlan::generate(
      ctx.topo, catalog, cfg.day, cfg.flash_crowds, /*outages=*/0, plan_rng);
  ctx.model = std::make_unique<metro::WorkloadModel>(
      curve, catalog, eplan, cfg.base_rate_per_home);

  ctx.homes.resize(ctx.topo.homes.size());
  for (std::size_t h = 0; h < ctx.homes.size(); ++h) {
    ctx.homes[h].rng = util::Rng(cfg.seed ^ (0x9E3779B97F4A7C15ull *
                                             static_cast<std::uint64_t>(h + 1)));
    ctx.topo.homes[h]->set_transport_handler(
        [ctxp = &ctx, h](net::PooledPacket pkt, net::Interface&) {
          if (pkt->udp.dst_port != kRespPort) return;
          ++ctxp->homes[h].rx_pkts;
          ctxp->homes[h].rx_bytes += pkt->payload_len;
        });
  }
  ctx.topo.origins[0]->set_transport_handler(
      [ctxp = &ctx](net::PooledPacket pkt, net::Interface&) {
        if (pkt->udp.dst_port != kReqPort) return;
        ctxp->serve_request(*pkt);
      });

  // Chaos, routed to the owning shard: each controller schedules on its
  // shard's simulator, so the fault fires on the worker that owns the
  // targeted subtree. Boundary links are never touched (see Engine).
  if (cfg.chaos && ctx.topo.pops.size() >= 3) {
    const std::size_t d1 = 1 * mp.dslams_per_pop;  // a DSLAM inside PoP 1
    auto c1 = std::make_unique<fault::ChaosController>(ctx.eng->sim(1),
                                                       ctx.rng.fork());
    c1->register_node(ctx.topo.dslams[d1]->name(), ctx.topo.dslams[d1]);
    c1->crash_at(ctx.topo.dslams[d1]->name(), cfg.day * 3 / 10,
                 cfg.day / 10);
    ctx.chaos.push_back(std::move(c1));

    const std::size_t d2 = 2 * mp.dslams_per_pop;  // a DSLAM inside PoP 2
    auto c2 = std::make_unique<fault::ChaosController>(ctx.eng->sim(2),
                                                       ctx.rng.fork());
    const auto [first, last] = ctx.topo.homes_of_dslam(d2);
    std::vector<net::Node*> cut_homes;
    for (std::size_t h = first; h < last; ++h) {
      cut_homes.push_back(ctx.topo.homes[h]);
    }
    c2->partition_at(std::move(cut_homes), {}, cfg.day * 45 / 100,
                     cfg.day * 15 / 100);
    ctx.chaos.push_back(std::move(c2));
  }

  for (std::size_t h = 0; h < ctx.homes.size(); ++h) {
    ctx.schedule_arrival(h, 0);
  }

  const auto wall0 = std::chrono::steady_clock::now();
  ctx.eng->run_until(cfg.day);
  const auto wall1 = std::chrono::steady_clock::now();

  DayResult r;
  r.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  for (const HomeState& hs : ctx.homes) {
    r.requests += hs.requests;
    r.rx_pkts += hs.rx_pkts;
    r.rx_bytes += hs.rx_bytes;
  }
  r.chunks = ctx.origin_chunks;
  r.events = ctx.eng->events_executed();
  r.epochs = ctx.eng->stats().epochs;
  r.crossings = ctx.eng->stats().crossings;
  r.spilled = ctx.eng->stats().spilled;
  for (const auto& c : ctx.chaos) {
    r.chaos_crashes += c->stats().crashes;
    r.chaos_restarts += c->stats().restarts;
    r.partition_drops += c->stats().partition_drops;
  }

  // Per-PoP aggregate hash: catches any reordering that shifts traffic
  // between subtrees without changing the global totals.
  std::uint64_t pop_hash = 14695981039346656037ull;
  {
    std::vector<std::uint64_t> pop_pkts(ctx.topo.pops.size(), 0);
    std::vector<std::uint64_t> pop_bytes(ctx.topo.pops.size(), 0);
    for (std::size_t h = 0; h < ctx.homes.size(); ++h) {
      const std::size_t p = ctx.topo.pop_of_home(h);
      pop_pkts[p] += ctx.homes[h].rx_pkts;
      pop_bytes[p] += ctx.homes[h].rx_bytes;
    }
    for (std::size_t p = 0; p < pop_pkts.size(); ++p) {
      pop_hash = fnv_u64(pop_hash, pop_pkts[p]);
      pop_hash = fnv_u64(pop_hash, pop_bytes[p]);
    }
  }
  std::uint64_t shard_hash = 14695981039346656037ull;
  for (std::uint64_t f : ctx.plan.fingerprints) {
    shard_hash = fnv_u64(shard_hash, f);
  }

  char line[256];
  std::snprintf(line, sizeof(line),
                "psim-day homes=%zu pops=%zu partitions=%zu day_ms=%" PRId64
                " seed=%" PRIu64 "\n",
                ctx.topo.homes.size(), ctx.topo.pops.size(), ctx.plan.partitions,
                cfg.day / util::kMillisecond, cfg.seed);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "topology fp=%016" PRIx64 " shards fp=%016" PRIx64
                " lookahead_us=%" PRId64 "\n",
                ctx.topo.fingerprint(), shard_hash,
                ctx.plan.lookahead / util::kMicrosecond);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "requests=%" PRIu64 " served=%" PRIu64 " chunks=%" PRIu64
                " rx_pkts=%" PRIu64 " rx_bytes=%" PRIu64 "\n",
                r.requests, ctx.origin_requests, r.chunks, r.rx_pkts,
                r.rx_bytes);
  r.report += line;
  std::snprintf(line, sizeof(line), "per-pop hash=%016" PRIx64 "\n", pop_hash);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "chaos crashes=%" PRIu64 " restarts=%" PRIu64
                " partition_drops=%" PRIu64 "\n",
                r.chaos_crashes, r.chaos_restarts, r.partition_drops);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "events=%" PRIu64 " epochs=%" PRIu64 " crossings=%" PRIu64
                " spilled=%" PRIu64 "\n",
                r.events, r.epochs, r.crossings, r.spilled);
  r.report += line;
  return r;
}

}  // namespace hpop::psim
