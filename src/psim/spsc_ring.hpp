#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

namespace hpop::psim {

/// Single-producer single-consumer bounded ring (NDN-DPDK-style packet
/// hand-off between shards). Lock-free: the producer owns tail_, the
/// consumer owns head_, and each reads the other's index with acquire
/// ordering, so a try_push/try_pop pair never blocks and never races.
///
/// Capacity is rounded up to a power of two so index masking is one AND.
/// The indices are monotonically increasing uint64s (never wrapped), which
/// makes the full/empty tests exact: size = tail - head.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when full (caller spills; see engine).
  bool try_push(T&& v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h > mask_) return false;
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when empty.
  bool try_pop(T& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return false;
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
};

}  // namespace hpop::psim
