#include "psim/tcp_day.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "metro/partition.hpp"
#include "metro/topology.hpp"
#include "metro/workload.hpp"
#include "net/network.hpp"
#include "psim/engine.hpp"
#include "transport/mux.hpp"
#include "util/rng.hpp"

namespace hpop::psim {

namespace {

constexpr std::uint16_t kTcpPort = 80;

/// The request message: rides the TCP stream as a 16-byte framed payload,
/// so the origin learns what to send back without any out-of-band state.
struct RequestInfo : net::Payload {
  std::uint32_t home = 0;
  std::uint32_t rank = 0;
  std::uint64_t bytes = 0;
  RequestInfo(std::uint32_t h, std::uint32_t r, std::uint64_t b)
      : home(h), rank(r), bytes(b) {}
  std::size_t wire_size() const override { return 16; }
};

struct HomeState {
  util::Rng rng{0};
  std::uint64_t conns = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t mptcp_sessions = 0;
  /// The mux only holds MPTCP sessions weakly, so the client keeps its
  /// live sessions here (owned by the home's shard; erased — deferred one
  /// event — when the session closes).
  std::vector<std::shared_ptr<transport::MptcpConnection>> mp_live;
};

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// Everything one TCP day run owns. Heap-allocated so event closures can
/// hold a stable pointer. Declaration order is destruction order reversed,
/// and it matters twice: `eng` precedes `net` (link queues still hold
/// pooled packets whose pools live in the shard simulators), and the muxes
/// come last of all — ~TransportMux detaches every connection, which
/// cancels RTO/delayed-ack timers on shard simulators that must still be
/// alive, and leaves the connection objects inert before anything that
/// might still reference them is torn down.
struct TcpDayCtx {
  const TcpDayConfig& cfg;
  sim::Simulator build_sim;
  util::Rng rng;
  std::unique_ptr<Engine> eng;
  net::Network net;
  metro::MetroTopology topo;
  metro::ShardPlan plan;
  std::unique_ptr<metro::WorkloadModel> model;
  std::vector<HomeState> homes;
  std::uint64_t origin_served = 0;
  std::uint64_t origin_tx_bytes = 0;
  /// Accepted MPTCP sessions, owned by the core shard (same weak-mux
  /// reasoning as HomeState::mp_live).
  std::vector<std::shared_ptr<transport::MptcpConnection>> origin_mp_live;
  std::vector<std::unique_ptr<fault::ChaosController>> chaos;
  std::vector<std::unique_ptr<transport::TransportMux>> home_muxes;
  std::unique_ptr<transport::TransportMux> origin_mux;

  explicit TcpDayCtx(const TcpDayConfig& c)
      : cfg(c), rng(c.seed), net(build_sim, rng.fork()) {}

  net::Endpoint origin_endpoint() const {
    return {topo.origins[0]->address(), kTcpPort};
  }

  void schedule_arrival(std::size_t h, util::TimePoint after) {
    util::TimePoint t = model->next_arrival(topo, h, after, homes[h].rng);
    if (t >= cfg.day) return;
    const std::size_t p = plan.of_home(topo, h);
    eng->sim(p).schedule_at(t, [this, h] { fire_request(h); });
  }

  void account_close(std::size_t h, const char* error, std::uint64_t rexmit,
                     std::uint64_t tmo) {
    HomeState& hs = homes[h];
    hs.retransmits += rexmit;
    hs.timeouts += tmo;
    if (error == nullptr) {
      ++hs.completed;
    } else {
      ++hs.failed;
    }
  }

  void fire_request(std::size_t h) {
    const std::size_t p = plan.of_home(topo, h);
    sim::Simulator& sim = eng->sim(p);
    HomeState& hs = homes[h];
    const std::size_t rank = model->draw_object(topo, h, sim.now(), hs.rng);
    const std::uint64_t bytes = model->catalog().bytes_of(rank);
    auto request = std::make_shared<RequestInfo>(
        static_cast<std::uint32_t>(h), static_cast<std::uint32_t>(rank),
        bytes);
    transport::TransportMux& mux = *home_muxes[h];
    const bool use_mptcp = cfg.mptcp_every != 0 && h % cfg.mptcp_every == 0;
    if (use_mptcp) {
      auto conn = mux.mptcp_connect(origin_endpoint());
      transport::MptcpConnection* c = conn.get();
      hs.mp_live.push_back(conn);
      ++hs.mptcp_sessions;
      conn->set_on_established([c, request] {
        c->add_subflow({});
        c->send(request);
        c->close();
      });
      conn->set_on_bytes([this, h](std::size_t n) {
        homes[h].rx_bytes += n;
      });
      conn->set_on_closed([this, h, c] {
        std::uint64_t rexmit = 0;
        std::uint64_t tmo = 0;
        for (const auto& sf : c->subflows()) {
          rexmit += sf.conn->retransmits();
          tmo += sf.conn->timeouts();
        }
        account_close(h, c->last_error(), rexmit, tmo);
        release_mptcp(homes[h].mp_live, h, c);
      });
      conn->set_on_reset([this, h, c] {
        std::uint64_t rexmit = 0;
        std::uint64_t tmo = 0;
        for (const auto& sf : c->subflows()) {
          rexmit += sf.conn->retransmits();
          tmo += sf.conn->timeouts();
        }
        account_close(h, c->last_error(), rexmit, tmo);
        release_mptcp(homes[h].mp_live, h, c);
      });
    } else {
      auto conn = mux.tcp_connect(origin_endpoint());
      transport::TcpConnection* c = conn.get();
      conn->set_on_established([c, request] {
        c->send(request);
        c->close();
      });
      conn->set_on_bytes([this, h](std::size_t n) {
        homes[h].rx_bytes += n;
      });
      conn->set_on_closed([this, h, c] {
        account_close(h, c->last_error(), c->retransmits(), c->timeouts());
      });
    }
    ++hs.conns;
    schedule_arrival(h, sim.now());
  }

  /// Drops the owning reference one event later: the session is mid-way
  /// through its own close callback, so erasing the shared_ptr here would
  /// destroy it under its own feet.
  void release_mptcp(
      std::vector<std::shared_ptr<transport::MptcpConnection>>& live,
      std::size_t shard_home, transport::MptcpConnection* c) {
    const std::size_t p = shard_home == SIZE_MAX
                              ? plan.core_partition
                              : plan.of_home(topo, shard_home);
    eng->sim(p).schedule(0, [&live, c] {
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->get() == c) {
          live.erase(it);
          return;
        }
      }
    });
  }

  void serve(transport::TcpConnection* c, const RequestInfo& info) {
    ++origin_served;
    origin_tx_bytes += info.bytes;
    c->send_bytes(info.bytes);
    c->close();
  }

  void serve_mptcp(transport::MptcpConnection* c, const RequestInfo& info) {
    ++origin_served;
    origin_tx_bytes += info.bytes;
    c->send_bytes(info.bytes);
    c->close();
  }
};

}  // namespace

TcpDayResult run_tcp_day(const TcpDayConfig& cfg) {
  TcpDayCtx ctx(cfg);

  metro::MetroParams mp;
  mp.homes = cfg.homes;
  mp.origins = 1;
  util::Rng topo_rng = ctx.rng.fork();
  ctx.topo = metro::build_metro(ctx.net, mp, topo_rng);
  ctx.plan = metro::plan_shards(ctx.topo);

  Engine::Config ec;
  ec.workers = cfg.workers;
  ec.ring_slots = cfg.ring_slots;
  ec.lookahead = ctx.plan.lookahead;
  ctx.eng = std::make_unique<Engine>(ec);
  for (std::size_t p = 0; p < ctx.plan.partitions; ++p) {
    ctx.eng->add_partition();
  }

  for (const auto& link : ctx.net.links()) {
    link->set_burst_limit(cfg.burst_limit);
  }
  for (std::size_t h = 0; h < ctx.topo.homes.size(); ++h) {
    ctx.eng->bind_local(ctx.topo.access_links[h], ctx.plan.of_home(ctx.topo, h));
  }
  for (std::size_t d = 0; d < ctx.topo.dslams.size(); ++d) {
    ctx.eng->bind_local(ctx.topo.dslam_uplinks[d],
                        ctx.plan.of_dslam(ctx.topo, d));
  }
  const std::size_t core_p = ctx.plan.core_partition;
  for (std::size_t p = 0; p < ctx.topo.pops.size(); ++p) {
    net::Link* up = ctx.topo.pop_uplinks[p];
    ctx.eng->bind_boundary(up, 0, p, core_p);  // pop -> core
    ctx.eng->bind_boundary(up, 1, core_p, p);  // core -> pop
  }
  for (net::Link* ol : ctx.topo.origin_links) {
    ctx.eng->bind_local(ol, core_p);
  }

  // Re-home the endpoints into their shards BEFORE any transport state
  // exists: a TransportMux resolves its host's simulator and packet pool
  // dynamically, so once the host is bound, every connection it opens
  // schedules timers and builds segments in the owning shard.
  for (std::size_t h = 0; h < ctx.topo.homes.size(); ++h) {
    ctx.topo.homes[h]->bind_shard(ctx.eng->sim(ctx.plan.of_home(ctx.topo, h)));
  }
  ctx.topo.origins[0]->bind_shard(ctx.eng->sim(core_p));

  metro::DiurnalCurve curve = metro::DiurnalCurve::residential(cfg.day);
  metro::ZipfCatalog catalog(cfg.catalog_objects, cfg.zipf_skew);
  util::Rng plan_rng = ctx.rng.fork();
  metro::EventPlan eplan = metro::EventPlan::generate(
      ctx.topo, catalog, cfg.day, cfg.flash_crowds, /*outages=*/0, plan_rng);
  ctx.model = std::make_unique<metro::WorkloadModel>(
      curve, catalog, eplan, cfg.base_rate_per_home);

  ctx.homes.resize(ctx.topo.homes.size());
  ctx.home_muxes.resize(ctx.topo.homes.size());
  for (std::size_t h = 0; h < ctx.homes.size(); ++h) {
    ctx.homes[h].rng = util::Rng(cfg.seed ^ (0x9E3779B97F4A7C15ull *
                                             static_cast<std::uint64_t>(h + 1)));
    ctx.home_muxes[h] =
        std::make_unique<transport::TransportMux>(*ctx.topo.homes[h]);
  }

  ctx.origin_mux =
      std::make_unique<transport::TransportMux>(*ctx.topo.origins[0]);
  transport::TcpOptions lopts;
  lopts.mp_capable = true;  // accepts both MPTCP sessions and plain TCP
  auto listener = ctx.origin_mux->tcp_listen(kTcpPort, lopts);
  listener->set_on_accept(
      [ctxp = &ctx](std::shared_ptr<transport::TcpConnection> conn) {
        transport::TcpConnection* c = conn.get();
        c->set_on_message([ctxp, c](net::PayloadPtr msg) {
          ctxp->serve(c, *static_cast<const RequestInfo*>(msg.get()));
        });
      });
  listener->set_on_accept_mptcp(
      [ctxp = &ctx](std::shared_ptr<transport::MptcpConnection> session) {
        transport::MptcpConnection* c = session.get();
        ctxp->origin_mp_live.push_back(std::move(session));
        c->set_on_message([ctxp, c](net::PayloadPtr msg) {
          ctxp->serve_mptcp(c, *static_cast<const RequestInfo*>(msg.get()));
        });
        c->set_on_closed([ctxp, c] {
          ctxp->release_mptcp(ctxp->origin_mp_live, SIZE_MAX, c);
        });
        c->set_on_reset([ctxp, c] {
          ctxp->release_mptcp(ctxp->origin_mp_live, SIZE_MAX, c);
        });
      });

  // Chaos, routed to the owning shard, exactly as in the UDP day — except
  // that here the victims carry live TCP state, so the faults exercise RTO
  // backoff, SACK recovery, and connection failure across the shard cut.
  if (cfg.chaos && ctx.topo.pops.size() >= 3) {
    const std::size_t d1 = 1 * mp.dslams_per_pop;  // a DSLAM inside PoP 1
    auto c1 = std::make_unique<fault::ChaosController>(ctx.eng->sim(1),
                                                       ctx.rng.fork());
    c1->register_node(ctx.topo.dslams[d1]->name(), ctx.topo.dslams[d1]);
    c1->crash_at(ctx.topo.dslams[d1]->name(), cfg.day * 3 / 10,
                 cfg.day / 10);
    ctx.chaos.push_back(std::move(c1));

    const std::size_t d2 = 2 * mp.dslams_per_pop;  // a DSLAM inside PoP 2
    auto c2 = std::make_unique<fault::ChaosController>(ctx.eng->sim(2),
                                                       ctx.rng.fork());
    const auto [first, last] = ctx.topo.homes_of_dslam(d2);
    std::vector<net::Node*> cut_homes;
    for (std::size_t h = first; h < last; ++h) {
      cut_homes.push_back(ctx.topo.homes[h]);
    }
    c2->partition_at(std::move(cut_homes), {}, cfg.day * 45 / 100,
                     cfg.day * 15 / 100);
    ctx.chaos.push_back(std::move(c2));
  }

  for (std::size_t h = 0; h < ctx.homes.size(); ++h) {
    ctx.schedule_arrival(h, 0);
  }

  const auto wall0 = std::chrono::steady_clock::now();
  ctx.eng->run_until(cfg.day);
  const auto wall1 = std::chrono::steady_clock::now();

  TcpDayResult r;
  r.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  for (const HomeState& hs : ctx.homes) {
    r.conns += hs.conns;
    r.completed += hs.completed;
    r.failed += hs.failed;
    r.rx_bytes += hs.rx_bytes;
    r.retransmits += hs.retransmits;
    r.timeouts += hs.timeouts;
    r.mptcp_sessions += hs.mptcp_sessions;
  }
  r.origin_served = ctx.origin_served;
  r.origin_tx_bytes = ctx.origin_tx_bytes;
  r.events = ctx.eng->events_executed();
  r.epochs = ctx.eng->stats().epochs;
  r.crossings = ctx.eng->stats().crossings;
  r.spilled = ctx.eng->stats().spilled;
  for (const auto& c : ctx.chaos) {
    r.chaos_crashes += c->stats().crashes;
    r.chaos_restarts += c->stats().restarts;
    r.partition_drops += c->stats().partition_drops;
  }

  // Per-PoP aggregate hash: catches any reordering that shifts transfers
  // between subtrees without changing the global totals.
  std::uint64_t pop_hash = 14695981039346656037ull;
  {
    std::vector<std::uint64_t> pop_done(ctx.topo.pops.size(), 0);
    std::vector<std::uint64_t> pop_bytes(ctx.topo.pops.size(), 0);
    for (std::size_t h = 0; h < ctx.homes.size(); ++h) {
      const std::size_t p = ctx.topo.pop_of_home(h);
      pop_done[p] += ctx.homes[h].completed;
      pop_bytes[p] += ctx.homes[h].rx_bytes;
    }
    for (std::size_t p = 0; p < pop_done.size(); ++p) {
      pop_hash = fnv_u64(pop_hash, pop_done[p]);
      pop_hash = fnv_u64(pop_hash, pop_bytes[p]);
    }
  }
  std::uint64_t shard_hash = 14695981039346656037ull;
  for (std::uint64_t f : ctx.plan.fingerprints) {
    shard_hash = fnv_u64(shard_hash, f);
  }

  char line[256];
  std::snprintf(line, sizeof(line),
                "psim-tcp-day homes=%zu pops=%zu partitions=%zu"
                " day_ms=%" PRId64 " seed=%" PRIu64 "\n",
                ctx.topo.homes.size(), ctx.topo.pops.size(),
                ctx.plan.partitions, cfg.day / util::kMillisecond, cfg.seed);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "topology fp=%016" PRIx64 " shards fp=%016" PRIx64
                " lookahead_us=%" PRId64 "\n",
                ctx.topo.fingerprint(), shard_hash,
                ctx.plan.lookahead / util::kMicrosecond);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "conns=%" PRIu64 " completed=%" PRIu64 " failed=%" PRIu64
                " mptcp=%" PRIu64 " rx_bytes=%" PRIu64 "\n",
                r.conns, r.completed, r.failed, r.mptcp_sessions, r.rx_bytes);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "origin served=%" PRIu64 " tx_bytes=%" PRIu64 "\n",
                r.origin_served, r.origin_tx_bytes);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "tcp retransmits=%" PRIu64 " timeouts=%" PRIu64 "\n",
                r.retransmits, r.timeouts);
  r.report += line;
  std::snprintf(line, sizeof(line), "per-pop hash=%016" PRIx64 "\n", pop_hash);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "chaos crashes=%" PRIu64 " restarts=%" PRIu64
                " partition_drops=%" PRIu64 "\n",
                r.chaos_crashes, r.chaos_restarts, r.partition_drops);
  r.report += line;
  std::snprintf(line, sizeof(line),
                "events=%" PRIu64 " epochs=%" PRIu64 " crossings=%" PRIu64
                " spilled=%" PRIu64 "\n",
                r.events, r.epochs, r.crossings, r.spilled);
  r.report += line;
  return r;
}

}  // namespace hpop::psim
