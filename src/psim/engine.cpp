#include "psim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/node.hpp"

namespace hpop::psim {

void Crossing::push(util::TimePoint deliver_at, net::Packet&& pkt,
                    net::Interface* to) {
  // CowVec's sole-owner fast path mutates shared storage without
  // synchronization, so a body that crossed shards could be written by
  // both sides. Deep-copy the two CowVec bodies here, on the producer, so
  // the packet the consumer re-homes shares no mutable storage with this
  // shard. Payload objects themselves are immutable (const Payload behind
  // shared_ptr) and safe to share.
  if (!pkt.messages.empty()) {
    std::vector<net::MessageRef> body(pkt.messages.view());
    pkt.messages.assign(std::move(body));
  }
  if (!pkt.tcp.sack.empty()) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> body(
        pkt.tcp.sack.view());
    pkt.tcp.sack.assign(std::move(body));
  }
  CrossItem item{deliver_at, seq_++, to, std::move(pkt)};
  if (!spill_.empty() || !ring_.try_push(std::move(item))) {
    spill_.push_back(std::move(item));
    ++spilled_;
  }
}

Engine::Engine(const Config& cfg)
    : cfg_(cfg), pool_(cfg.workers <= 1 ? 0 : cfg.workers) {
  assert(cfg_.lookahead > 0 && "conservative engine needs positive lookahead");
}

std::size_t Engine::add_partition() {
  sims_.push_back(std::make_unique<sim::Simulator>());
  net::PacketPool::of(*sims_.back());  // create the arena on the main thread
  inbound_.emplace_back();
  return sims_.size() - 1;
}

Crossing* Engine::crossing(std::size_t from, std::size_t to) {
  for (auto& c : crossings_) {
    if (c->from() == from && c->to() == to) return c.get();
  }
  crossings_.push_back(std::make_unique<Crossing>(from, to, cfg_.ring_slots));
  inbound_[to].push_back(crossings_.back().get());
  return crossings_.back().get();
}

void Engine::bind_local(net::Link* link, std::size_t p) {
  link->bind_shard(0, &sim(p), nullptr);
  link->bind_shard(1, &sim(p), nullptr);
}

void Engine::bind_boundary(net::Link* link, int dir, std::size_t from,
                           std::size_t to) {
  assert(link->params_of(dir).delay >= cfg_.lookahead);
  link->bind_shard(dir, &sim(from), crossing(from, to));
}

void Engine::deliver_item(net::PacketPool& pool, sim::Simulator& dest,
                          CrossItem&& item) {
  net::PooledPacket q = pool.acquire();
  *q = std::move(item.pkt);
  net::Interface* to = item.to;
  dest.schedule_at(item.deliver_at, [q = std::move(q), to]() mutable {
    to->node->deliver(std::move(q), *to);
  });
  ++stats_.crossings;
}

void Engine::drain_all() {
  for (std::size_t to = 0; to < sims_.size(); ++to) {
    if (inbound_[to].empty()) continue;
    sim::Simulator& dest = *sims_[to];
    net::PacketPool& pool = net::PacketPool::of(dest);
    for (Crossing* c : inbound_[to]) {
      CrossItem item;
      while (c->ring_.try_pop(item)) {
        deliver_item(pool, dest, std::move(item));
      }
      for (CrossItem& sp : c->spill_) {
        deliver_item(pool, dest, std::move(sp));
      }
      c->spill_.clear();
    }
  }
}

void Engine::run_until(util::TimePoint horizon) {
  bool done = false;
  while (!done) {
    util::TimePoint tmin = sim::Simulator::kNoEvent;
    for (auto& s : sims_) tmin = std::min(tmin, s->next_event_time());
    util::TimePoint deadline;
    if (tmin >= horizon) {
      deadline = horizon;
      done = true;
    } else {
      deadline = tmin + cfg_.lookahead;
      if (deadline >= horizon) {
        deadline = horizon;
        done = true;
      }
    }
    for (std::size_t p = 0; p < sims_.size(); ++p) {
      sim::Simulator* s = sims_[p].get();
      // Idle shards (no event due this epoch) are only submitted on the
      // final pass, to settle every clock at the horizon.
      if (!done && s->next_event_time() > deadline) continue;
      pool_.submit_pinned(p, [s, deadline] { s->run_until(deadline); });
    }
    pool_.wait_idle();
    ++stats_.epochs;
    // Safety: every packet pushed during this epoch left its shard at some
    // t >= tmin, so it is due at t + tx + delay > tmin + lookahead >=
    // deadline — always in the receiving shard's future.
    drain_all();
  }
  stats_.spilled = 0;
  for (auto& c : crossings_) stats_.spilled += c->spilled_;
}

std::uint64_t Engine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->events_executed();
  return total;
}

}  // namespace hpop::psim
