#include "telemetry/trace.hpp"

#include <sstream>

namespace hpop::telemetry {

thread_local Tracer g_tracer;

const char* trace_event_name(TraceEvent event) {
  switch (event) {
    case TraceEvent::kPacketDrop:
      return "packet_drop";
    case TraceEvent::kTcpRetransmit:
      return "tcp_retransmit";
    case TraceEvent::kTcpTimeout:
      return "tcp_timeout";
    case TraceEvent::kTcpCwndChange:
      return "tcp_cwnd_change";
    case TraceEvent::kMptcpSubflowSwitch:
      return "mptcp_subflow_switch";
    case TraceEvent::kCacheHit:
      return "cache_hit";
    case TraceEvent::kCacheMiss:
      return "cache_miss";
    case TraceEvent::kCacheEviction:
      return "cache_eviction";
    case TraceEvent::kNatMappingRejected:
      return "nat_mapping_rejected";
    case TraceEvent::kAtticGrantIssued:
      return "attic_grant_issued";
    case TraceEvent::kAtticGrantDenied:
      return "attic_grant_denied";
    case TraceEvent::kAtticErasureRepair:
      return "attic_erasure_repair";
    case TraceEvent::kDetourChosen:
      return "detour_chosen";
    case TraceEvent::kDetourWithdrawn:
      return "detour_withdrawn";
    case TraceEvent::kUsageRecordVerified:
      return "usage_record_verified";
    case TraceEvent::kUsageRecordRejected:
      return "usage_record_rejected";
    case TraceEvent::kPrefetchIssued:
      return "prefetch_issued";
    case TraceEvent::kNodeCrash:
      return "node_crash";
    case TraceEvent::kNodeRestart:
      return "node_restart";
    case TraceEvent::kLinkDown:
      return "link_down";
    case TraceEvent::kLinkUp:
      return "link_up";
    case TraceEvent::kLinkDegraded:
      return "link_degraded";
    case TraceEvent::kNatFlush:
      return "nat_flush";
    case TraceEvent::kBurstLoss:
      return "burst_loss";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) { ring_.resize(capacity ? capacity : 1); }

void Tracer::set_capacity(std::size_t capacity) {
  ring_.assign(capacity ? capacity : 1, TraceRecord{});
  next_ = 0;
  emitted_ = 0;
}

void Tracer::record(TraceEvent event, double a, double b, const char* detail) {
  TraceRecord& slot = ring_[next_];
  slot.at = clock_ != nullptr ? *clock_ : 0;
  slot.event = event;
  slot.a = a;
  slot.b = b;
  slot.detail = detail;
  next_ = (next_ + 1) % ring_.size();
  ++emitted_;
}

std::size_t Tracer::held() const {
  return emitted_ < ring_.size() ? static_cast<std::size_t>(emitted_)
                                 : ring_.size();
}

std::vector<TraceRecord> Tracer::records() const {
  std::vector<TraceRecord> out;
  const std::size_t n = held();
  out.reserve(n);
  // Oldest record sits at next_ once the ring has wrapped, at 0 before.
  const std::size_t start = emitted_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceRecord> Tracer::records(TraceEvent event) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records()) {
    if (r.event == event) out.push_back(r);
  }
  return out;
}

void Tracer::clear() {
  next_ = 0;
  emitted_ = 0;
}

std::string Tracer::to_jsonl() const {
  std::ostringstream os;
  for (const TraceRecord& r : records()) {
    os << "{\"t\":" << r.at << ",\"event\":\"" << trace_event_name(r.event)
       << "\",\"a\":" << r.a << ",\"b\":" << r.b;
    if (r.detail != nullptr && r.detail[0] != '\0') {
      os << ",\"detail\":\"" << r.detail << "\"";
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace hpop::telemetry
