#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace hpop::telemetry {

/// Trace categories gate emission: each is one bit of the tracer's enable
/// mask, so a disabled category costs one load+test+branch per emit call
/// (the guarded fast path the benches verify).
enum class TraceCategory : std::uint32_t {
  kPacket = 1u << 0,   // link-level drops
  kTcp = 1u << 1,      // retransmits, timeouts, cwnd changes
  kMptcp = 1u << 2,    // scheduler subflow switches
  kCache = 1u << 3,    // HTTP cache hits/misses/evictions
  kNat = 1u << 4,      // rejected inbound mappings
  kAttic = 1u << 5,    // grants issued/denied, erasure repairs
  kDcol = 1u << 6,     // detours chosen/withdrawn
  kNocdn = 1u << 7,    // usage records verified/rejected
  kIathome = 1u << 8,  // prefetch issues
  kFault = 1u << 9,    // injected faults: crashes, flaps, flushes
  kAll = 0xffffffffu,
};

enum class TraceEvent : std::uint8_t {
  kPacketDrop,          // a: wire bytes, b: 0 queue drop / 1 loss drop
  kTcpRetransmit,       // a: seq, b: len
  kTcpTimeout,          // a: backoff count
  kTcpCwndChange,       // a: new cwnd, b: ssthresh
  kMptcpSubflowSwitch,  // a: new subflow index, b: previous index
  kCacheHit,            // a: body bytes
  kCacheMiss,
  kCacheEviction,       // a: evicted bytes
  kNatMappingRejected,  // a: 0 filtered / 1 unmatched
  kAtticGrantIssued,
  kAtticGrantDenied,
  kAtticErasureRepair,    // a: shards lost, b: k
  kDetourChosen,          // a: waypoint member id
  kDetourWithdrawn,       // a: waypoint member id, b: 1 if misbehaving
  kUsageRecordVerified,   // a: bytes credited
  kUsageRecordRejected,   // a: verdict code
  kPrefetchIssued,
  kNodeCrash,    // a: scheduled downtime (s)
  kNodeRestart,  // a: actual downtime (s)
  kLinkDown,     // a: 1 if flap episode, 0 if one-shot
  kLinkUp,
  kLinkDegraded,  // a: new rate (bps), b: new loss
  kNatFlush,      // a: mappings dropped
  kBurstLoss,     // a: 1 entering bad state, 0 leaving; b: bad-state loss
};

const char* trace_event_name(TraceEvent event);

constexpr TraceCategory trace_event_category(TraceEvent event) {
  switch (event) {
    case TraceEvent::kPacketDrop:
      return TraceCategory::kPacket;
    case TraceEvent::kTcpRetransmit:
    case TraceEvent::kTcpTimeout:
    case TraceEvent::kTcpCwndChange:
      return TraceCategory::kTcp;
    case TraceEvent::kMptcpSubflowSwitch:
      return TraceCategory::kMptcp;
    case TraceEvent::kCacheHit:
    case TraceEvent::kCacheMiss:
    case TraceEvent::kCacheEviction:
      return TraceCategory::kCache;
    case TraceEvent::kNatMappingRejected:
      return TraceCategory::kNat;
    case TraceEvent::kAtticGrantIssued:
    case TraceEvent::kAtticGrantDenied:
    case TraceEvent::kAtticErasureRepair:
      return TraceCategory::kAttic;
    case TraceEvent::kDetourChosen:
    case TraceEvent::kDetourWithdrawn:
      return TraceCategory::kDcol;
    case TraceEvent::kUsageRecordVerified:
    case TraceEvent::kUsageRecordRejected:
      return TraceCategory::kNocdn;
    case TraceEvent::kPrefetchIssued:
      return TraceCategory::kIathome;
    case TraceEvent::kNodeCrash:
    case TraceEvent::kNodeRestart:
    case TraceEvent::kLinkDown:
    case TraceEvent::kLinkUp:
    case TraceEvent::kLinkDegraded:
    case TraceEvent::kNatFlush:
    case TraceEvent::kBurstLoss:
      return TraceCategory::kFault;
  }
  return TraceCategory::kAll;
}

/// One structured trace record. `detail` must point at a string with static
/// storage duration (event sites pass literals) so records stay POD-cheap.
struct TraceRecord {
  util::TimePoint at = 0;
  TraceEvent event = TraceEvent::kPacketDrop;
  double a = 0;
  double b = 0;
  const char* detail = "";
};

/// Flight-recorder tracer: typed records into a fixed ring buffer stamped
/// with simulated time (the active Simulator installs its clock, mirroring
/// util::set_log_clock). Disabled categories short-circuit in emit().
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);

  void set_clock(const util::TimePoint* now) { clock_ = now; }
  /// Replaces the buffer (and clears it); capacity must be > 0.
  void set_capacity(std::size_t capacity);

  void enable(TraceCategory categories) {
    mask_ |= static_cast<std::uint32_t>(categories);
  }
  void disable(TraceCategory categories) {
    mask_ &= ~static_cast<std::uint32_t>(categories);
  }
  void disable_all() { mask_ = 0; }
  bool enabled(TraceCategory category) const {
    return (mask_ & static_cast<std::uint32_t>(category)) != 0;
  }

  void emit(TraceEvent event, double a = 0, double b = 0,
            const char* detail = "") {
    if ((mask_ & static_cast<std::uint32_t>(trace_event_category(event))) ==
        0) {
      return;
    }
    record(event, a, b, detail);
  }

  /// Records currently held, oldest first (at most `capacity()`).
  std::vector<TraceRecord> records() const;
  /// Records of one event type, oldest first.
  std::vector<TraceRecord> records(TraceEvent event) const;
  std::size_t capacity() const { return ring_.size(); }
  std::size_t held() const;
  /// Total records ever emitted while enabled (wraps never reset this).
  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t overwritten() const {
    return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
  }
  void clear();

  /// JSON-lines dump of the held records, oldest first.
  std::string to_jsonl() const;

 private:
  void record(TraceEvent event, double a, double b, const char* detail);

  std::uint32_t mask_ = 0;  // all categories off: zero-cost by default
  const util::TimePoint* clock_ = nullptr;
  std::vector<TraceRecord> ring_;
  std::size_t next_ = 0;
  std::uint64_t emitted_ = 0;
};

/// The process-wide tracer the instrumented components emit into.
extern thread_local Tracer g_tracer;
inline Tracer& tracer() { return g_tracer; }

}  // namespace hpop::telemetry
