#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace hpop::telemetry {

thread_local MetricsRegistry g_registry;

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
    case MetricKind::kSummary:
      return "summary";
  }
  return "?";
}

MetricsRegistry::Slot* MetricsRegistry::find_slot(const std::string& name,
                                                  const std::string& labels,
                                                  MetricKind kind) {
  const auto it = index_.find({name, labels});
  if (it == index_.end()) return nullptr;
  assert(it->second->kind == kind && "metric re-registered as another kind");
  (void)kind;
  return it->second;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels) {
  if (Slot* slot = find_slot(name, labels, MetricKind::kCounter)) {
    return slot->counter;
  }
  counters_.emplace_back();
  slots_.push_back(Slot{name, labels, MetricKind::kCounter, &counters_.back(),
                        nullptr, nullptr, nullptr});
  index_[{name, labels}] = &slots_.back();
  return &counters_.back();
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels) {
  if (Slot* slot = find_slot(name, labels, MetricKind::kGauge)) {
    return slot->gauge;
  }
  gauges_.emplace_back();
  slots_.push_back(Slot{name, labels, MetricKind::kGauge, nullptr,
                        &gauges_.back(), nullptr, nullptr});
  index_[{name, labels}] = &slots_.back();
  return &gauges_.back();
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins,
                                            const std::string& labels) {
  if (Slot* slot = find_slot(name, labels, MetricKind::kHistogram)) {
    return slot->histogram;
  }
  histograms_.emplace_back(lo, hi, bins);
  slots_.push_back(Slot{name, labels, MetricKind::kHistogram, nullptr, nullptr,
                        &histograms_.back(), nullptr});
  index_[{name, labels}] = &slots_.back();
  return &histograms_.back();
}

SummaryMetric* MetricsRegistry::summary(const std::string& name,
                                        const std::string& labels) {
  if (Slot* slot = find_slot(name, labels, MetricKind::kSummary)) {
    return slot->summary;
  }
  summaries_.emplace_back();
  slots_.push_back(Slot{name, labels, MetricKind::kSummary, nullptr, nullptr,
                        nullptr, &summaries_.back()});
  index_[{name, labels}] = &slots_.back();
  return &summaries_.back();
}

namespace {

void fill_summary_stats(Snapshot::Sample& sample,
                        const std::vector<double>& window) {
  util::Summary s;
  for (const double x : window) s.add(x);
  sample.count = s.count();
  sample.sum = s.sum();
  sample.min = s.min();
  sample.max = s.max();
  sample.p50 = s.percentile(0.5);
  sample.p95 = s.percentile(0.95);
  sample.p99 = s.percentile(0.99);
}

}  // namespace

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  snap.samples.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    Snapshot::Sample sample;
    sample.name = slot.name;
    sample.labels = slot.labels;
    sample.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(slot.counter->value());
        break;
      case MetricKind::kGauge:
        sample.value = slot.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const util::Histogram& h = slot.histogram->histogram();
        sample.lo = h.bin_lo(0);
        sample.hi = h.bin_hi(h.bins() - 1);
        sample.count = h.total();
        sample.bins.reserve(h.bins());
        for (std::size_t i = 0; i < h.bins(); ++i) {
          sample.bins.push_back(h.bin_count(i));
        }
        break;
      }
      case MetricKind::kSummary:
        sample.raw = slot.summary->summary().samples();
        fill_summary_stats(sample, sample.raw);
        break;
    }
    snap.samples.push_back(std::move(sample));
  }
  return snap;
}

Snapshot MetricsRegistry::delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  out.samples.reserve(after.samples.size());
  for (const Snapshot::Sample& now : after.samples) {
    const Snapshot::Sample* then = before.find(now.name, now.labels);
    Snapshot::Sample d = now;
    if (then != nullptr) {
      switch (now.kind) {
        case MetricKind::kCounter:
          d.value = now.value - then->value;
          break;
        case MetricKind::kGauge:
          break;  // gauges are levels; the interval view is "where it ended"
        case MetricKind::kHistogram:
          d.count = now.count - then->count;
          for (std::size_t i = 0;
               i < d.bins.size() && i < then->bins.size(); ++i) {
            d.bins[i] = now.bins[i] - then->bins[i];
          }
          break;
        case MetricKind::kSummary: {
          // Summaries append; the interval's samples are the new tail.
          std::vector<double> window(
              now.raw.begin() +
                  static_cast<std::ptrdiff_t>(
                      std::min(then->raw.size(), now.raw.size())),
              now.raw.end());
          d.raw = std::move(window);
          fill_summary_stats(d, d.raw);
          break;
        }
      }
    }
    out.samples.push_back(std::move(d));
  }
  return out;
}

const Snapshot::Sample* Snapshot::find(const std::string& name,
                                       const std::string& labels) const {
  for (const Sample& sample : samples) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

double Snapshot::value(const std::string& name,
                       const std::string& labels) const {
  const Sample* sample = find(name, labels);
  if (sample == nullptr) return 0;
  if (sample->kind == MetricKind::kSummary) {
    return sample->count > 0 ? sample->sum / static_cast<double>(sample->count)
                             : 0;
  }
  return sample->value;
}

std::uint64_t Snapshot::count(const std::string& name,
                              const std::string& labels) const {
  const Sample* sample = find(name, labels);
  if (sample == nullptr) return 0;
  if (sample->kind == MetricKind::kCounter ||
      sample->kind == MetricKind::kGauge) {
    return static_cast<std::uint64_t>(sample->value);
  }
  return sample->count;
}

// --- Exporters -----------------------------------------------------------

namespace {

/// Doubles print round-trippably (%.17g) but trailing-zero-free.
std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string join_bins(const std::vector<std::uint64_t>& bins,
                      char separator) {
  std::ostringstream os;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (i > 0) os << separator;
    os << bins[i];
  }
  return os.str();
}

std::vector<std::uint64_t> split_bins(const std::string& text,
                                      char separator) {
  std::vector<std::uint64_t> bins;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t pos = text.find(separator, start);
    const std::string part = text.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start);
    if (!part.empty()) bins.push_back(std::strtoull(part.c_str(), nullptr, 10));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return bins;
}

/// Extracts `"key":<value>` from one JSON line (values are never nested —
/// the emitter writes flat objects with string, number and array fields).
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t start = at + needle.size();
  if (start >= line.size()) return "";
  if (line[start] == '"') {
    const std::size_t end = line.find('"', start + 1);
    return line.substr(start + 1, end - start - 1);
  }
  if (line[start] == '[') {
    const std::size_t end = line.find(']', start);
    return line.substr(start + 1, end - start - 1);
  }
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

MetricKind parse_kind(const std::string& text) {
  if (text == "gauge") return MetricKind::kGauge;
  if (text == "histogram") return MetricKind::kHistogram;
  if (text == "summary") return MetricKind::kSummary;
  return MetricKind::kCounter;
}

}  // namespace

std::string to_jsonl(const Snapshot& snap) {
  std::ostringstream os;
  for (const Snapshot::Sample& s : snap.samples) {
    os << "{\"name\":\"" << s.name << "\",\"labels\":\"" << s.labels
       << "\",\"kind\":\"" << metric_kind_name(s.kind) << "\"";
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        os << ",\"value\":" << fmt_double(s.value);
        break;
      case MetricKind::kHistogram:
        os << ",\"lo\":" << fmt_double(s.lo) << ",\"hi\":" << fmt_double(s.hi)
           << ",\"count\":" << s.count << ",\"bins\":["
           << join_bins(s.bins, ',') << "]";
        break;
      case MetricKind::kSummary:
        os << ",\"count\":" << s.count << ",\"sum\":" << fmt_double(s.sum)
           << ",\"min\":" << fmt_double(s.min)
           << ",\"max\":" << fmt_double(s.max)
           << ",\"p50\":" << fmt_double(s.p50)
           << ",\"p95\":" << fmt_double(s.p95)
           << ",\"p99\":" << fmt_double(s.p99);
        break;
    }
    os << "}\n";
  }
  return os.str();
}

Snapshot from_jsonl(const std::string& text) {
  Snapshot snap;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    Snapshot::Sample s;
    s.name = json_field(line, "name");
    s.labels = json_field(line, "labels");
    s.kind = parse_kind(json_field(line, "kind"));
    s.value = std::atof(json_field(line, "value").c_str());
    s.count = std::strtoull(json_field(line, "count").c_str(), nullptr, 10);
    s.sum = std::atof(json_field(line, "sum").c_str());
    s.min = std::atof(json_field(line, "min").c_str());
    s.max = std::atof(json_field(line, "max").c_str());
    s.p50 = std::atof(json_field(line, "p50").c_str());
    s.p95 = std::atof(json_field(line, "p95").c_str());
    s.p99 = std::atof(json_field(line, "p99").c_str());
    s.lo = std::atof(json_field(line, "lo").c_str());
    s.hi = std::atof(json_field(line, "hi").c_str());
    s.bins = split_bins(json_field(line, "bins"), ',');
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

std::string to_csv(const Snapshot& snap) {
  std::ostringstream os;
  os << "name,labels,kind,value,count,sum,min,max,p50,p95,p99,lo,hi,bins\n";
  for (const Snapshot::Sample& s : snap.samples) {
    os << s.name << "," << s.labels << "," << metric_kind_name(s.kind) << ","
       << fmt_double(s.value) << "," << s.count << "," << fmt_double(s.sum)
       << "," << fmt_double(s.min) << "," << fmt_double(s.max) << ","
       << fmt_double(s.p50) << "," << fmt_double(s.p95) << ","
       << fmt_double(s.p99) << "," << fmt_double(s.lo) << ","
       << fmt_double(s.hi) << "," << join_bins(s.bins, ';') << "\n";
  }
  return os.str();
}

Snapshot from_csv(const std::string& text) {
  Snapshot snap;
  std::istringstream is(text);
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (first) {  // header row
      first = false;
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::size_t start = 0;
    while (true) {
      const std::size_t pos = line.find(',', start);
      if (pos == std::string::npos) {
        cells.push_back(line.substr(start));
        break;
      }
      cells.push_back(line.substr(start, pos - start));
      start = pos + 1;
    }
    if (cells.size() < 14) continue;
    Snapshot::Sample s;
    s.name = cells[0];
    s.labels = cells[1];
    s.kind = parse_kind(cells[2]);
    s.value = std::atof(cells[3].c_str());
    s.count = std::strtoull(cells[4].c_str(), nullptr, 10);
    s.sum = std::atof(cells[5].c_str());
    s.min = std::atof(cells[6].c_str());
    s.max = std::atof(cells[7].c_str());
    s.p50 = std::atof(cells[8].c_str());
    s.p95 = std::atof(cells[9].c_str());
    s.p99 = std::atof(cells[10].c_str());
    s.lo = std::atof(cells[11].c_str());
    s.hi = std::atof(cells[12].c_str());
    s.bins = split_bins(cells[13], ';');
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

}  // namespace hpop::telemetry
