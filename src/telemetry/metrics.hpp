#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace hpop::telemetry {

/// Labeled metric handles. Components resolve a handle once (a map lookup
/// at construction) and bump it on the hot path through one pointer
/// indirection — no string hashing per event. All instruments live in a
/// MetricsRegistry and are observed through snapshot()/delta(), so benches
/// report intervals instead of process-lifetime totals.

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bin histogram instrument (util::Histogram backend).
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : histogram_(lo, hi, bins) {}
  void observe(double x) { histogram_.add(x); }
  const util::Histogram& histogram() const { return histogram_; }

 private:
  util::Histogram histogram_;
};

/// Sample-accumulating instrument (util::Summary backend). Snapshots keep
/// the raw samples so delta() can compute quantiles over just the interval.
class SummaryMetric {
 public:
  void observe(double x) { summary_.add(x); }
  const util::Summary& summary() const { return summary_; }

 private:
  util::Summary summary_;
};

enum class MetricKind { kCounter, kGauge, kHistogram, kSummary };

const char* metric_kind_name(MetricKind kind);

/// Point-in-time view of every registered instrument. Produced by
/// MetricsRegistry::snapshot(); two snapshots subtract via delta().
struct Snapshot {
  struct Sample {
    std::string name;
    std::string labels;  // "key=value key=value", no commas (CSV-safe)
    MetricKind kind = MetricKind::kCounter;
    double value = 0;          // counter total / gauge level
    std::uint64_t count = 0;   // summary & histogram sample count
    double sum = 0, min = 0, max = 0, p50 = 0, p95 = 0, p99 = 0;  // summary
    double lo = 0, hi = 0;                 // histogram range
    std::vector<std::uint64_t> bins;       // histogram bin counts
    std::vector<double> raw;  // summary samples (delta-internal, not exported)
  };

  std::vector<Sample> samples;

  const Sample* find(const std::string& name,
                     const std::string& labels = "") const;
  /// Counter total / gauge level / summary mean; 0 when absent.
  double value(const std::string& name, const std::string& labels = "") const;
  /// Summary sample count (or counter value rounded); 0 when absent.
  std::uint64_t count(const std::string& name,
                      const std::string& labels = "") const;
};

/// Registry of labeled instruments. Register-once, then handle-based access:
/// the returned pointers stay valid for the registry's lifetime (deque
/// storage). Single-threaded by design, like the simulator it observes.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name, const std::string& labels = "");
  Gauge* gauge(const std::string& name, const std::string& labels = "");
  HistogramMetric* histogram(const std::string& name, double lo, double hi,
                             std::size_t bins, const std::string& labels = "");
  SummaryMetric* summary(const std::string& name,
                         const std::string& labels = "");

  std::size_t size() const { return index_.size(); }

  Snapshot snapshot() const;
  /// Interval view: counters, histogram bins and summary windows are
  /// `after - before`; gauges keep their `after` level. Instruments that
  /// appear only in `after` (registered mid-interval) are included whole.
  static Snapshot delta(const Snapshot& before, const Snapshot& after);

 private:
  struct Slot {
    std::string name;
    std::string labels;
    MetricKind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    HistogramMetric* histogram = nullptr;
    SummaryMetric* summary = nullptr;
  };
  Slot* find_slot(const std::string& name, const std::string& labels,
                  MetricKind kind);

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramMetric> histograms_;
  std::deque<SummaryMetric> summaries_;
  std::deque<Slot> slots_;  // registration order (stable export order)
  std::map<std::pair<std::string, std::string>, Slot*> index_;
};

/// The process-wide registry every instrumented component reports into.
/// Benches and tests isolate runs with snapshot()/delta(), not by resetting.
extern thread_local MetricsRegistry g_registry;
inline MetricsRegistry& registry() { return g_registry; }

// --- Exporters -----------------------------------------------------------
// One metric per line. Formats are stable and self-describing enough that
// from_jsonl/from_csv reparse exactly what to_jsonl/to_csv emitted (the
// round-trip the exporter tests pin down). Summary raw samples are not
// exported — only the derived stats.

std::string to_jsonl(const Snapshot& snap);
std::string to_csv(const Snapshot& snap);
Snapshot from_jsonl(const std::string& text);
Snapshot from_csv(const std::string& text);

}  // namespace hpop::telemetry
