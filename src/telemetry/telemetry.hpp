#pragma once

// Umbrella header for the telemetry subsystem: a process-wide
// MetricsRegistry of labeled counters/gauges/histograms/summaries with
// handle-based hot-path access, plus a category-gated flight-recorder
// Tracer stamped with simulated time. See DESIGN.md §7.

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
