#include "metro/workload.hpp"

#include <algorithm>
#include <cmath>

namespace hpop::metro {

namespace {

/// splitmix64-style bijective mixer: deterministic per-rank attributes
/// without consuming Rng draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix_double(double d) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
};

}  // namespace

// --- DiurnalCurve --------------------------------------------------------

DiurnalCurve DiurnalCurve::residential(util::Duration day) {
  DiurnalCurve c;
  c.hourly = {0.30, 0.22, 0.16, 0.12, 0.10, 0.12, 0.20, 0.35,
              0.45, 0.42, 0.40, 0.45, 0.50, 0.48, 0.45, 0.50,
              0.60, 0.72, 0.85, 1.00, 0.95, 0.82, 0.62, 0.42};
  c.day_length = day;
  return c;
}

DiurnalCurve DiurnalCurve::flat(util::Duration day) {
  DiurnalCurve c;
  c.hourly.fill(1.0);
  c.day_length = day;
  return c;
}

double DiurnalCurve::at(util::TimePoint t) const {
  const util::Duration day = day_length > 0 ? day_length : util::kDay;
  util::TimePoint in_day = t % day;
  if (in_day < 0) in_day += day;
  const double hour_f =
      static_cast<double>(in_day) / static_cast<double>(day) * 24.0;
  const std::size_t h0 = static_cast<std::size_t>(hour_f) % 24;
  const std::size_t h1 = (h0 + 1) % 24;
  const double frac = hour_f - std::floor(hour_f);
  return hourly[h0] + (hourly[h1] - hourly[h0]) * frac;
}

double DiurnalCurve::peak() const {
  return *std::max_element(hourly.begin(), hourly.end());
}

// --- ZipfCatalog ---------------------------------------------------------

ZipfCatalog::ZipfCatalog(std::size_t objects, double skew)
    : n_(objects == 0 ? 1 : objects),
      skew_(skew),
      sampler_(n_, skew) {}

std::size_t ZipfCatalog::draw(util::Rng& rng) const {
  return static_cast<std::size_t>(sampler_.sample(rng));
}

std::string ZipfCatalog::url_of(std::size_t rank) const {
  return "/o/" + std::to_string(rank);
}

std::string ZipfCatalog::page_of(std::size_t rank) const {
  return "/p/" + std::to_string(rank);
}

std::size_t ZipfCatalog::bytes_of(std::size_t rank) const {
  // 4 KiB floor + a hash-spread body up to ~100 KiB. Popularity and size
  // are independent, as in web workloads.
  return 4096 + static_cast<std::size_t>(mix64(rank) % (96 * 1024));
}

// --- EventSpec / EventPlan ----------------------------------------------

bool EventSpec::covers(const MetroTopology& topo, std::size_t home) const {
  return scope == Scope::kDslam ? topo.dslam_of_home(home) == target
                                : topo.pop_of_home(home) == target;
}

EventPlan EventPlan::generate(const MetroTopology& topo,
                              const ZipfCatalog& catalog,
                              util::TimePoint horizon,
                              std::size_t flash_crowds, std::size_t outages,
                              util::Rng& rng, std::size_t partitions) {
  EventPlan plan;
  plan.events.reserve(flash_crowds + outages + partitions);
  const auto draw_common = [&](EventSpec& e) {
    e.scope = rng.bernoulli(0.5) ? EventSpec::Scope::kDslam
                                 : EventSpec::Scope::kPop;
    const std::size_t subtrees = e.scope == EventSpec::Scope::kDslam
                                     ? topo.dslams.size()
                                     : topo.pops.size();
    e.target = static_cast<std::size_t>(
        rng.uniform_index(subtrees == 0 ? 1 : subtrees));
    e.start = static_cast<util::TimePoint>(
        rng.uniform(0.15, 0.85) * static_cast<double>(horizon));
    e.duration = static_cast<util::Duration>(
        rng.uniform(0.05, 0.15) * static_cast<double>(horizon));
  };
  for (std::size_t i = 0; i < flash_crowds; ++i) {
    EventSpec e;
    e.kind = EventSpec::Kind::kFlashCrowd;
    draw_common(e);
    e.intensity = rng.uniform(4.0, 12.0);
    e.hot_object = catalog.draw(rng);
    plan.events.push_back(e);
  }
  for (std::size_t i = 0; i < outages; ++i) {
    EventSpec e;
    e.kind = EventSpec::Kind::kOutage;
    draw_common(e);
    plan.events.push_back(e);
  }
  // Partitions draw LAST so plans generated with partitions == 0 consume
  // exactly the pre-existing draw sequence.
  for (std::size_t i = 0; i < partitions; ++i) {
    EventSpec e;
    e.kind = EventSpec::Kind::kPartition;
    draw_common(e);
    plan.events.push_back(e);
  }
  return plan;
}

fault::FaultPlan EventPlan::to_fault_plan(const MetroTopology& topo) const {
  fault::FaultPlan plan;
  for (const EventSpec& e : events) {
    if (e.kind == EventSpec::Kind::kOutage) {
      net::Link* uplink = e.scope == EventSpec::Scope::kDslam
                              ? topo.dslam_uplinks[e.target]
                              : topo.pop_uplinks[e.target];
      plan.link_down(uplink, e.start, e.duration);
    } else if (e.kind == EventSpec::Kind::kPartition) {
      // Isolate the subtree's homes from everyone outside it (empty far
      // side = complement cut). Intra-subtree traffic keeps flowing,
      // which is exactly what distinguishes a partition from an outage.
      auto [lo, hi] = e.scope == EventSpec::Scope::kDslam
                          ? topo.homes_of_dslam(e.target)
                          : topo.homes_of_pop(e.target);
      std::vector<net::Node*> side;
      side.reserve(hi - lo);
      for (std::size_t h = lo; h < hi; ++h) side.push_back(topo.homes[h]);
      plan.partition(std::move(side), {}, e.start, e.duration);
    }
  }
  return plan;
}

double EventPlan::crowd_multiplier(const MetroTopology& topo,
                                   std::size_t home,
                                   util::TimePoint t) const {
  double m = 1.0;
  for (const EventSpec& e : events) {
    if (e.kind != EventSpec::Kind::kFlashCrowd) continue;
    if (e.active_at(t) && e.covers(topo, home)) m *= e.intensity;
  }
  return m;
}

const EventSpec* EventPlan::active_crowd(const MetroTopology& topo,
                                         std::size_t home,
                                         util::TimePoint t) const {
  for (const EventSpec& e : events) {
    if (e.kind != EventSpec::Kind::kFlashCrowd) continue;
    if (e.active_at(t) && e.covers(topo, home)) return &e;
  }
  return nullptr;
}

std::size_t EventPlan::flash_crowd_count() const {
  std::size_t n = 0;
  for (const EventSpec& e : events) {
    if (e.kind == EventSpec::Kind::kFlashCrowd) ++n;
  }
  return n;
}

std::size_t EventPlan::outage_count() const {
  std::size_t n = 0;
  for (const EventSpec& e : events) {
    if (e.kind == EventSpec::Kind::kOutage) ++n;
  }
  return n;
}

std::size_t EventPlan::partition_count() const {
  std::size_t n = 0;
  for (const EventSpec& e : events) {
    if (e.kind == EventSpec::Kind::kPartition) ++n;
  }
  return n;
}

double EventPlan::max_crowd_intensity() const {
  double m = 1.0;
  for (const EventSpec& e : events) {
    if (e.kind == EventSpec::Kind::kFlashCrowd) m = std::max(m, e.intensity);
  }
  return m;
}

std::uint64_t EventPlan::fingerprint() const {
  Fnv fnv;
  fnv.mix(events.size());
  for (const EventSpec& e : events) {
    fnv.mix(static_cast<std::uint64_t>(e.kind));
    fnv.mix(static_cast<std::uint64_t>(e.scope));
    fnv.mix(e.target);
    fnv.mix(static_cast<std::uint64_t>(e.start));
    fnv.mix(static_cast<std::uint64_t>(e.duration));
    fnv.mix_double(e.intensity);
    fnv.mix(e.hot_object);
    fnv.mix_double(e.hot_fraction);
  }
  return fnv.h;
}

// --- WorkloadModel -------------------------------------------------------

WorkloadModel::WorkloadModel(DiurnalCurve curve, ZipfCatalog catalog,
                             EventPlan plan, double base_rate_per_home)
    : curve_(curve),
      catalog_(std::move(catalog)),
      plan_(std::move(plan)),
      base_rate_(base_rate_per_home) {}

double WorkloadModel::rate_at(const MetroTopology& topo, std::size_t home,
                              util::TimePoint t) const {
  return base_rate_ * curve_.at(t) * plan_.crowd_multiplier(topo, home, t);
}

double WorkloadModel::max_rate() const {
  return base_rate_ * curve_.peak() * plan_.max_crowd_intensity();
}

util::TimePoint WorkloadModel::next_arrival(const MetroTopology& topo,
                                            std::size_t home,
                                            util::TimePoint after,
                                            util::Rng& rng) const {
  // Lewis–Shedler thinning: candidate arrivals at the envelope rate,
  // accepted with probability rate(t)/envelope. Bounded so a degenerate
  // curve (all zeros) cannot spin forever.
  const double envelope = max_rate();
  if (envelope <= 0) return after + 3650 * util::kDay;
  util::TimePoint t = after;
  for (int i = 0; i < 100'000; ++i) {
    t += std::max<util::Duration>(
        1, util::seconds(rng.exponential(1.0 / envelope)));
    if (rng.uniform() * envelope <= rate_at(topo, home, t)) return t;
  }
  return t;
}

std::size_t WorkloadModel::draw_object(const MetroTopology& topo,
                                       std::size_t home, util::TimePoint t,
                                       util::Rng& rng) const {
  if (const EventSpec* crowd = plan_.active_crowd(topo, home, t)) {
    if (rng.uniform() < crowd->hot_fraction) return crowd->hot_object;
  }
  return catalog_.draw(rng);
}

}  // namespace hpop::metro
