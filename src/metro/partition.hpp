#pragma once

#include <cstdint>
#include <vector>

#include "metro/topology.hpp"
#include "util/time.hpp"

namespace hpop::metro {

/// Logical shard plan for the parallel engine: the metro tree cut along
/// its natural seams. Partition p (p < pop_count) owns PoP p's entire
/// subtree — the PoP router, its DSLAMs, their homes, and every link
/// strictly inside that subtree. The last partition (`core_partition`)
/// owns the core router, the origins, and the core↔origin links. The only
/// links crossing the cut are the pop uplinks, which carry the largest
/// propagation delays in the tree — that minimum delay is the engine's
/// conservative lookahead.
///
/// The plan is a function of the topology alone, never of the worker
/// count: an engine with W workers multiplexes the same partitions onto W
/// threads, so the event structure (and therefore telemetry) is identical
/// for every W.
struct ShardPlan {
  std::size_t partitions = 0;
  std::size_t core_partition = 0;
  /// Minimum one-way delay over all boundary (pop uplink) links: events a
  /// shard schedules at or after the epoch floor T cannot affect another
  /// shard before T + lookahead.
  util::Duration lookahead = 0;

  std::size_t of_home(const MetroTopology& topo, std::size_t h) const {
    return topo.pop_of_home(h);
  }
  std::size_t of_dslam(const MetroTopology& topo, std::size_t d) const {
    return topo.pop_of_dslam(d);
  }
  std::size_t of_pop(std::size_t p) const { return p; }

  /// FNV-1a per partition over (partition id, member node ids, boundary
  /// link params), so shard-plan drift shows up in sweep fingerprints the
  /// same way topology drift does.
  std::vector<std::uint64_t> fingerprints;
};

/// Plans one partition per PoP subtree plus one for the core+origins.
/// Fails loudly (assert) on a topology with no pops.
ShardPlan plan_shards(const MetroTopology& topo);

}  // namespace hpop::metro
