#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hpop/dir_cluster.hpp"
#include "http/client.hpp"
#include "http/server.hpp"
#include "metro/topology.hpp"
#include "metro/workload.hpp"
#include "nocdn/loader.hpp"
#include "nocdn/origin.hpp"
#include "nocdn/peer.hpp"
#include "transport/mux.hpp"
#include "util/rng.hpp"

namespace hpop::metro {

/// Knobs for the metro traffic driver. Roles are disjoint — one
/// TransportMux per host — so the driver lays homes out as
/// [active browsers | idle | peers (spread) | attic pairs (tail)] and
/// clamps the counts to fit the built topology.
struct MetroDriverConfig {
  std::string provider = "metro-news";
  /// Homes that browse (generate page loads). The rest are dark or hold
  /// one of the other roles.
  std::size_t active_homes = 1000;
  /// Homes recruited as NoCDN peer proxies ("well-connected users").
  std::size_t peers = 16;
  /// Home pairs running attic-style record sync (PUT then read-back GET of
  /// a record between two homes, the §IV-A in-home storage traffic shape).
  std::size_t attic_pairs = 8;
  util::Duration attic_interval = 5 * util::kSecond;
  std::size_t attic_record_bytes = 2048;
  /// No new arrivals are scheduled at or past the horizon; in-flight page
  /// loads are allowed to finish (run the sim a little longer).
  util::TimePoint horizon = 60 * util::kSecond;
  util::Duration usage_upload_interval = 10 * util::kSecond;

  /// --- Sharded HPoP directory (off while dir_shards == 0) ---
  /// Shard hosts are reserved from the layout between the peer region and
  /// the attic tail. The first dir_registered_homes active homes register
  /// their household ("h<id>") against the cluster and auto-renew; the
  /// LAST dir_silent_homes of those instead register once with a short
  /// lease and go silent — the stale-advertisement probes.
  std::size_t dir_shards = 0;
  std::size_t dir_replication = 2;
  util::Duration dir_lease = 15 * util::kSecond;
  util::Duration dir_anti_entropy = 5 * util::kSecond;
  std::size_t dir_registered_homes = 256;  // clamped to active_homes
  std::size_t dir_silent_homes = 0;
  std::uint32_t dir_silent_lease_s = 2;
  /// Lookups before this settle-in point are issued but not counted, so
  /// the success-rate gate measures steady state, not the registration
  /// storm racing the first arrivals.
  util::TimePoint dir_warmup = 5 * util::kSecond;
  /// Probability an arrival also probes a random silent household (stale
  /// detection); renewing households are looked up on every arrival.
  double dir_silent_probe_p = 0.25;
};

/// Wires the NoCDN service stack onto a built metro and drives it with a
/// WorkloadModel: the origin on topo.origins[0], peer proxies on a spread
/// of homes, per-home Poisson page-load arrivals (diurnal + flash-crowd
/// modulated), and background attic record sync. Outages are NOT executed
/// here — compose them via model.plan().to_fault_plan(topo) and a
/// ChaosController so chaos stays a separate concern.
///
/// Deterministic: one Rng, consumed in simulator event order. All stats
/// come from per-object counters (never the thread-local telemetry
/// registry), so reports are safe for byte-identity gates.
class MetroDriver {
 public:
  MetroDriver(MetroTopology& topo, WorkloadModel model,
              MetroDriverConfig config, util::Rng rng);
  ~MetroDriver();
  MetroDriver(const MetroDriver&) = delete;
  MetroDriver& operator=(const MetroDriver&) = delete;

  /// Builds the service stack and schedules the first arrivals. Call once;
  /// then run the simulator.
  void start();

  struct Stats {
    std::uint64_t arrivals = 0;
    std::uint64_t loads_ok = 0;
    std::uint64_t loads_failed = 0;
    std::uint64_t bytes_from_peers = 0;
    std::uint64_t bytes_from_origin = 0;
    double load_time_s_total = 0.0;
    std::uint64_t attic_puts = 0;
    std::uint64_t attic_gets = 0;
    std::uint64_t attic_failures = 0;
    // Directory lookups counted after dir_warmup.
    std::uint64_t dir_lookups = 0;
    std::uint64_t dir_ok = 0;
    std::uint64_t dir_busy = 0;
    std::uint64_t dir_failed = 0;  // unreachable or (wrongly) not_found
    std::uint64_t dir_silent_probes = 0;
    // Lookups of a silent household answered found PAST its lease expiry
    // (+1 s grace). The stale-advertisement invariant: must stay 0.
    std::uint64_t dir_stale_served = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Share of content bytes served by peers instead of the origin — the
  /// NoCDN offload the paper's economics rest on.
  double offload() const;
  /// Peer-proxy cache hit rate, summed over all peers.
  double peer_hit_rate() const;
  /// One deterministic summary line (no timings, no addresses-of).
  std::string report() const;

  nocdn::OriginServer& origin() { return *origin_server_; }
  const MetroDriverConfig& config() const { return config_; }

  /// Null while the directory is disabled (dir_shards == 0).
  core::DirectoryCluster* directory() { return cluster_.get(); }
  const core::DirectoryCluster* directory() const { return cluster_.get(); }
  /// The household registrations the driver keeps alive (renewing first,
  /// then the silent ones).
  const std::vector<std::unique_ptr<core::ShardedDirectoryRegistration>>&
  dir_registrations() const {
    return dir_regs_;
  }
  std::size_t dir_renewing() const { return dir_renewing_; }
  /// Post-warmup lookup success rate (ok / counted; 1.0 when none).
  double dir_success_rate() const;
  /// p99 of post-warmup lookup completion times, seconds (0 when none).
  double dir_lookup_p99_s() const;
  /// Sum of every per-home lookup client's counters (includes warmup
  /// traffic) — the failure breakdown behind dir_failed: not_found vs
  /// unreachable, plus failover and timeout volume.
  core::ShardedDirectoryClient::Stats dir_client_totals() const;

 private:
  struct PeerSlot {
    std::unique_ptr<transport::TransportMux> mux;
    std::unique_ptr<nocdn::PeerProxy> proxy;
  };
  struct ClientSlot {
    std::unique_ptr<transport::TransportMux> mux;
    std::unique_ptr<http::HttpClient> http;
    std::unique_ptr<nocdn::LoaderClient> loader;
    std::unique_ptr<core::ShardedDirectoryClient> dir;
  };
  struct AtticPair {
    std::size_t store_home = 0;
    std::size_t client_home = 0;
    std::unique_ptr<transport::TransportMux> store_mux;
    std::unique_ptr<http::HttpServer> store;
    std::unique_ptr<transport::TransportMux> client_mux;
    std::unique_ptr<http::HttpClient> client;
    std::uint64_t seq = 0;
  };

  std::size_t peer_home(std::size_t i) const;
  ClientSlot& ensure_client(std::size_t home);
  void schedule_next(std::size_t home);
  void on_arrival(std::size_t home);
  void attic_tick(std::size_t pair);
  void start_directory();
  void dir_probe(ClientSlot& slot);

  MetroTopology& topo_;
  WorkloadModel model_;
  MetroDriverConfig config_;
  util::Rng rng_;
  sim::Simulator& sim_;

  std::unique_ptr<transport::TransportMux> origin_mux_;
  std::unique_ptr<nocdn::OriginServer> origin_server_;
  std::vector<PeerSlot> peers_;
  std::vector<ClientSlot> clients_;  // [home id], lazily populated
  std::vector<AtticPair> attic_;
  std::size_t peer_region_begin_ = 0;
  std::size_t peer_stride_ = 1;

  std::unique_ptr<core::DirectoryCluster> cluster_;
  std::vector<std::unique_ptr<core::ShardedDirectoryRegistration>> dir_regs_;
  std::size_t dir_region_begin_ = 0;  // first shard-host home index
  std::size_t dir_renewing_ = 0;      // dir_regs_[0, dir_renewing_) renew
  std::vector<util::Duration> dir_latencies_;  // post-warmup completions

  Stats stats_;
};

}  // namespace hpop::metro
