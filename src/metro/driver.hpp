#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "http/client.hpp"
#include "http/server.hpp"
#include "metro/topology.hpp"
#include "metro/workload.hpp"
#include "nocdn/loader.hpp"
#include "nocdn/origin.hpp"
#include "nocdn/peer.hpp"
#include "transport/mux.hpp"
#include "util/rng.hpp"

namespace hpop::metro {

/// Knobs for the metro traffic driver. Roles are disjoint — one
/// TransportMux per host — so the driver lays homes out as
/// [active browsers | idle | peers (spread) | attic pairs (tail)] and
/// clamps the counts to fit the built topology.
struct MetroDriverConfig {
  std::string provider = "metro-news";
  /// Homes that browse (generate page loads). The rest are dark or hold
  /// one of the other roles.
  std::size_t active_homes = 1000;
  /// Homes recruited as NoCDN peer proxies ("well-connected users").
  std::size_t peers = 16;
  /// Home pairs running attic-style record sync (PUT then read-back GET of
  /// a record between two homes, the §IV-A in-home storage traffic shape).
  std::size_t attic_pairs = 8;
  util::Duration attic_interval = 5 * util::kSecond;
  std::size_t attic_record_bytes = 2048;
  /// No new arrivals are scheduled at or past the horizon; in-flight page
  /// loads are allowed to finish (run the sim a little longer).
  util::TimePoint horizon = 60 * util::kSecond;
  util::Duration usage_upload_interval = 10 * util::kSecond;
};

/// Wires the NoCDN service stack onto a built metro and drives it with a
/// WorkloadModel: the origin on topo.origins[0], peer proxies on a spread
/// of homes, per-home Poisson page-load arrivals (diurnal + flash-crowd
/// modulated), and background attic record sync. Outages are NOT executed
/// here — compose them via model.plan().to_fault_plan(topo) and a
/// ChaosController so chaos stays a separate concern.
///
/// Deterministic: one Rng, consumed in simulator event order. All stats
/// come from per-object counters (never the thread-local telemetry
/// registry), so reports are safe for byte-identity gates.
class MetroDriver {
 public:
  MetroDriver(MetroTopology& topo, WorkloadModel model,
              MetroDriverConfig config, util::Rng rng);
  ~MetroDriver();
  MetroDriver(const MetroDriver&) = delete;
  MetroDriver& operator=(const MetroDriver&) = delete;

  /// Builds the service stack and schedules the first arrivals. Call once;
  /// then run the simulator.
  void start();

  struct Stats {
    std::uint64_t arrivals = 0;
    std::uint64_t loads_ok = 0;
    std::uint64_t loads_failed = 0;
    std::uint64_t bytes_from_peers = 0;
    std::uint64_t bytes_from_origin = 0;
    double load_time_s_total = 0.0;
    std::uint64_t attic_puts = 0;
    std::uint64_t attic_gets = 0;
    std::uint64_t attic_failures = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Share of content bytes served by peers instead of the origin — the
  /// NoCDN offload the paper's economics rest on.
  double offload() const;
  /// Peer-proxy cache hit rate, summed over all peers.
  double peer_hit_rate() const;
  /// One deterministic summary line (no timings, no addresses-of).
  std::string report() const;

  nocdn::OriginServer& origin() { return *origin_server_; }
  const MetroDriverConfig& config() const { return config_; }

 private:
  struct PeerSlot {
    std::unique_ptr<transport::TransportMux> mux;
    std::unique_ptr<nocdn::PeerProxy> proxy;
  };
  struct ClientSlot {
    std::unique_ptr<transport::TransportMux> mux;
    std::unique_ptr<http::HttpClient> http;
    std::unique_ptr<nocdn::LoaderClient> loader;
  };
  struct AtticPair {
    std::size_t store_home = 0;
    std::size_t client_home = 0;
    std::unique_ptr<transport::TransportMux> store_mux;
    std::unique_ptr<http::HttpServer> store;
    std::unique_ptr<transport::TransportMux> client_mux;
    std::unique_ptr<http::HttpClient> client;
    std::uint64_t seq = 0;
  };

  std::size_t peer_home(std::size_t i) const;
  ClientSlot& ensure_client(std::size_t home);
  void schedule_next(std::size_t home);
  void on_arrival(std::size_t home);
  void attic_tick(std::size_t pair);

  MetroTopology& topo_;
  WorkloadModel model_;
  MetroDriverConfig config_;
  util::Rng rng_;
  sim::Simulator& sim_;

  std::unique_ptr<transport::TransportMux> origin_mux_;
  std::unique_ptr<nocdn::OriginServer> origin_server_;
  std::vector<PeerSlot> peers_;
  std::vector<ClientSlot> clients_;  // [home id], lazily populated
  std::vector<AtticPair> attic_;
  std::size_t peer_region_begin_ = 0;
  std::size_t peer_stride_ = 1;

  Stats stats_;
};

}  // namespace hpop::metro
