#include "metro/topology.hpp"

#include <algorithm>
#include <string>

namespace hpop::metro {

namespace {

constexpr std::uint32_t kMetroBase = (40u << 24);  // 40.0.0.0

std::uint32_t pow2ceil(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

int prefix_bits(std::uint32_t block) {
  int bits = 32;
  while (block > 1) {
    block >>= 1;
    --bits;
  }
  return bits;
}

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix_double(double d) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    __builtin_memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
};

}  // namespace

std::pair<std::size_t, std::size_t> MetroTopology::homes_of_dslam(
    std::size_t d) const {
  const std::size_t first = d * params.homes_per_dslam;
  const std::size_t last =
      std::min(first + params.homes_per_dslam, homes.size());
  return {first, last};
}

std::pair<std::size_t, std::size_t> MetroTopology::homes_of_pop(
    std::size_t p) const {
  const std::size_t first_dslam = p * params.dslams_per_pop;
  const std::size_t last_dslam =
      std::min(first_dslam + params.dslams_per_pop, dslams.size());
  return {first_dslam * params.homes_per_dslam,
          std::min(last_dslam * params.homes_per_dslam, homes.size())};
}

std::uint32_t MetroTopology::dslam_base(std::size_t d) const {
  // Pop-strided, not dense: DSLAM d sits at slot (d mod dslams_per_pop)
  // inside its pop's pow2-aligned block. With a non-power-of-two fanout a
  // dense layout would leak a pop's later DSLAMs into the next pop's
  // aggregated prefix and the core would misroute the whole subtree.
  const std::size_t p = pop_of_dslam(d);
  const std::size_t slot = d - p * params.dslams_per_pop;
  return metro_base.value + static_cast<std::uint32_t>(p) * pop_block +
         static_cast<std::uint32_t>(slot) * dslam_block;
}

net::IpAddr MetroTopology::home_address(std::size_t h) const {
  const std::size_t d = dslam_of_home(h);
  const std::size_t i = h - d * params.homes_per_dslam;
  return net::IpAddr(dslam_base(d) + static_cast<std::uint32_t>(i));
}

net::Prefix MetroTopology::dslam_prefix(std::size_t d) const {
  return {net::IpAddr(dslam_base(d)), prefix_bits(dslam_block)};
}

net::Prefix MetroTopology::pop_prefix(std::size_t p) const {
  return {net::IpAddr(metro_base.value +
                      static_cast<std::uint32_t>(p) * pop_block),
          prefix_bits(pop_block)};
}

std::uint64_t MetroTopology::fingerprint() const {
  Fnv fnv;
  fnv.mix(homes.size());
  fnv.mix(dslams.size());
  fnv.mix(pops.size());
  fnv.mix(origins.size());
  fnv.mix(metro_base.value);
  fnv.mix(dslam_block);
  fnv.mix(pop_block);
  for (std::size_t h = 0; h < homes.size(); ++h) {
    fnv.mix(homes[h]->address().value);
  }
  auto mix_link = [&fnv](const net::Link* l) {
    fnv.mix_double(l->params().rate);
    fnv.mix(static_cast<std::uint64_t>(l->params().delay));
    fnv.mix(l->params().queue_bytes);
  };
  for (const net::Link* l : access_links) mix_link(l);
  for (const net::Link* l : dslam_uplinks) mix_link(l);
  for (const net::Link* l : pop_uplinks) mix_link(l);
  for (const net::Link* l : origin_links) mix_link(l);
  for (const net::Host* o : origins) fnv.mix(o->address().value);
  return fnv.h;
}

MetroTopology build_metro(net::Network& net, const MetroParams& params,
                          util::Rng& rng) {
  MetroTopology topo;
  topo.params = params;
  topo.metro_base = net::IpAddr(kMetroBase);
  topo.dslam_block =
      pow2ceil(static_cast<std::uint32_t>(params.homes_per_dslam));
  topo.pop_block = topo.dslam_block *
                   pow2ceil(static_cast<std::uint32_t>(params.dslams_per_pop));

  const std::size_t n_dslams = params.dslam_count();
  const std::size_t n_pops = params.pop_count();
  topo.homes.reserve(params.homes);
  topo.dslams.reserve(n_dslams);
  topo.pops.reserve(n_pops);
  topo.access_links.reserve(params.homes);
  topo.dslam_uplinks.reserve(n_dslams);
  topo.pop_uplinks.reserve(n_pops);

  // Core and PoP/DSLAM skeleton, top-down so uplink interfaces exist when
  // the downstream tier routes toward them.
  topo.core = &net.add_router("core");
  for (std::size_t p = 0; p < n_pops; ++p) {
    net::Router& pop = net.add_router("pop" + std::to_string(p));
    topo.pops.push_back(&pop);
    net::Link& up = net.connect(pop, net::IpAddr{}, *topo.core, net::IpAddr{},
                                params.pop_uplink.link());
    topo.pop_uplinks.push_back(&up);
    // Core routes the PoP's whole aggregated block down one interface.
    topo.core->add_route(topo.pop_prefix(p), &up.end_b());
    // PoP default: everything not in a child DSLAM block goes up.
    pop.set_default_route(&up.end_a());
  }
  for (std::size_t d = 0; d < n_dslams; ++d) {
    net::Router& dslam = net.add_router("ds" + std::to_string(d));
    topo.dslams.push_back(&dslam);
    net::Router& pop = *topo.pops[topo.pop_of_dslam(d)];
    net::Link& up = net.connect(dslam, net::IpAddr{}, pop, net::IpAddr{},
                                params.dslam_uplink.link());
    topo.dslam_uplinks.push_back(&up);
    pop.add_route(topo.dslam_prefix(d), &up.end_b());
    dslam.set_default_route(&up.end_a());
  }

  // Homes: a publicly addressed host per home, one /32 on its DSLAM.
  std::string name;
  for (std::size_t h = 0; h < params.homes; ++h) {
    name.assign("h");
    name += std::to_string(h);
    const net::IpAddr addr = topo.home_address(h);
    net::Host& home = net.add_host(name, addr);
    topo.homes.push_back(&home);
    net::Router& dslam = *topo.dslams[topo.dslam_of_home(h)];
    net::LinkParams access = params.access.link();
    if (params.access_rate_jitter > 0) {
      access.rate *= rng.uniform(1.0 - params.access_rate_jitter,
                                 1.0 + params.access_rate_jitter);
    }
    net::Link& lm = net.connect(home, addr, dslam, net::IpAddr{}, access);
    topo.access_links.push_back(&lm);
    dslam.add_route({addr, 32}, &lm.end_b());
    home.set_default_route(&lm.end_a());
  }

  // Origins attach to the core with addresses from the public pool.
  topo.origins.reserve(params.origins);
  topo.origin_links.reserve(params.origins);
  for (std::size_t o = 0; o < params.origins; ++o) {
    const net::IpAddr addr = net.next_public_address();
    net::Host& origin = net.add_host("origin" + std::to_string(o), addr);
    topo.origins.push_back(&origin);
    net::Link& l = net.connect(origin, addr, *topo.core, net::IpAddr{},
                               params.origin_path.link());
    topo.origin_links.push_back(&l);
    topo.core->add_route({addr, 32}, &l.end_b());
    origin.set_default_route(&l.end_a());
  }

  return topo;
}

}  // namespace hpop::metro
