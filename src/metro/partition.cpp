#include "metro/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

namespace hpop::metro {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::uint64_t fnv_value(std::uint64_t h, const T& v) {
  return fnv1a(h, &v, sizeof(v));
}

std::uint64_t hash_link_params(std::uint64_t h, const net::Link* link) {
  const net::LinkParams& lp = link->params();
  h = fnv_value(h, lp.rate);
  h = fnv_value(h, lp.delay);
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(lp.loss));
  std::memcpy(&bits, &lp.loss, sizeof(bits));
  h = fnv_value(h, bits);
  h = fnv_value(h, static_cast<std::uint64_t>(lp.queue_bytes));
  return h;
}

}  // namespace

ShardPlan plan_shards(const MetroTopology& topo) {
  const std::size_t pops = topo.pops.size();
  assert(pops > 0 && "plan_shards needs a built metro");
  ShardPlan plan;
  plan.partitions = pops + 1;
  plan.core_partition = pops;

  plan.lookahead = std::numeric_limits<util::Duration>::max();
  for (const net::Link* up : topo.pop_uplinks) {
    plan.lookahead = std::min(plan.lookahead, up->params().delay);
  }

  plan.fingerprints.resize(plan.partitions);
  for (std::size_t p = 0; p < pops; ++p) {
    std::uint64_t h = 14695981039346656037ull;
    h = fnv_value(h, static_cast<std::uint64_t>(p));
    const auto [first, last] = topo.homes_of_pop(p);
    h = fnv_value(h, static_cast<std::uint64_t>(first));
    h = fnv_value(h, static_cast<std::uint64_t>(last));
    for (std::size_t hh = first; hh < last; ++hh) {
      h = fnv_value(h, topo.home_address(hh).value);
    }
    h = hash_link_params(h, topo.pop_uplinks[p]);
    plan.fingerprints[p] = h;
  }
  std::uint64_t h = 14695981039346656037ull;
  h = fnv_value(h, static_cast<std::uint64_t>(plan.core_partition));
  h = fnv_value(h, static_cast<std::uint64_t>(topo.origins.size()));
  for (const net::Link* ol : topo.origin_links) h = hash_link_params(h, ol);
  plan.fingerprints[plan.core_partition] = h;
  return plan;
}

}  // namespace hpop::metro
