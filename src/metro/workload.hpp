#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "metro/topology.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hpop::metro {

/// A 24-point diurnal load profile. `day_length` scales the whole day so
/// experiments can run a compressed day (e.g. a 60-second "day") without
/// touching the shape; evaluation horizons longer than one day wrap.
/// Values are relative request-rate multipliers; at() interpolates
/// piecewise-linearly between hour points.
struct DiurnalCurve {
  std::array<double, 24> hourly{};
  util::Duration day_length = util::kDay;

  /// Residential profile: quiet overnight, a morning shoulder, and the
  /// evening peak the paper's CCZ traces show (same shape the iathome
  /// browsing model uses).
  static DiurnalCurve residential(util::Duration day = util::kDay);
  static DiurnalCurve flat(util::Duration day = util::kDay);

  double at(util::TimePoint t) const;
  double peak() const;
};

/// Zipf-popular content catalog: rank 0 is the most popular object. Sizes
/// are a deterministic function of rank (hash-derived, heavy-ish spread)
/// so a catalog is fully reproducible from (objects, skew) with no draws.
class ZipfCatalog {
 public:
  ZipfCatalog(std::size_t objects, double skew);

  std::size_t objects() const { return n_; }
  double skew() const { return skew_; }

  /// Zipf draw of a rank in [0, objects).
  std::size_t draw(util::Rng& rng) const;

  /// Site-relative URL and page path for a rank.
  std::string url_of(std::size_t rank) const;
  std::string page_of(std::size_t rank) const;
  /// Deterministic object size in [4 KiB, 100 KiB).
  std::size_t bytes_of(std::size_t rank) const;

 private:
  std::size_t n_;
  double skew_;
  util::ZipfSampler sampler_;
};

/// One regionally correlated event, scoped to an access-tree subtree: a
/// flash crowd (every home under the subtree multiplies its request rate
/// and concentrates on one hot object), an outage (the subtree's uplink
/// goes admin-down — the whole region drops off the metro), or a partition
/// (the subtree's homes stay "up" but no packet crosses to or from the
/// rest of the metro — a routing gray failure rather than a dead link).
struct EventSpec {
  enum class Kind { kFlashCrowd, kOutage, kPartition };
  enum class Scope { kDslam, kPop };

  Kind kind = Kind::kFlashCrowd;
  Scope scope = Scope::kDslam;
  std::size_t target = 0;  // dslam or pop index
  util::TimePoint start = 0;
  util::Duration duration = 0;
  double intensity = 8.0;       // flash crowd: rate multiplier
  std::size_t hot_object = 0;   // flash crowd: the object everyone wants
  double hot_fraction = 0.75;   // flash crowd: share of draws that are hot

  bool covers(const MetroTopology& topo, std::size_t home) const;
  bool active_at(util::TimePoint t) const {
    return t >= start && t < start + duration;
  }
};

/// A reproducible schedule of correlated events. Plain data: generate it
/// from a seeded Rng (or build it by hand), hand the outages to the
/// ChaosController via to_fault_plan(), and let the workload model consult
/// the flash crowds.
struct EventPlan {
  std::vector<EventSpec> events;

  /// Draws `flash_crowds` + `outages` + `partitions` events over
  /// [0, horizon): targets uniform over subtrees (dslam- or pop-scoped,
  /// 50/50), starts in the middle 70% of the horizon, durations 5–15% of
  /// it, crowd intensities uniform in [4, 12], hot objects Zipf-drawn from
  /// `catalog`. The partitions arg is defaulted so existing call sites
  /// keep their draw sequence (and thus their byte-identical telemetry).
  static EventPlan generate(const MetroTopology& topo,
                            const ZipfCatalog& catalog,
                            util::TimePoint horizon, std::size_t flash_crowds,
                            std::size_t outages, util::Rng& rng,
                            std::size_t partitions = 0);

  /// Maps every outage to a link_down of the scoped subtree's uplink and
  /// every partition to a bidirectional cut isolating the subtree's homes.
  /// Flash crowds do not appear here — they are workload, not faults.
  fault::FaultPlan to_fault_plan(const MetroTopology& topo) const;

  /// The rate multiplier crowds impose on `home` at `t` (1.0 outside any
  /// crowd; overlapping crowds multiply).
  double crowd_multiplier(const MetroTopology& topo, std::size_t home,
                          util::TimePoint t) const;
  /// The crowd covering `home` at `t` (first match), or nullptr.
  const EventSpec* active_crowd(const MetroTopology& topo, std::size_t home,
                                util::TimePoint t) const;

  std::size_t flash_crowd_count() const;
  std::size_t outage_count() const;
  std::size_t partition_count() const;
  /// Highest crowd intensity in the plan (>= 1.0; used for thinning).
  double max_crowd_intensity() const;
  /// FNV-1a over every field of every event (determinism tests).
  std::uint64_t fingerprint() const;
};

/// The per-home arrival process: a base Poisson rate modulated by the
/// diurnal curve and any flash crowd covering the home, sampled by
/// thinning against the global maximum rate so arrival sequences stay
/// deterministic per (seed, home) regardless of what other homes do.
class WorkloadModel {
 public:
  WorkloadModel(DiurnalCurve curve, ZipfCatalog catalog, EventPlan plan,
                double base_rate_per_home);

  const DiurnalCurve& curve() const { return curve_; }
  const ZipfCatalog& catalog() const { return catalog_; }
  const EventPlan& plan() const { return plan_; }

  /// Requests/sec for `home` at `t`.
  double rate_at(const MetroTopology& topo, std::size_t home,
                 util::TimePoint t) const;
  /// The thinning envelope: base * curve peak * max crowd intensity.
  double max_rate() const;

  /// Next arrival strictly after `after` (absolute time), by thinning.
  util::TimePoint next_arrival(const MetroTopology& topo, std::size_t home,
                               util::TimePoint after, util::Rng& rng) const;

  /// The object rank `home` requests at `t`: the covering crowd's hot
  /// object with its hot_fraction, a plain Zipf draw otherwise.
  std::size_t draw_object(const MetroTopology& topo, std::size_t home,
                          util::TimePoint t, util::Rng& rng) const;

 private:
  DiurnalCurve curve_;
  ZipfCatalog catalog_;
  EventPlan plan_;
  double base_rate_;
};

}  // namespace hpop::metro
