#include "metro/driver.hpp"

#include <algorithm>
#include <cstdio>

namespace hpop::metro {

MetroDriver::MetroDriver(MetroTopology& topo, WorkloadModel model,
                         MetroDriverConfig config, util::Rng rng)
    : topo_(topo),
      model_(std::move(model)),
      config_(std::move(config)),
      rng_(rng),
      sim_(topo.homes.empty() ? topo.origins.at(0)->simulator()
                              : topo.homes.front()->simulator()) {
  // Resolve the role layout against the actual home count. Each host gets
  // at most one TransportMux, so the roles must not overlap.
  const std::size_t homes = topo_.homes.size();
  config_.peers = std::clamp<std::size_t>(config_.peers, 1,
                                          std::max<std::size_t>(1, homes / 2));
  const std::size_t after_peers =
      homes > config_.peers ? homes - config_.peers : 0;
  config_.attic_pairs = std::min(config_.attic_pairs, after_peers / 4);
  // Directory shard hosts sit between the peer region and the attic tail.
  config_.dir_shards = std::min(
      config_.dir_shards,
      (after_peers - 2 * config_.attic_pairs) / 2);
  const std::size_t reserved =
      config_.peers + 2 * config_.attic_pairs + config_.dir_shards;
  config_.active_homes =
      std::min(config_.active_homes, homes > reserved ? homes - reserved : 0);

  peer_region_begin_ = config_.active_homes;
  dir_region_begin_ = homes - 2 * config_.attic_pairs - config_.dir_shards;
  const std::size_t peer_region_size = dir_region_begin_ - peer_region_begin_;
  peer_stride_ = std::max<std::size_t>(1, peer_region_size / config_.peers);

  config_.dir_registered_homes =
      std::min(config_.dir_registered_homes, config_.active_homes);
  config_.dir_silent_homes =
      std::min(config_.dir_silent_homes, config_.dir_registered_homes);
}

MetroDriver::~MetroDriver() = default;

std::size_t MetroDriver::peer_home(std::size_t i) const {
  return peer_region_begin_ + i * peer_stride_;
}

void MetroDriver::start() {
  // Origin on the first IXP-side host.
  origin_mux_ = std::make_unique<transport::TransportMux>(*topo_.origins.at(0));
  nocdn::OriginConfig ocfg;
  ocfg.provider = config_.provider;
  origin_server_ = std::make_unique<nocdn::OriginServer>(*origin_mux_, ocfg,
                                                         rng_.fork());
  const ZipfCatalog& catalog = model_.catalog();
  for (std::size_t rank = 0; rank < catalog.objects(); ++rank) {
    origin_server_->add_object(
        {catalog.url_of(rank),
         http::Body::synthetic(catalog.bytes_of(rank), rank)});
    // One container object per page, no embeds: each page load fetches
    // exactly its rank's object, so delivered traffic follows the Zipf
    // draw sequence exactly.
    origin_server_->add_page({catalog.page_of(rank), catalog.url_of(rank), {}});
  }
  const net::Endpoint origin_ep{topo_.origins.at(0)->address(), ocfg.port};

  // Peer proxies, spread across the metro so every PoP-ish region has
  // nearby serving capacity.
  peers_.resize(config_.peers);
  for (std::size_t i = 0; i < config_.peers; ++i) {
    net::Host& host = *topo_.homes.at(peer_home(i));
    PeerSlot& slot = peers_[i];
    slot.mux = std::make_unique<transport::TransportMux>(host);
    slot.proxy =
        std::make_unique<nocdn::PeerProxy>(*slot.mux, 8080, rng_.fork());
    const std::uint64_t id =
        origin_server_->recruit_peer({host.address(), 8080});
    slot.proxy->signup({config_.provider, id, origin_ep});
    slot.proxy->start_usage_uploads(config_.usage_upload_interval);
  }

  // Browsing homes: slots exist up front, stacks are built lazily on the
  // first arrival so dark-quiet homes cost nothing beyond the vector slot.
  clients_.resize(config_.active_homes);
  for (std::size_t h = 0; h < config_.active_homes; ++h) schedule_next(h);

  // Attic-style record sync between tail-home pairs: the store half runs a
  // plain HTTP record endpoint, the client half PUTs a fresh record every
  // interval and reads it back.
  attic_.resize(config_.attic_pairs);
  for (std::size_t i = 0; i < config_.attic_pairs; ++i) {
    AtticPair& pair = attic_[i];
    pair.store_home = topo_.homes.size() - 1 - 2 * i;
    pair.client_home = topo_.homes.size() - 2 - 2 * i;
    net::Host& store_host = *topo_.homes.at(pair.store_home);
    pair.store_mux = std::make_unique<transport::TransportMux>(store_host);
    pair.store = std::make_unique<http::HttpServer>(*pair.store_mux, 8081);
    const std::size_t record_bytes = config_.attic_record_bytes;
    pair.store->route(http::Method::kPut, "/rec/",
                      [](const http::Request&, http::ResponseWriter& w) {
                        w.respond({204, {}, {}});
                      });
    pair.store->route(http::Method::kGet, "/rec/",
                      [record_bytes](const http::Request& req,
                                     http::ResponseWriter& w) {
                        http::Response resp;
                        resp.body = http::Body::synthetic(
                            record_bytes, std::hash<std::string>{}(req.path));
                        w.respond(std::move(resp));
                      });
    pair.client_mux = std::make_unique<transport::TransportMux>(
        *topo_.homes.at(pair.client_home));
    pair.client =
        std::make_unique<http::HttpClient>(*pair.client_mux, rng_.fork());
    // Stagger the pairs across one interval so they don't synchronize.
    const util::Duration offset = static_cast<util::Duration>(
        config_.attic_interval * (i + 1) / (config_.attic_pairs + 1));
    sim_.schedule(offset, [this, i] { attic_tick(i); });
  }

  if (config_.dir_shards > 0) start_directory();
}

void MetroDriver::start_directory() {
  std::vector<net::Host*> hosts;
  hosts.reserve(config_.dir_shards);
  for (std::size_t i = 0; i < config_.dir_shards; ++i) {
    hosts.push_back(topo_.homes.at(dir_region_begin_ + i));
  }
  core::DirClusterConfig dcfg;
  dcfg.shards = config_.dir_shards;
  dcfg.replication = config_.dir_replication;
  dcfg.lease_ttl = config_.dir_lease;
  dcfg.anti_entropy_interval = config_.dir_anti_entropy;
  cluster_ = std::make_unique<core::DirectoryCluster>(std::move(hosts), dcfg,
                                                      rng_.fork());

  // Household registrations ride the registered homes' own muxes — the
  // HPoP keeping itself resolvable is home-side work, like browsing.
  const std::size_t n = config_.dir_registered_homes;
  dir_renewing_ = n - config_.dir_silent_homes;
  dir_regs_.reserve(n);
  for (std::size_t h = 0; h < n; ++h) {
    ClientSlot& slot = ensure_client(h);
    core::DirRegistrationConfig rcfg;
    rcfg.replication = config_.dir_replication;
    const bool silent = h >= dir_renewing_;
    rcfg.auto_renew = !silent;
    if (silent) rcfg.lease_s = config_.dir_silent_lease_s;
    auto reg = std::make_unique<core::ShardedDirectoryRegistration>(
        *slot.mux, &cluster_->ring(), cluster_->endpoints(),
        topo_.homes[h]->name(), rcfg, rng_.fork());
    traversal::Advertisement adv;
    adv.method = traversal::ReachMethod::kDirect;
    adv.endpoint = {topo_.homes[h]->address(), 443};
    reg->register_advertisement(adv);
    dir_regs_.push_back(std::move(reg));
  }
}

MetroDriver::ClientSlot& MetroDriver::ensure_client(std::size_t home) {
  ClientSlot& slot = clients_[home];
  if (!slot.mux) {
    slot.mux = std::make_unique<transport::TransportMux>(*topo_.homes[home]);
    slot.http = std::make_unique<http::HttpClient>(*slot.mux, rng_.fork());
    slot.loader = std::make_unique<nocdn::LoaderClient>(
        *slot.http, net::Endpoint{topo_.origins[0]->address(), 80},
        config_.provider);
  }
  if (cluster_ && !slot.dir) {
    slot.dir = std::make_unique<core::ShardedDirectoryClient>(
        *slot.mux, &cluster_->ring(), cluster_->endpoints(),
        cluster_->client_config(), rng_.fork());
  }
  return slot;
}

void MetroDriver::dir_probe(ClientSlot& slot) {
  // Resolve a random renewing household — the "find my friend's HPoP"
  // traffic every directory serves. Counted post-warmup only.
  const std::size_t target = rng_.uniform_index(dir_renewing_);
  const bool counted = sim_.now() >= config_.dir_warmup;
  const util::TimePoint started = sim_.now();
  slot.dir->lookup(
      topo_.homes[target]->name(),
      [this, counted, started](util::Result<traversal::Advertisement> r) {
        if (!counted) return;
        ++stats_.dir_lookups;
        dir_latencies_.push_back(sim_.now() - started);
        if (r.ok()) {
          ++stats_.dir_ok;
        } else if (r.error().code == "directory_busy") {
          ++stats_.dir_busy;
        } else {
          ++stats_.dir_failed;
        }
      });

  // Occasionally probe a silent household: any found answer past its
  // lease (+1 s grace) is a stale advertisement being served.
  if (config_.dir_silent_homes > 0 &&
      rng_.bernoulli(config_.dir_silent_probe_p)) {
    const std::size_t idx =
        dir_renewing_ + rng_.uniform_index(config_.dir_silent_homes);
    core::ShardedDirectoryRegistration* reg = dir_regs_[idx].get();
    ++stats_.dir_silent_probes;
    slot.dir->lookup(
        reg->household(),
        [this, reg](util::Result<traversal::Advertisement> r) {
          if (!r.ok() || !reg->acked()) return;
          const util::TimePoint expiry =
              reg->last_ack_at() +
              static_cast<util::Duration>(reg->granted_lease_s()) *
                  util::kSecond;
          if (sim_.now() > expiry + util::kSecond) ++stats_.dir_stale_served;
        });
  }
}

void MetroDriver::schedule_next(std::size_t home) {
  const util::TimePoint t =
      model_.next_arrival(topo_, home, sim_.now(), rng_);
  if (t >= config_.horizon) return;
  sim_.schedule(t - sim_.now(), [this, home] { on_arrival(home); });
}

void MetroDriver::on_arrival(std::size_t home) {
  ++stats_.arrivals;
  ClientSlot& slot = ensure_client(home);
  const std::size_t rank = model_.draw_object(topo_, home, sim_.now(), rng_);
  slot.loader->load_page(
      model_.catalog().page_of(rank), [this](nocdn::PageLoadResult r) {
        if (r.success) {
          ++stats_.loads_ok;
          stats_.bytes_from_peers += r.bytes_from_peers;
          stats_.bytes_from_origin += r.bytes_from_origin;
          stats_.load_time_s_total +=
              static_cast<double>(r.load_time) / util::kSecond;
        } else {
          ++stats_.loads_failed;
        }
      });
  if (slot.dir && dir_renewing_ > 0) dir_probe(slot);
  schedule_next(home);
}

void MetroDriver::attic_tick(std::size_t pair_idx) {
  AtticPair& pair = attic_[pair_idx];
  const net::Endpoint store_ep{topo_.homes[pair.store_home]->address(), 8081};
  const std::string path = "/rec/" + std::to_string(pair_idx) + "/" +
                           std::to_string(pair.seq++);
  http::Request put;
  put.method = http::Method::kPut;
  put.path = path;
  put.body = http::Body::synthetic(config_.attic_record_bytes, pair.seq);
  pair.client->fetch(
      store_ep, std::move(put),
      [this, pair_idx, store_ep, path](util::Result<http::Response> r) {
        if (!r.ok()) {
          ++stats_.attic_failures;
          return;
        }
        ++stats_.attic_puts;
        http::Request get;
        get.method = http::Method::kGet;
        get.path = path;
        attic_[pair_idx].client->fetch(
            store_ep, std::move(get), [this](util::Result<http::Response> g) {
              if (g.ok()) {
                ++stats_.attic_gets;
              } else {
                ++stats_.attic_failures;
              }
            });
      });
  if (sim_.now() + config_.attic_interval < config_.horizon) {
    sim_.schedule(config_.attic_interval,
                  [this, pair_idx] { attic_tick(pair_idx); });
  }
}

double MetroDriver::dir_success_rate() const {
  return stats_.dir_lookups > 0
             ? static_cast<double>(stats_.dir_ok) /
                   static_cast<double>(stats_.dir_lookups)
             : 1.0;
}

core::ShardedDirectoryClient::Stats MetroDriver::dir_client_totals() const {
  core::ShardedDirectoryClient::Stats total;
  for (const auto& slot : clients_) {
    if (!slot.dir) continue;
    const auto& s = slot.dir->stats();
    total.lookups += s.lookups;
    total.ok += s.ok;
    total.not_found += s.not_found;
    total.busy += s.busy;
    total.unreachable += s.unreachable;
    total.failovers += s.failovers;
    total.timeouts += s.timeouts;
    total.breaker_skips += s.breaker_skips;
  }
  return total;
}

double MetroDriver::dir_lookup_p99_s() const {
  if (dir_latencies_.empty()) return 0.0;
  std::vector<util::Duration> sorted = dir_latencies_;
  const std::size_t k = (sorted.size() * 99) / 100;
  const std::size_t idx = std::min(k, sorted.size() - 1);
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return static_cast<double>(sorted[idx]) / util::kSecond;
}

double MetroDriver::offload() const {
  const double total = static_cast<double>(stats_.bytes_from_peers) +
                       static_cast<double>(stats_.bytes_from_origin);
  return total > 0 ? static_cast<double>(stats_.bytes_from_peers) / total : 0.0;
}

double MetroDriver::peer_hit_rate() const {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const PeerSlot& slot : peers_) {
    if (!slot.proxy) continue;
    hits += slot.proxy->stats().cache_hits;
    misses += slot.proxy->stats().cache_misses;
  }
  const std::uint64_t total = hits + misses;
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

std::string MetroDriver::report() const {
  char line[256];
  std::snprintf(
      line, sizeof line,
      "homes=%zu active=%zu peers=%zu arrivals=%llu ok=%llu failed=%llu "
      "offload=%.4f hit=%.4f peer_bytes=%llu origin_bytes=%llu "
      "attic=%llu/%llu/%llu",
      topo_.homes.size(), config_.active_homes, config_.peers,
      static_cast<unsigned long long>(stats_.arrivals),
      static_cast<unsigned long long>(stats_.loads_ok),
      static_cast<unsigned long long>(stats_.loads_failed), offload(),
      peer_hit_rate(),
      static_cast<unsigned long long>(stats_.bytes_from_peers),
      static_cast<unsigned long long>(stats_.bytes_from_origin),
      static_cast<unsigned long long>(stats_.attic_puts),
      static_cast<unsigned long long>(stats_.attic_gets),
      static_cast<unsigned long long>(stats_.attic_failures));
  std::string out = line;
  if (cluster_) {
    char dir[224];
    std::snprintf(
        dir, sizeof dir,
        " dir: shards=%zu regs=%zu lookups=%llu ok=%llu busy=%llu "
        "failed=%llu success=%.4f p99_s=%.4f silent_probes=%llu stale=%llu",
        cluster_->shards(), dir_regs_.size(),
        static_cast<unsigned long long>(stats_.dir_lookups),
        static_cast<unsigned long long>(stats_.dir_ok),
        static_cast<unsigned long long>(stats_.dir_busy),
        static_cast<unsigned long long>(stats_.dir_failed),
        dir_success_rate(), dir_lookup_p99_s(),
        static_cast<unsigned long long>(stats_.dir_silent_probes),
        static_cast<unsigned long long>(stats_.dir_stale_served));
    out += dir;
  }
  return out;
}

}  // namespace hpop::metro
