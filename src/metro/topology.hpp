#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hpop::metro {

/// Per-tier link shape for the metro access tree.
struct TierLink {
  util::BitRate rate = 1 * util::kGbps;
  util::Duration delay = 1 * util::kMillisecond;
  std::size_t queue_bytes = 512 * 1024;

  net::LinkParams link() const { return {rate, delay, 0.0, queue_bytes}; }
};

/// Parameters for a metro-scale ISP deployment: a strict hierarchy of
/// home → DSLAM/OLT → metro aggregation PoP → core, with the content
/// origins hanging off the core (the IXP side). The tree shape is set by
/// the two fan-outs; tier counts derive from `homes`.
///
/// This is the §III "ultrabroadband FTTH" world: homes are publicly
/// addressed HPoPs (no NAT), which is also what lets 100k+ of them share
/// one process — a NAT box per home would double the node count for a
/// scenario the paper treats as legacy.
struct MetroParams {
  std::size_t homes = 100'000;
  std::size_t homes_per_dslam = 32;   // GPON/DSLAM split ratio
  std::size_t dslams_per_pop = 16;
  std::size_t origins = 1;

  /// FTTH last mile (home ↔ DSLAM).
  TierLink access{1 * util::kGbps, 1 * util::kMillisecond, 256 * 1024};
  /// DSLAM ↔ metro aggregation PoP.
  TierLink dslam_uplink{10 * util::kGbps, 1 * util::kMillisecond, 4u << 20};
  /// PoP ↔ metro core.
  TierLink pop_uplink{40 * util::kGbps, 2 * util::kMillisecond, 8u << 20};
  /// Core ↔ origin/IXP.
  TierLink origin_path{100 * util::kGbps, 5 * util::kMillisecond, 16u << 20};

  /// Per-home multiplicative jitter on the access rate, uniform in
  /// [1-j, 1+j]: real GPON trees are not perfectly uniform, and the jitter
  /// makes the seed observable in the topology fingerprint. 0 draws
  /// nothing (byte-identical topologies regardless of seed).
  double access_rate_jitter = 0.0;

  std::size_t dslam_count() const {
    return (homes + homes_per_dslam - 1) / homes_per_dslam;
  }
  std::size_t pop_count() const {
    return (dslam_count() + dslams_per_pop - 1) / dslams_per_pop;
  }
};

/// The built metro: node/link handles plus the address plan and subtree
/// index arithmetic the workload layer scopes events with. All vectors are
/// indexed by the obvious id (homes[h], dslams[d], pops[p]).
struct MetroTopology {
  MetroParams params;

  std::vector<net::Host*> homes;
  std::vector<net::Router*> dslams;
  std::vector<net::Router*> pops;
  net::Router* core = nullptr;
  std::vector<net::Host*> origins;

  std::vector<net::Link*> access_links;   // [h] home ↔ its DSLAM
  std::vector<net::Link*> dslam_uplinks;  // [d] DSLAM ↔ its PoP
  std::vector<net::Link*> pop_uplinks;    // [p] PoP ↔ core
  std::vector<net::Link*> origin_links;   // [o] core ↔ origin

  // --- Subtree arithmetic (the hierarchy is strictly index-structured) ---
  std::size_t dslam_of_home(std::size_t h) const {
    return h / params.homes_per_dslam;
  }
  std::size_t pop_of_dslam(std::size_t d) const {
    return d / params.dslams_per_pop;
  }
  std::size_t pop_of_home(std::size_t h) const {
    return pop_of_dslam(dslam_of_home(h));
  }
  /// Home-id range [first, last) hanging off DSLAM `d`.
  std::pair<std::size_t, std::size_t> homes_of_dslam(std::size_t d) const;
  /// Home-id range [first, last) hanging off PoP `p`.
  std::pair<std::size_t, std::size_t> homes_of_pop(std::size_t p) const;

  // --- Address plan ---
  /// Base of the metro address block (outside the 100.64/10 public pool
  /// and the 10/8 home pool so the two allocators can coexist).
  net::IpAddr metro_base;
  /// Homes per DSLAM rounded up to a power of two: the DSLAM's aggregatable
  /// block size. PoP blocks are dslam_block * pow2ceil(dslams_per_pop).
  std::uint32_t dslam_block = 0;
  std::uint32_t pop_block = 0;

  net::IpAddr home_address(std::size_t h) const;
  net::Prefix dslam_prefix(std::size_t d) const;
  net::Prefix pop_prefix(std::size_t p) const;
  /// First address of DSLAM `d`'s block (pop-strided so every DSLAM block
  /// nests inside its pop's aggregated prefix).
  std::uint32_t dslam_base(std::size_t d) const;

  /// FNV-1a over the full structure: counts, every home address, every
  /// link's rate/delay/queue bit patterns. Same seed ⇒ same fingerprint;
  /// with access_rate_jitter > 0, different seeds diverge.
  std::uint64_t fingerprint() const;
};

/// Builds the metro into `net`. Deterministic: the same (params, rng
/// state) always produces the same topology, addresses, and link
/// parameters. Routing is installed hierarchically — a /32 per home on its
/// DSLAM, one aggregated prefix per child block above that, defaults
/// upward — so construction is O(homes), not auto_route()'s O(N²) BFS.
MetroTopology build_metro(net::Network& net, const MetroParams& params,
                          util::Rng& rng);

}  // namespace hpop::metro
