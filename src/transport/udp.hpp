#pragma once

#include <functional>
#include <memory>

#include "net/packet.hpp"

namespace hpop::transport {

class TransportMux;

/// Connectionless datagram endpoint. Datagrams carry one Payload each and
/// are delivered (or silently lost) as the network dictates — STUN, TURN,
/// and the DCol VPN encapsulation ride on this.
class UdpSocket : public std::enable_shared_from_this<UdpSocket> {
 public:
  UdpSocket(TransportMux& mux, std::uint16_t port);
  ~UdpSocket() = default;

  using DatagramHandler =
      std::function<void(net::Endpoint from, net::PayloadPtr payload)>;
  void set_on_datagram(DatagramHandler h) { handler_ = std::move(h); }

  /// Raw-packet handler (takes precedence); the VPN server uses it to see
  /// the encapsulated inner packet.
  using PacketHandler = std::function<void(const net::Packet&)>;
  void set_on_packet(PacketHandler h) { packet_handler_ = std::move(h); }

  void send_to(net::Endpoint dst, net::PayloadPtr payload);
  /// Sends a raw pre-built packet through this socket's port (used by the
  /// VPN layer, which needs to emit encapsulated packets).
  void send_packet_to(net::Endpoint dst, net::Packet inner);

  std::uint16_t port() const { return port_; }
  void close();
  bool closed() const { return closed_; }

  // Mux-internal.
  void on_packet(const net::Packet& pkt);

 private:
  TransportMux& mux_;
  std::uint16_t port_;
  bool closed_ = false;
  DatagramHandler handler_;
  PacketHandler packet_handler_;
};

}  // namespace hpop::transport
