#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "transport/tcp.hpp"

namespace hpop::transport {

/// One MPTCP data-level chunk, carried as the payload of subflow segments.
/// A chunk maps a run of data-sequence bytes onto a subflow and carries the
/// application message boundaries that end inside it (DSS mapping in spirit;
/// see DESIGN.md for the simplification: data-level ACKs are inferred from
/// subflow-level ACKs).
class ChunkPayload : public net::Payload {
 public:
  ChunkPayload(std::uint64_t data_offset, std::uint64_t length,
               std::vector<net::MessageRef> refs)
      : data_offset_(data_offset), length_(length), refs_(std::move(refs)) {}

  std::size_t wire_size() const override { return length_; }
  std::uint64_t data_offset() const { return data_offset_; }
  std::uint64_t length() const { return length_; }
  std::uint64_t data_end() const { return data_offset_ + length_; }
  const std::vector<net::MessageRef>& refs() const { return refs_; }

 private:
  std::uint64_t data_offset_;
  std::uint64_t length_;
  std::vector<net::MessageRef> refs_;
};

enum class SchedulerKind {
  kMinRtt,      // default MPTCP behaviour: lowest-SRTT subflow with space
  kRoundRobin,  // ablation baseline
  kWeighted,    // proportional to configured weights
};

struct MptcpOptions {
  TcpOptions subflow;
  SchedulerKind scheduler = SchedulerKind::kMinRtt;
};

/// Multipath TCP connection: one data-sequence stream striped over one or
/// more TCP subflows (§IV-C, Fig. 3). Subflows may traverse entirely
/// different network paths — in DCol, waypoint tunnels — while the
/// application sees the same framed-message API as TcpConnection.
class MptcpConnection : public std::enable_shared_from_this<MptcpConnection> {
 public:
  MptcpConnection(TransportMux& mux, std::uint64_t token, MptcpOptions opts,
                  bool server_role);
  ~MptcpConnection();

  // --- Application interface (mirrors TcpConnection) ---
  void send(net::PayloadPtr message);
  void send_bytes(std::size_t n);
  void close();

  using MessageHandler = std::function<void(net::PayloadPtr)>;
  using PlainHandler = std::function<void()>;
  using BytesHandler = std::function<void(std::size_t)>;
  void set_on_established(PlainHandler h) { on_established_ = std::move(h); }
  void set_on_message(MessageHandler h) { on_message_ = std::move(h); }
  void set_on_bytes(BytesHandler h) { on_bytes_ = std::move(h); }
  void set_on_closed(PlainHandler h) { on_closed_ = std::move(h); }
  /// Fires instead of on_closed when the session dies abnormally (every
  /// subflow reset/lost before the data stream drained). Without it the
  /// failure is still visible through last_error() in on_closed.
  void set_on_reset(PlainHandler h) { on_reset_ = std::move(h); }
  /// Failure reason when the session ended abnormally; nullptr otherwise.
  const char* last_error() const { return last_error_; }

  // --- Subflow management (DCol's detour engine drives these) ---
  /// Opens an additional subflow to the peer. `bind_ip` lets a VPN tunnel
  /// source the subflow from its virtual address; `remote` defaults to the
  /// primary subflow's remote endpoint.
  std::shared_ptr<TcpConnection> add_subflow(TcpOptions subflow_opts);
  /// Removes a subflow; its in-flight data is reinjected on the others.
  void remove_subflow(const std::shared_ptr<TcpConnection>& subflow);
  /// Attaches an accepted join subflow (mux-internal, server side).
  void attach_subflow(std::shared_ptr<TcpConnection> subflow, bool primary);

  struct SubflowInfo {
    std::shared_ptr<TcpConnection> conn;
    std::uint64_t bytes_scheduled = 0;
    double weight = 1.0;
    bool dead = false;
  };
  const std::vector<SubflowInfo>& subflows() const { return subflows_; }
  std::uint64_t token() const { return token_; }
  std::uint64_t data_acked() const { return data_una_; }
  std::uint64_t data_received() const { return data_rcv_nxt_; }
  bool established() const { return established_; }
  net::Endpoint remote() const { return remote_; }
  void set_remote(net::Endpoint remote) { remote_ = remote; }
  void set_scheduler(SchedulerKind k) { opts_.scheduler = k; }
  void set_subflow_weight(const std::shared_ptr<TcpConnection>& sf, double w);

 private:
  struct OutChunk {
    std::uint64_t data_offset;
    std::uint64_t length;
    TcpConnection* subflow;
    bool acked = false;
  };

  void wire_subflow(SubflowInfo& info, bool primary);
  void pump();
  int pick_subflow();
  void on_chunk_received(const ChunkPayload& chunk);
  void on_chunk_acked(const ChunkPayload& chunk, TcpConnection* subflow);
  void handle_subflow_death(TcpConnection* subflow);
  void deliver_ready();
  void advance_data_una();
  std::vector<net::MessageRef> refs_in_range(std::uint64_t off,
                                             std::uint64_t len) const;
  void maybe_finish_close();

  TransportMux& mux_;
  std::uint64_t token_;
  MptcpOptions opts_;
  bool server_role_;
  bool established_ = false;
  bool close_requested_ = false;
  bool closed_ = false;
  net::Endpoint remote_;

  std::vector<SubflowInfo> subflows_;
  std::size_t rr_next_ = 0;  // round-robin cursor
  int last_subflow_ = -1;    // scheduler's previous pick (switch detection)

  // Data-level sender state.
  std::uint64_t data_end_ = 0;       // bytes queued by the app
  std::uint64_t data_next_ = 0;      // next never-sent offset
  std::uint64_t data_una_ = 0;       // lowest unacked data offset
  struct Item {
    std::uint64_t end_offset;
    net::PayloadPtr payload;
  };
  std::deque<Item> send_items_;
  std::vector<OutChunk> outstanding_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> reinject_;  // off,len

  // Data-level receiver state.
  std::uint64_t data_rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_ranges_;
  std::map<std::uint64_t, net::PayloadPtr> pending_refs_;

  PlainHandler on_established_;
  MessageHandler on_message_;
  BytesHandler on_bytes_;
  PlainHandler on_closed_;
  PlainHandler on_reset_;
  const char* last_error_ = nullptr;

  // Registry handles (aggregated across all MPTCP connections).
  telemetry::Counter* m_sched_bytes_;
  telemetry::Counter* m_subflow_switches_;

  friend class TransportMux;
};

}  // namespace hpop::transport
