#include "transport/udp.hpp"

#include "transport/mux.hpp"

namespace hpop::transport {

namespace {
thread_local std::uint64_t g_udp_packet_id = 1u << 30;
}

UdpSocket::UdpSocket(TransportMux& mux, std::uint16_t port)
    : mux_(mux), port_(port) {}

void UdpSocket::send_to(net::Endpoint dst, net::PayloadPtr payload) {
  if (closed_) return;
  net::PooledPacket pkt = mux_.make_packet();
  pkt->src = mux_.default_source();
  pkt->dst = dst.ip;
  pkt->proto = net::Proto::kUdp;
  pkt->udp.src_port = port_;
  pkt->udp.dst_port = dst.port;
  pkt->payload_len = payload ? payload->wire_size() : 0;
  if (payload) {
    pkt->messages.push_back(net::MessageRef{pkt->payload_len, payload});
  }
  pkt->id = ++g_udp_packet_id;
  mux_.send_packet(std::move(pkt));
}

void UdpSocket::send_packet_to(net::Endpoint dst, net::Packet inner) {
  if (closed_) return;
  net::PooledPacket pkt = mux_.make_packet();
  pkt->src = mux_.default_source();
  pkt->dst = dst.ip;
  pkt->proto = net::Proto::kUdp;
  pkt->udp.src_port = port_;
  pkt->udp.dst_port = dst.port;
  // The inner packet is shared, not pooled: tunnel hops hold it across
  // arbitrary lifetimes and the encap path is rare (DCol VPN only).
  pkt->encapsulated = std::make_shared<const net::Packet>(std::move(inner));
  pkt->id = ++g_udp_packet_id;
  mux_.send_packet(std::move(pkt));
}

void UdpSocket::close() {
  if (closed_) return;
  closed_ = true;
  mux_.udp_unregister(port_);
}

void UdpSocket::on_packet(const net::Packet& pkt) {
  if (closed_) return;
  if (packet_handler_) {
    packet_handler_(pkt);
    return;
  }
  if (!handler_) return;
  net::PayloadPtr payload;
  for (const auto& ref : pkt.messages) {
    if (ref.message) {
      payload = ref.message;
      break;
    }
  }
  handler_(pkt.src_endpoint(), payload);
}

}  // namespace hpop::transport
