#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "util/time.hpp"

namespace hpop::transport {

class TransportMux;

struct TcpOptions {
  std::size_t mss = 1460;
  /// RFC 6928 initial window (segments); the paper's §IV-D ramp-up math
  /// ("a few segments in the first RTT ... 10 RTTs and over 14 MB")
  /// corresponds to IW10 with per-ACK doubling, which this TCP reproduces.
  std::uint32_t initial_window_segments = 10;
  std::uint64_t receive_window = 64ull << 20;  // large enough for gigabit BDPs
  util::Duration min_rto = 200 * util::kMillisecond;
  util::Duration initial_rto = 1 * util::kSecond;
  util::Duration max_rto = 60 * util::kSecond;

  /// MPTCP signalling: mp_capable SYN (first subflow) carries `mptcp_token`;
  /// a join SYN (additional subflow) carries `join_token`.
  bool mp_capable = false;
  std::uint64_t mptcp_token = 0;
  std::optional<std::uint64_t> join_token;

  /// Receiver-side deliberate ACK delay. DCol's custom client scheduler
  /// (§IV-C) delays subflow-level acknowledgements to inflate the RTT the
  /// server's min-RTT scheduler sees on an undesirable detour.
  util::Duration ack_delay = 0;

  /// Source address override; defaults to the host's primary address.
  /// DCol VPN subflows bind their waypoint-assigned virtual address.
  std::optional<net::IpAddr> bind_ip;

  /// Source port override (SO_REUSEADDR-style). NAT traversal binds
  /// outbound discovery/punch connections to the service port so the NAT
  /// mapping it creates is the one the service is reachable through.
  std::optional<std::uint16_t> local_port;
};

/// One endpoint of a simulated TCP connection: Reno congestion control with
/// NewReno partial-ack recovery, slow start (IW10), fast retransmit on three
/// duplicate ACKs, Jacobson/Karn RTO with exponential backoff.
///
/// Applications exchange framed messages: each Payload occupies
/// `wire_size()` bytes of the stream and is delivered when the receiver's
/// stream is contiguous through its final byte — message framing over a
/// byte stream without materializing the bytes.
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  enum class State {
    kSynSent,
    kSynReceived,
    kEstablished,
    kClosing,  // FIN sent and/or received, not yet fully closed
    kClosed,
  };

  /// Use TransportMux::connect / TcpListener; not directly constructible.
  TcpConnection(TransportMux& mux, net::Endpoint local, net::Endpoint remote,
                TcpOptions opts, bool passive);
  ~TcpConnection() = default;

  // --- Application interface ---
  void send(net::PayloadPtr message);
  void send_bytes(std::size_t n);
  /// Graceful close: FIN after all queued data.
  void close();
  /// Abortive close (RST).
  void abort();

  using MessageHandler = std::function<void(net::PayloadPtr)>;
  using PlainHandler = std::function<void()>;
  using BytesHandler = std::function<void(std::size_t)>;
  void set_on_established(PlainHandler h) { on_established_ = std::move(h); }
  void set_on_message(MessageHandler h) { on_message_ = std::move(h); }
  /// Called as stream bytes become contiguous (progress reporting).
  void set_on_bytes(BytesHandler h) { on_bytes_ = std::move(h); }
  void set_on_closed(PlainHandler h) { on_closed_ = std::move(h); }
  void set_on_reset(PlainHandler h) { on_reset_ = std::move(h); }
  /// Fires once when the peer's FIN is received (peer finished sending).
  /// Typical servers/clients respond by close()-ing their own side once
  /// their remaining data is queued.
  void set_on_remote_close(PlainHandler h) { on_remote_close_ = std::move(h); }
  /// Fires when acked data opens send window (MPTCP pump hook).
  void set_on_send_space(PlainHandler h) { on_send_space_ = std::move(h); }
  /// Fires for each fully-acknowledged queued payload (MPTCP data-ack).
  void set_on_payload_acked(MessageHandler h) {
    on_payload_acked_ = std::move(h);
  }

  // --- Introspection ---
  State state() const { return state_; }
  net::Endpoint local() const { return local_; }
  net::Endpoint remote() const { return remote_; }
  const TcpOptions& options() const { return opts_; }
  double cwnd() const { return cwnd_; }
  std::uint64_t bytes_acked() const { return snd_una_; }
  std::uint64_t bytes_received() const { return rcv_nxt_; }
  util::Duration srtt() const { return srtt_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  /// Why the connection failed ("connection reset by peer", "too many
  /// timeouts", "local abort"); nullptr after a graceful close or while
  /// open. Lets on_closed-only callers distinguish failure from completion
  /// instead of stalling on a connection that silently died.
  const char* last_error() const { return last_error_; }
  /// Window space available for new data right now.
  std::uint64_t available_window() const;
  std::uint64_t unsent_bytes() const { return snd_buf_end_ - snd_nxt_; }
  std::uint64_t flight_size() const { return snd_nxt_ - snd_una_; }

  /// Receiver knob for DCol steering; takes effect for subsequent ACKs.
  void set_ack_delay(util::Duration d) { opts_.ack_delay = d; }

  // --- Wiring (mux-internal) ---
  void start_active_open();
  void on_packet(const net::Packet& pkt);
  /// Called by ~TransportMux: the mux is going away while the application
  /// may still hold the connection (self-capturing handlers, peer maps).
  /// Cancels all pending timers and clears handlers without invoking any
  /// callback — the owner tearing down the mux (a crashed host) has
  /// usually destroyed the application already, so firing on_reset here
  /// would call into freed objects. Leaves the object inert and kClosed.
  void detach();

 private:
  struct Item {
    std::uint64_t end_offset;
    net::PayloadPtr payload;  // null => synthetic filler
  };

  void enqueue(std::uint64_t len, net::PayloadPtr payload);
  void try_send();
  void emit_segment(std::uint64_t seq, std::uint64_t len, bool retransmit);
  void emit_control(bool syn, bool ack, bool fin, bool rst);
  void send_ack_now();
  void schedule_delayed_ack();
  void process_ack(const net::Packet& pkt);
  void process_data(const net::Packet& pkt);
  void on_new_ack(std::uint64_t acked);
  void update_sack_scoreboard(const net::Packet& pkt);
  std::uint64_t sacked_bytes_in_flight() const;
  /// First unsacked gap at/after `from` (clamped to [snd_una_, snd_nxt_));
  /// returns {start, end} or start==end when none.
  std::pair<std::uint64_t, std::uint64_t> next_hole(std::uint64_t from) const;
  void enter_recovery();
  void send_in_recovery();
  void on_rto();
  void arm_rto();
  void disarm_rto();
  void update_rtt(util::Duration sample);
  void maybe_send_fin();
  void maybe_finish_close();
  void deliver_ready();
  void prune_acked_items();
  void fail(const char* reason);
  /// Fills the message refs ending in (seq, seq+len] straight into the
  /// packet's body. The CowVec is only touched when at least one message
  /// actually ends in the range — bulk filler segments (the hot path) ship
  /// with the pool slot's empty default instead of materializing a vector.
  void collect_refs_in_range(std::uint64_t seq, std::uint64_t len,
                             net::Packet& pkt) const;
  net::PooledPacket base_packet() const;
  void transmit(net::PooledPacket pkt);

  TransportMux& mux_;
  net::Endpoint local_;
  net::Endpoint remote_;
  TcpOptions opts_;
  State state_;

  // Sender.
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t high_water_ = 0;   // highest sequence ever transmitted
  std::uint64_t snd_buf_end_ = 0;  // stream bytes queued by the app
  std::deque<Item> send_items_;
  double cwnd_ = 0;
  double ssthresh_ = 0;
  std::uint64_t peer_rwnd_;
  int dupacks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint64_t recover_ = 0;
  /// Sender scoreboard / receiver reassembly maps share one node shape so
  /// extracted nodes are interchangeable between them.
  using RangeMap = std::map<std::uint64_t, std::uint64_t>;
  /// SACK scoreboard: peer-confirmed out-of-order ranges above snd_una_.
  RangeMap sacked_;
  /// Hole-scan cursor during SACK-based recovery (monotone per episode).
  std::uint64_t rexmit_scan_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  const char* last_error_ = nullptr;

  // RTT estimation (Karn: time one un-retransmitted segment at a time).
  util::Duration srtt_ = 0;
  util::Duration rttvar_ = 0;
  util::Duration rto_;
  int rto_backoff_ = 0;
  std::optional<std::uint64_t> timed_seq_;
  util::TimePoint timed_at_ = 0;
  std::optional<sim::TimerId> rto_timer_;

  // Receiver.
  std::uint64_t rcv_nxt_ = 0;
  RangeMap ooo_ranges_;  // start -> end
  /// Spare map nodes shared by every RangeMap operation on the segment hot
  /// path (SACK scoreboard merges, out-of-order reassembly, frontier
  /// advance). Ranges churn one node per segment in bulk transfer and one
  /// per merged range per ACK during loss recovery; recycling extracted
  /// nodes here turns that into zero allocator round-trips in steady state.
  static constexpr std::size_t kMaxRangeSpares = 256;
  std::vector<RangeMap::node_type> range_spares_;
  void stash_range_node(RangeMap::node_type&& node);
  /// Inserts [lo, hi) into `m`, re-using `reuse` (or a cached spare) for
  /// the node so the insert does not allocate.
  void insert_range(RangeMap& m, std::uint64_t lo, std::uint64_t hi,
                    RangeMap::node_type&& reuse);
  /// SACK generation state (RFC 2018 block selection): sequence inside the
  /// most recently received out-of-order segment, and the rotation cursor
  /// cycling the remaining ranges through the capped block slots. Mutable:
  /// advancing the cursor is part of building an (otherwise const) ACK.
  std::uint64_t last_ooo_seq_ = UINT64_MAX;
  mutable std::uint64_t sack_rotate_ = 0;
  std::map<std::uint64_t, net::PayloadPtr> pending_refs_;  // end_offset -> msg
  std::optional<std::uint64_t> fin_seq_;  // peer FIN position
  bool fin_received_ = false;
  std::optional<sim::TimerId> delayed_ack_timer_;

  // Callbacks.
  PlainHandler internal_established_;  // mux accept/MPTCP-attach dispatch
  PlainHandler on_established_;
  MessageHandler on_message_;
  BytesHandler on_bytes_;
  PlainHandler on_closed_;
  PlainHandler on_reset_;
  PlainHandler on_remote_close_;
  PlainHandler on_send_space_;
  MessageHandler on_payload_acked_;

  // Registry handles (aggregated across all connections).
  telemetry::Counter* m_retransmits_;
  telemetry::Counter* m_timeouts_;
  telemetry::SummaryMetric* m_rtt_ms_;

  friend class TransportMux;
};

class MptcpConnection;

/// Passive endpoint: accepts connections on a port. A listener whose
/// options set `mp_capable` accepts MPTCP sessions: mp_capable SYNs produce
/// an MptcpConnection via set_on_accept_mptcp, plain SYNs still produce
/// ordinary connections via set_on_accept.
class TcpListener {
 public:
  TcpListener(TransportMux& mux, std::uint16_t port, TcpOptions opts)
      : mux_(mux), port_(port), opts_(opts) {}

  using AcceptHandler =
      std::function<void(std::shared_ptr<TcpConnection>)>;
  using MptcpAcceptHandler =
      std::function<void(std::shared_ptr<MptcpConnection>)>;
  void set_on_accept(AcceptHandler h) { on_accept_ = std::move(h); }
  void set_on_accept_mptcp(MptcpAcceptHandler h) {
    on_accept_mptcp_ = std::move(h);
  }

  std::uint16_t port() const { return port_; }
  const TcpOptions& options() const { return opts_; }

 private:
  TransportMux& mux_;
  std::uint16_t port_;
  TcpOptions opts_;
  AcceptHandler on_accept_;
  MptcpAcceptHandler on_accept_mptcp_;

  friend class TransportMux;
};

}  // namespace hpop::transport
