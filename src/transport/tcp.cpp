#include "transport/tcp.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/trace.hpp"
#include "transport/mux.hpp"
#include "util/logging.hpp"

namespace hpop::transport {

namespace {
thread_local std::uint64_t g_packet_id = 0;
}

TcpConnection::TcpConnection(TransportMux& mux, net::Endpoint local,
                             net::Endpoint remote, TcpOptions opts,
                             bool passive)
    : mux_(mux),
      local_(local),
      remote_(remote),
      opts_(opts),
      state_(passive ? State::kSynReceived : State::kSynSent),
      peer_rwnd_(UINT64_MAX),
      rto_(opts.initial_rto) {
  cwnd_ = static_cast<double>(opts_.initial_window_segments) *
          static_cast<double>(opts_.mss);
  ssthresh_ = 1e18;  // effectively infinite until the first loss
  auto& reg = telemetry::registry();
  reg.counter("tcp.connections")->inc();
  m_retransmits_ = reg.counter("tcp.retransmits");
  m_timeouts_ = reg.counter("tcp.timeouts");
  m_rtt_ms_ = reg.summary("tcp.rtt_ms");
}

net::PooledPacket TcpConnection::base_packet() const {
  net::PooledPacket pkt = mux_.make_packet();
  pkt->src = local_.ip;
  pkt->dst = remote_.ip;
  pkt->proto = net::Proto::kTcp;
  pkt->tcp.src_port = local_.port;
  pkt->tcp.dst_port = remote_.port;
  pkt->tcp.ack = rcv_nxt_;
  pkt->tcp.ack_flag = true;
  pkt->tcp.wnd = opts_.receive_window;
  // Advertise the out-of-order ranges, capped at what real TCP options fit
  // (kMaxSackBlocks), in RFC 2018 shape: the block containing the most
  // recently received segment goes first, and the remaining slots cycle
  // through the other ranges across successive ACKs. The rotation is what
  // lets a sender rebuild the full scoreboard of a large loss burst a few
  // blocks at a time — a static pick of the same 3-4 ranges starves
  // recovery down to one retransmission per RTT.
  if (!ooo_ranges_.empty()) {
    auto& sack = pkt->tcp.sack.mutate();
    const std::size_t cap = net::TcpHeader::kMaxSackBlocks;
    sack.reserve(std::min(ooo_ranges_.size(), cap));
    std::uint64_t first_lo = UINT64_MAX;
    const auto recent = ooo_ranges_.upper_bound(last_ooo_seq_);
    if (recent != ooo_ranges_.begin()) {
      const auto r = std::prev(recent);
      if (r->first <= last_ooo_seq_ && last_ooo_seq_ < r->second) {
        sack.emplace_back(r->first, r->second);
        first_lo = r->first;
      }
    }
    auto it = ooo_ranges_.lower_bound(sack_rotate_);
    std::size_t scanned = 0;
    for (; sack.size() < cap && scanned < ooo_ranges_.size(); ++scanned) {
      if (it == ooo_ranges_.end()) it = ooo_ranges_.begin();
      if (it->first != first_lo) sack.emplace_back(it->first, it->second);
      ++it;
    }
    sack_rotate_ = it == ooo_ranges_.end() ? 0 : it->first;
  }
  pkt->id = ++g_packet_id;
  return pkt;
}

void TcpConnection::transmit(net::PooledPacket pkt) {
  mux_.send_packet(std::move(pkt));
}

void TcpConnection::start_active_open() {
  net::PooledPacket syn = base_packet();
  syn->tcp.syn = true;
  syn->tcp.ack_flag = false;
  if (opts_.mp_capable) syn->tcp.mp_capable = opts_.mptcp_token;
  if (opts_.join_token) syn->tcp.mp_join = opts_.join_token;
  transmit(std::move(syn));
  arm_rto();
}

void TcpConnection::enqueue(std::uint64_t len, net::PayloadPtr payload) {
  assert(!fin_queued_ && "send after close");
  if (len == 0 && payload == nullptr) return;
  snd_buf_end_ += len;
  send_items_.push_back(Item{snd_buf_end_, std::move(payload)});
  try_send();
}

void TcpConnection::send(net::PayloadPtr message) {
  assert(message != nullptr);
  const std::uint64_t len = message->wire_size();
  enqueue(len, std::move(message));
}

void TcpConnection::send_bytes(std::size_t n) {
  if (n == 0) return;
  enqueue(n, nullptr);
}

void TcpConnection::close() {
  if (fin_queued_ || state_ == State::kClosed) return;
  fin_queued_ = true;
  if (state_ == State::kEstablished || state_ == State::kClosing) {
    try_send();
  }
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  net::PooledPacket rst = base_packet();
  rst->tcp.rst = true;
  transmit(std::move(rst));
  fail("local abort");
}

void TcpConnection::detach() {
  disarm_rto();
  if (delayed_ack_timer_) {
    mux_.simulator().cancel(*delayed_ack_timer_);
    delayed_ack_timer_.reset();
  }
  if (state_ != State::kClosed) {
    last_error_ = "transport destroyed";
    state_ = State::kClosed;
  }
  // Break the self-capture cycles so externally-held references drain.
  on_established_ = nullptr;
  on_message_ = nullptr;
  on_bytes_ = nullptr;
  on_closed_ = nullptr;
  on_reset_ = nullptr;
  on_remote_close_ = nullptr;
  on_send_space_ = nullptr;
  on_payload_acked_ = nullptr;
}

void TcpConnection::fail(const char* reason) {
  HPOP_LOG(kDebug, "tcp") << local_.to_string() << "->" << remote_.to_string()
                          << " failed: " << reason;
  const auto self = shared_from_this();  // keep alive through unregister
  last_error_ = reason;
  disarm_rto();
  if (delayed_ack_timer_) {
    mux_.simulator().cancel(*delayed_ack_timer_);
    delayed_ack_timer_.reset();
  }
  state_ = State::kClosed;
  mux_.tcp_unregister(local_, remote_);
  if (on_reset_) {
    on_reset_();
  } else if (on_closed_) {
    on_closed_();  // apps that only watch for closure still learn of it
  }
}

std::uint64_t TcpConnection::available_window() const {
  const auto wnd = static_cast<std::uint64_t>(
      std::min(cwnd_, static_cast<double>(peer_rwnd_)));
  const std::uint64_t flight = snd_nxt_ - snd_una_;
  return flight >= wnd ? 0 : wnd - flight;
}

void TcpConnection::collect_refs_in_range(std::uint64_t seq,
                                          std::uint64_t len,
                                          net::Packet& pkt) const {
  // Items are sorted by end_offset; collect those ending in (seq, seq+len].
  const auto it = std::lower_bound(
      send_items_.begin(), send_items_.end(), seq + 1,
      [](const Item& item, std::uint64_t v) { return item.end_offset < v; });
  if (it == send_items_.end() || it->end_offset > seq + len) return;
  auto& out = pkt.messages.mutate();
  for (auto i = it; i != send_items_.end() && i->end_offset <= seq + len;
       ++i) {
    out.push_back(net::MessageRef{i->end_offset, i->payload});
  }
}

void TcpConnection::emit_segment(std::uint64_t seq, std::uint64_t len,
                                 bool retransmit) {
  net::PooledPacket pkt = base_packet();
  pkt->tcp.seq = seq;
  pkt->payload_len = len;
  collect_refs_in_range(seq, len, *pkt);
  if (retransmit) {
    ++retransmits_;
    m_retransmits_->inc();
    telemetry::tracer().emit(telemetry::TraceEvent::kTcpRetransmit,
                             static_cast<double>(seq),
                             static_cast<double>(len));
    // Karn's algorithm: never time a retransmitted sequence range.
    if (timed_seq_ && *timed_seq_ > seq && *timed_seq_ <= seq + len) {
      timed_seq_.reset();
    }
  } else if (!timed_seq_) {
    timed_seq_ = seq + len;
    timed_at_ = mux_.simulator().now();
  }
  transmit(std::move(pkt));
  arm_rto();
}

void TcpConnection::try_send() {
  if (state_ != State::kEstablished && state_ != State::kClosing) return;
  if (in_fast_recovery_) {
    send_in_recovery();
    return;
  }
  const std::uint64_t mss = opts_.mss;
  while (snd_nxt_ < snd_buf_end_) {
    const std::uint64_t space = available_window();
    if (space == 0) break;
    const std::uint64_t len =
        std::min({mss, snd_buf_end_ - snd_nxt_, space});
    emit_segment(snd_nxt_, len, snd_nxt_ < high_water_ ? true : false);
    if (snd_nxt_ + len > high_water_) high_water_ = snd_nxt_ + len;
    snd_nxt_ += len;
  }
  maybe_send_fin();
}

void TcpConnection::stash_range_node(RangeMap::node_type&& node) {
  if (range_spares_.size() < kMaxRangeSpares) {
    range_spares_.push_back(std::move(node));
  }
}

void TcpConnection::insert_range(RangeMap& m, std::uint64_t lo,
                                 std::uint64_t hi,
                                 RangeMap::node_type&& reuse) {
  if (!reuse && !range_spares_.empty()) {
    reuse = std::move(range_spares_.back());
    range_spares_.pop_back();
  }
  if (reuse) {
    reuse.key() = lo;
    reuse.mapped() = hi;
    m.insert(std::move(reuse));
  } else {
    m.emplace(lo, hi);
  }
}

void TcpConnection::update_sack_scoreboard(const net::Packet& pkt) {
  for (const auto& [lo_in, hi_in] : pkt.tcp.sack) {
    std::uint64_t lo = std::max(lo_in, snd_una_);
    std::uint64_t hi = hi_in;
    if (hi <= lo) continue;
    auto it = sacked_.lower_bound(lo);
    RangeMap::iterator host = sacked_.end();
    if (it != sacked_.begin()) {
      const auto prev = std::prev(it);
      if (prev->second >= lo) {
        if (prev->second >= hi) continue;  // block already fully covered
        host = prev;  // extend in place: the range start (the key) survives
      }
    }
    // Absorb every range the block overlaps. Nodes come out via extract,
    // not erase: one is re-used for the insert below, the rest feed the
    // spare cache — scoreboard maintenance runs per ACK during recovery
    // and must not pay an allocator round-trip per merged range.
    RangeMap::node_type reuse;
    while (it != sacked_.end() && it->first <= hi) {
      hi = std::max(hi, it->second);
      auto node = sacked_.extract(it++);
      if (reuse) {
        stash_range_node(std::move(node));
      } else {
        reuse = std::move(node);
      }
    }
    if (host != sacked_.end()) {
      host->second = hi;
      if (reuse) stash_range_node(std::move(reuse));
    } else {
      insert_range(sacked_, lo, hi, std::move(reuse));
    }
  }
  // Prune everything at or below the cumulative-ack frontier.
  while (!sacked_.empty() && sacked_.begin()->second <= snd_una_) {
    stash_range_node(sacked_.extract(sacked_.begin()));
  }
  if (!sacked_.empty() && sacked_.begin()->first < snd_una_) {
    auto node = sacked_.extract(sacked_.begin());
    if (node.mapped() > snd_una_) {
      node.key() = snd_una_;
      sacked_.insert(std::move(node));
    } else {
      stash_range_node(std::move(node));
    }
  }
}

std::uint64_t TcpConnection::sacked_bytes_in_flight() const {
  std::uint64_t total = 0;
  for (const auto& [lo, hi] : sacked_) {
    const std::uint64_t clipped_lo = std::max(lo, snd_una_);
    const std::uint64_t clipped_hi = std::min(hi, snd_nxt_);
    if (clipped_hi > clipped_lo) total += clipped_hi - clipped_lo;
  }
  return total;
}

std::pair<std::uint64_t, std::uint64_t> TcpConnection::next_hole(
    std::uint64_t from) const {
  std::uint64_t start = std::max(from, snd_una_);
  // The scoreboard is kept merged and disjoint, so at most one range can
  // contain `start`; skip past it. (A burst loss leaves thousands of
  // ranges, and this runs per retransmission — it must stay O(log n).)
  const auto it = sacked_.upper_bound(start);
  if (it != sacked_.begin()) {
    const auto prev = std::prev(it);
    if (prev->second > start) start = prev->second;
  }
  if (start >= snd_nxt_) return {start, start};
  // Hole ends at the next sacked range (or the send frontier). Ranges
  // never touch, so `it` is still the first range past the skipped one.
  std::uint64_t end = snd_nxt_;
  if (it != sacked_.end()) end = std::min(end, it->first);
  return {start, end};
}

void TcpConnection::enter_recovery() {
  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(flight / 2, 2.0 * static_cast<double>(opts_.mss));
  cwnd_ = ssthresh_;
  telemetry::tracer().emit(telemetry::TraceEvent::kTcpCwndChange, cwnd_,
                           ssthresh_, "fast_recovery");
  in_fast_recovery_ = true;
  recover_ = snd_nxt_;
  rexmit_scan_ = snd_una_;
  // Fast retransmit of the first hole, then fill as the pipe allows.
  const auto [start, end] = next_hole(snd_una_);
  if (end > start) {
    const std::uint64_t len = std::min<std::uint64_t>(opts_.mss, end - start);
    emit_segment(start, len, true);
    rexmit_scan_ = start + len;
  }
  send_in_recovery();
}

void TcpConnection::send_in_recovery() {
  // SACK-based recovery (RFC 6675 in spirit): keep the estimated pipe full
  // of hole retransmissions first, then new data. The pipe excludes both
  // SACKed bytes and bytes deemed lost (holes below the highest SACK that
  // we have not retransmitted yet — the IsLost() approximation).
  const std::uint64_t mss = opts_.mss;
  // `lost` in one ordered pass over the scoreboard (the holes below
  // `highest` not yet rescanned). A burst loss leaves thousands of holes,
  // and summing them hole-by-hole via next_hole() made recovery quadratic
  // in the scoreboard size (minutes of wall time per simulated RTT).
  const auto compute_lost = [this](std::uint64_t highest) {
    std::uint64_t lost = 0;
    if (!sacked_.empty()) {
      std::uint64_t cursor = std::max(snd_una_, rexmit_scan_);
      auto it = sacked_.upper_bound(cursor);
      if (it != sacked_.begin()) {
        const auto prev = std::prev(it);
        if (prev->second > cursor) cursor = prev->second;
      }
      while (cursor < highest) {
        const std::uint64_t gap_end =
            it == sacked_.end() ? highest : std::min(it->first, highest);
        if (gap_end > cursor) lost += gap_end - cursor;
        if (it == sacked_.end()) break;
        cursor = std::max(cursor, it->second);
        ++it;
      }
    }
    return lost;
  };
  // Pipe accounting is computed once, then kept current incrementally as
  // segments go out. That is exact while every SACKed byte sits at or
  // below the send frontier — always, except briefly after an RTO rewound
  // snd_nxt_ below survivors of the old flight; there the frontier clips
  // the sums, so fall back to recomputing per emitted segment.
  const bool incremental =
      sacked_.empty() || sacked_.rbegin()->second <= snd_nxt_;
  std::uint64_t sacked = sacked_bytes_in_flight();
  std::uint64_t highest =
      sacked_.empty() ? 0 : std::min(sacked_.rbegin()->second, snd_nxt_);
  std::uint64_t lost = compute_lost(highest);
  std::uint64_t flight = snd_nxt_ - snd_una_;
  while (true) {
    if (!incremental) {
      sacked = sacked_bytes_in_flight();
      highest = sacked_.empty() ? 0
                                : std::min(sacked_.rbegin()->second, snd_nxt_);
      lost = compute_lost(highest);
      flight = snd_nxt_ - snd_una_;
    }
    const std::uint64_t out = sacked + lost;
    const std::uint64_t pipe = flight > out ? flight - out : 0;
    const auto wnd = static_cast<std::uint64_t>(
        std::min(cwnd_, static_cast<double>(peer_rwnd_)));
    if (pipe + mss > wnd) break;

    const auto [start, end] = next_hole(rexmit_scan_);
    if (end > start && start < recover_) {
      const std::uint64_t len =
          std::min({mss, end - start, recover_ - start});
      emit_segment(start, len, true);
      rexmit_scan_ = start + len;
      // The retransmitted bytes leave the lost estimate (they are back in
      // the pipe); only the part below `highest` was ever counted.
      if (start < highest) lost -= std::min(start + len, highest) - start;
      continue;
    }
    if (snd_nxt_ < snd_buf_end_) {
      const std::uint64_t len = std::min(mss, snd_buf_end_ - snd_nxt_);
      emit_segment(snd_nxt_, len, snd_nxt_ < high_water_);
      if (snd_nxt_ + len > high_water_) high_water_ = snd_nxt_ + len;
      snd_nxt_ += len;
      flight += len;
      continue;
    }
    break;
  }
  maybe_send_fin();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_queued_ || snd_nxt_ != snd_buf_end_) return;
  if (available_window() == 0 && snd_nxt_ > snd_una_) {
    // Window exhausted; FIN goes out once acks open space.
    return;
  }
  net::PooledPacket fin = base_packet();
  fin->tcp.fin = true;
  fin->tcp.seq = snd_nxt_;
  transmit(std::move(fin));
  snd_nxt_ += 1;  // FIN consumes one sequence number
  if (snd_nxt_ > high_water_) high_water_ = snd_nxt_;
  fin_sent_ = true;
  if (state_ == State::kEstablished) state_ = State::kClosing;
  arm_rto();
}

void TcpConnection::send_ack_now() {
  if (delayed_ack_timer_) {
    mux_.simulator().cancel(*delayed_ack_timer_);
    delayed_ack_timer_.reset();
  }
  transmit(base_packet());
}

void TcpConnection::schedule_delayed_ack() {
  if (opts_.ack_delay <= 0) {
    send_ack_now();
    return;
  }
  if (delayed_ack_timer_) return;  // pending ack will carry latest rcv_nxt
  const auto self = weak_from_this();
  delayed_ack_timer_ = mux_.simulator().schedule(opts_.ack_delay, [self] {
    if (const auto conn = self.lock()) {
      conn->delayed_ack_timer_.reset();
      conn->transmit(conn->base_packet());
    }
  });
}

void TcpConnection::update_rtt(util::Duration sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const util::Duration err =
        sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = srtt_ + std::max<util::Duration>(4 * rttvar_, util::kMillisecond);
  rto_ = std::clamp(rto_, opts_.min_rto, opts_.max_rto);
  m_rtt_ms_->observe(static_cast<double>(sample) / util::kMillisecond);
}

void TcpConnection::arm_rto() {
  util::Duration effective = rto_;
  for (int i = 0; i < rto_backoff_; ++i) {
    effective = std::min(effective * 2, opts_.max_rto);
  }
  auto& sim = mux_.simulator();
  // One persistent timer per connection: every re-arm while the timer is
  // still pending is an in-place rearm (no cancel, no fresh closure); a
  // fresh schedule happens only on the first arm or after the timer fired.
  if (rto_timer_ && sim.reschedule(*rto_timer_, effective)) return;
  const auto self = weak_from_this();
  rto_timer_ = sim.schedule(effective, [self] {
    if (const auto conn = self.lock()) {
      conn->rto_timer_.reset();
      conn->on_rto();
    }
  });
}

void TcpConnection::disarm_rto() {
  if (rto_timer_) {
    mux_.simulator().cancel(*rto_timer_);
    rto_timer_.reset();
  }
}

void TcpConnection::on_rto() {
  ++timeouts_;
  m_timeouts_->inc();
  telemetry::tracer().emit(telemetry::TraceEvent::kTcpTimeout,
                           static_cast<double>(snd_una_),
                           static_cast<double>(rto_backoff_));
  if (rto_backoff_ > 10) {
    fail("too many timeouts");
    return;
  }
  ++rto_backoff_;

  if (state_ == State::kSynSent) {
    start_active_open();
    return;
  }
  if (state_ == State::kSynReceived) {
    net::PooledPacket synack = base_packet();
    synack->tcp.syn = true;
    transmit(std::move(synack));
    arm_rto();
    return;
  }

  if (snd_una_ == snd_nxt_ && !fin_queued_) return;  // nothing outstanding
  // Loss recovery by timeout: collapse to one segment, go-back-N.
  ssthresh_ = std::max(static_cast<double>(snd_nxt_ - snd_una_) / 2,
                       2.0 * static_cast<double>(opts_.mss));
  cwnd_ = static_cast<double>(opts_.mss);
  telemetry::tracer().emit(telemetry::TraceEvent::kTcpCwndChange, cwnd_,
                           ssthresh_, "rto_collapse");
  in_fast_recovery_ = false;
  dupacks_ = 0;
  timed_seq_.reset();
  // Distrust the scoreboard after a timeout (RFC 6675 §5.1); the nodes go
  // to the spare cache for the recovery traffic that follows.
  while (!sacked_.empty()) {
    stash_range_node(sacked_.extract(sacked_.begin()));
  }
  rexmit_scan_ = 0;
  snd_nxt_ = snd_una_;
  // If the FIN was outstanding it needs re-emitting once data is resent.
  fin_sent_ = fin_sent_ && snd_una_ > snd_buf_end_;
  try_send();
  arm_rto();
  // The rollback may have reopened window space (e.g. a jammed flight
  // estimate); let layered senders (MPTCP) refill.
  if (on_send_space_) on_send_space_();
}

void TcpConnection::prune_acked_items() {
  while (!send_items_.empty() && send_items_.front().end_offset <= snd_una_) {
    if (on_payload_acked_ && send_items_.front().payload) {
      on_payload_acked_(send_items_.front().payload);
    }
    send_items_.pop_front();
  }
}

void TcpConnection::on_new_ack(std::uint64_t acked) {
  const double mss = static_cast<double>(opts_.mss);
  if (cwnd_ < ssthresh_) {
    // Slow start: appropriate byte counting capped at one MSS per ACK.
    cwnd_ += std::min(static_cast<double>(acked), mss);
  } else {
    cwnd_ += mss * mss / cwnd_;
  }
}

void TcpConnection::process_ack(const net::Packet& pkt) {
  peer_rwnd_ = pkt.tcp.wnd;
  const std::uint64_t ack = pkt.tcp.ack;
  if (ack > snd_una_) {
    const std::uint64_t newly = ack - snd_una_;
    if (timed_seq_ && ack >= *timed_seq_) {
      update_rtt(mux_.simulator().now() - timed_at_);
      timed_seq_.reset();
    }
    rto_backoff_ = 0;
    snd_una_ = ack;
    // A late ack can cover data beyond snd_nxt_ after an RTO rollback
    // (the timeout was spurious). Advance the send cursor, or the flight
    // computation underflows and the window jams shut.
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    update_sack_scoreboard(pkt);
    if (in_fast_recovery_) {
      if (ack >= recover_) {
        // Full ack: recovery episode over.
        in_fast_recovery_ = false;
        dupacks_ = 0;
        cwnd_ = ssthresh_;
        telemetry::tracer().emit(telemetry::TraceEvent::kTcpCwndChange, cwnd_,
                                 ssthresh_, "recovery_exit");
      } else {
        // Partial ack: the byte at `ack` is a further hole. Retransmit it
        // even if the scan cursor already passed (that copy was lost too).
        const auto [start, end] = next_hole(snd_una_);
        if (end > start && start < recover_) {
          const std::uint64_t len =
              std::min<std::uint64_t>(opts_.mss, end - start);
          emit_segment(start, len, true);
          rexmit_scan_ = std::max(rexmit_scan_, start + len);
        }
      }
    } else {
      dupacks_ = 0;
      on_new_ack(newly);
    }
    prune_acked_items();
    if (fin_sent_ && ack >= snd_buf_end_ + 1) fin_acked_ = true;
    if (snd_una_ == snd_nxt_) {
      disarm_rto();
    } else {
      arm_rto();
    }
    try_send();
    if (on_send_space_) on_send_space_();
    maybe_finish_close();
  } else if (ack == snd_una_ && snd_nxt_ > snd_una_ && pkt.payload_len == 0 &&
             !pkt.tcp.syn && !pkt.tcp.fin) {
    update_sack_scoreboard(pkt);
    ++dupacks_;
    if (in_fast_recovery_) {
      send_in_recovery();  // newly sacked bytes shrink the pipe
    } else if (dupacks_ >= 3) {
      enter_recovery();
    }
  }
}

void TcpConnection::deliver_ready() {
  // Hand over every message whose final byte is now contiguous.
  while (!pending_refs_.empty() &&
         pending_refs_.begin()->first <= rcv_nxt_) {
    net::PayloadPtr msg = pending_refs_.begin()->second;
    pending_refs_.erase(pending_refs_.begin());
    if (msg && on_message_) on_message_(msg);
  }
}

void TcpConnection::process_data(const net::Packet& pkt) {
  const std::uint64_t seq = pkt.tcp.seq;
  const std::uint64_t len = pkt.payload_len;
  for (const auto& ref : pkt.messages) {
    if (ref.end_offset > rcv_nxt_ && ref.message) {
      pending_refs_.emplace(ref.end_offset, ref.message);
    }
  }
  const std::uint64_t old_rcv_nxt = rcv_nxt_;
  if (seq + len > rcv_nxt_) {
    // Remember where this segment landed: its (merged) range leads the
    // next ACK's SACK blocks per RFC 2018.
    last_ooo_seq_ = std::max(seq, rcv_nxt_);
    // Merge [seq, seq+len) into the out-of-order set. Same node-recycling
    // discipline as the sender's scoreboard: a left neighbour that already
    // covers the start extends in place, absorbed ranges are extracted and
    // re-used, and the insert draws from the spare cache.
    std::uint64_t lo = seq;
    std::uint64_t hi = seq + len;
    auto it = ooo_ranges_.lower_bound(lo);
    RangeMap::iterator host = ooo_ranges_.end();
    if (it != ooo_ranges_.begin()) {
      const auto prev = std::prev(it);
      if (prev->second >= lo) {
        lo = prev->first;
        hi = std::max(hi, prev->second);
        host = prev;
      }
    }
    RangeMap::node_type reuse;
    while (it != ooo_ranges_.end() && it->first <= hi) {
      hi = std::max(hi, it->second);
      auto node = ooo_ranges_.extract(it++);
      if (reuse) {
        stash_range_node(std::move(node));
      } else {
        reuse = std::move(node);
      }
    }
    if (host != ooo_ranges_.end()) {
      host->second = hi;
      if (reuse) stash_range_node(std::move(reuse));
    } else {
      insert_range(ooo_ranges_, lo, hi, std::move(reuse));
    }
    // Advance the contiguous frontier. Extracting (not erasing) the node
    // hands it to the spare cache for the next segment's insert.
    auto front = ooo_ranges_.begin();
    if (front != ooo_ranges_.end() && front->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, front->second);
      stash_range_node(ooo_ranges_.extract(front));
    }
  }
  if (rcv_nxt_ > old_rcv_nxt) {
    if (on_bytes_) on_bytes_(rcv_nxt_ - old_rcv_nxt);
    deliver_ready();
  }
  // FIN handling: the peer's FIN sits right after its last data byte.
  bool remote_closed_now = false;
  if (fin_seq_ && !fin_received_ && rcv_nxt_ == *fin_seq_) {
    rcv_nxt_ += 1;
    fin_received_ = true;
    remote_closed_now = true;
    if (state_ == State::kEstablished) state_ = State::kClosing;
  }
  schedule_delayed_ack();
  if (remote_closed_now && on_remote_close_) on_remote_close_();
  maybe_finish_close();
}

void TcpConnection::maybe_finish_close() {
  if (state_ == State::kClosed) return;
  if (fin_received_ && !fin_queued_) {
    // Passive close: once the peer finished sending, close our side after
    // the application had its chance to respond. Applications that want to
    // keep sending call close() themselves later; default echoes the close.
    // We do not auto-close: half-open connections are legal. (HTTP keeps
    // the connection open for the response.)
  }
  if (fin_received_ && fin_acked_) {
    const auto self = shared_from_this();
    disarm_rto();
    state_ = State::kClosed;
    mux_.tcp_unregister(local_, remote_);
    if (on_closed_) on_closed_();
  }
}

void TcpConnection::on_packet(const net::Packet& pkt) {
  if (pkt.tcp.rst) {
    fail("connection reset by peer");
    return;
  }

  switch (state_) {
    case State::kSynSent:
      if (pkt.tcp.syn && pkt.tcp.ack_flag) {
        state_ = State::kEstablished;
        peer_rwnd_ = pkt.tcp.wnd;
        rto_backoff_ = 0;
        disarm_rto();
        send_ack_now();
        if (on_established_) on_established_();
        try_send();
      }
      return;
    case State::kSynReceived:
      if (pkt.tcp.syn && !pkt.tcp.ack_flag) {
        // Initial or retransmitted SYN: (re-)send SYN-ACK.
        peer_rwnd_ = pkt.tcp.wnd;
        net::PooledPacket synack = base_packet();
        synack->tcp.syn = true;
        transmit(std::move(synack));
        arm_rto();
        return;
      }
      if (pkt.tcp.ack_flag) {
        state_ = State::kEstablished;
        rto_backoff_ = 0;
        disarm_rto();
        if (internal_established_) internal_established_();
        if (on_established_) on_established_();
        // Fall through to process any piggybacked data below.
      } else {
        return;
      }
      break;
    case State::kEstablished:
    case State::kClosing:
      break;
    case State::kClosed:
      return;
  }

  if (pkt.tcp.fin) {
    fin_seq_ = pkt.tcp.seq + pkt.payload_len;
  }
  if (pkt.tcp.ack_flag) process_ack(pkt);
  if (pkt.payload_len > 0 || pkt.tcp.fin) process_data(pkt);
}

}  // namespace hpop::transport
