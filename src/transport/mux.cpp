#include "transport/mux.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace hpop::transport {

TransportMux::TransportMux(net::Host& host) : host_(host) {
  host_.set_transport_handler(
      [this](net::PooledPacket pkt, net::Interface& in) {
        dispatch(std::move(pkt), in);
      });
}

TransportMux::~TransportMux() {
  host_.set_transport_handler(nullptr);
  // Applications may keep connections alive past the mux (self-capturing
  // handlers, a peer's connection map); a pending RTO on one of those
  // would fire into this freed mux. Detach them all: timers cancelled,
  // handlers cleared, no callbacks invoked.
  for (auto& [key, conn] : connections_) {
    conn->detach();
  }
  connections_.clear();
}

net::IpAddr TransportMux::default_source() const { return host_.address(); }

void TransportMux::dispatch(net::PooledPacket pkt, net::Interface& in) {
  (void)in;
  switch (pkt->proto) {
    case net::Proto::kTcp:
      handle_tcp(std::move(pkt));
      break;
    case net::Proto::kUdp:
      handle_udp(std::move(pkt));
      break;
  }
}

// --- UDP ---

std::shared_ptr<UdpSocket> TransportMux::udp_open(std::uint16_t port) {
  if (port == 0) {
    do {
      port = host_.allocate_port();
    } while (udp_.count(port) > 0);
  } else if (udp_.count(port) > 0) {
    throw std::invalid_argument("UDP port in use: " + std::to_string(port));
  }
  auto socket = std::make_shared<UdpSocket>(*this, port);
  udp_[port] = socket;
  return socket;
}

void TransportMux::udp_unregister(std::uint16_t port) { udp_.erase(port); }

void TransportMux::handle_udp(net::PooledPacket pkt) {
  const auto it = udp_.find(pkt->udp.dst_port);
  if (it == udp_.end()) {
    HPOP_LOG(kTrace, "mux") << host_.name() << ": UDP to closed port "
                            << pkt->udp.dst_port;
    return;
  }
  it->second->on_packet(*pkt);
}

// --- TCP ---

std::shared_ptr<TcpListener> TransportMux::tcp_listen(std::uint16_t port,
                                                      TcpOptions opts) {
  if (listeners_.count(port) > 0) {
    throw std::invalid_argument("TCP port in use: " + std::to_string(port));
  }
  auto listener = std::make_shared<TcpListener>(*this, port, opts);
  listeners_[port] = listener;
  return listener;
}

std::shared_ptr<TcpConnection> TransportMux::tcp_connect(net::Endpoint remote,
                                                         TcpOptions opts) {
  const net::IpAddr src = opts.bind_ip.value_or(host_.address());
  net::Endpoint local{src, opts.local_port.value_or(host_.allocate_port())};
  while (connections_.count({local, remote}) > 0) {
    local.port = host_.allocate_port();
  }
  auto conn =
      std::make_shared<TcpConnection>(*this, local, remote, opts, false);
  connections_[{local, remote}] = conn;
  conn->start_active_open();
  return conn;
}

void TransportMux::tcp_unregister(const net::Endpoint& local,
                                  const net::Endpoint& remote) {
  connections_.erase({local, remote});
}

std::shared_ptr<TcpConnection> TransportMux::create_passive(
    const net::Packet& syn, const TcpOptions& opts) {
  const net::Endpoint local = syn.dst_endpoint();
  const net::Endpoint remote = syn.src_endpoint();
  auto conn = std::make_shared<TcpConnection>(*this, local, remote, opts,
                                              /*passive=*/true);
  connections_[{local, remote}] = conn;
  return conn;
}

void TransportMux::send_rst_for(const net::Packet& pkt) {
  if (pkt.tcp.rst) return;
  net::PooledPacket rst = make_packet();
  rst->src = pkt.dst;
  rst->dst = pkt.src;
  rst->proto = net::Proto::kTcp;
  rst->tcp.src_port = pkt.tcp.dst_port;
  rst->tcp.dst_port = pkt.tcp.src_port;
  rst->tcp.rst = true;
  rst->tcp.ack = pkt.tcp.seq + pkt.payload_len;
  send_packet(std::move(rst));
}

void TransportMux::handle_tcp(net::PooledPacket pooled) {
  const net::Packet& pkt = *pooled;
  const auto key = std::make_pair(pkt.dst_endpoint(), pkt.src_endpoint());
  const auto it = connections_.find(key);
  if (it != connections_.end()) {
    // Keep the connection alive across the callback even if it
    // unregisters itself.
    const auto conn = it->second;
    conn->on_packet(pkt);
    return;
  }

  if (!(pkt.tcp.syn && !pkt.tcp.ack_flag)) {
    send_rst_for(pkt);
    return;
  }

  // Additional MPTCP subflow joining an existing session.
  if (pkt.tcp.mp_join) {
    const auto mit = mptcp_.find(*pkt.tcp.mp_join);
    const auto session = mit != mptcp_.end() ? mit->second.lock() : nullptr;
    if (session == nullptr) {
      send_rst_for(pkt);
      return;
    }
    TcpOptions opts = session->opts_.subflow;
    opts.mp_capable = false;
    opts.join_token.reset();
    opts.bind_ip = pkt.dst;
    auto conn = create_passive(pkt, opts);
    conn->internal_established_ =
        [session_wp = std::weak_ptr<MptcpConnection>(session),
         conn_wp = std::weak_ptr<TcpConnection>(conn)] {
          const auto s = session_wp.lock();
          const auto c = conn_wp.lock();
          if (s && c) s->attach_subflow(c, /*primary=*/false);
        };
    conn->on_packet(pkt);
    return;
  }

  const auto lit = listeners_.find(pkt.tcp.dst_port);
  if (lit == listeners_.end()) {
    send_rst_for(pkt);
    return;
  }
  const auto listener = lit->second;
  TcpOptions opts = listener->options();
  const bool mptcp_session = opts.mp_capable && pkt.tcp.mp_capable.has_value();
  opts.mp_capable = false;
  opts.join_token.reset();
  opts.bind_ip = pkt.dst;
  auto conn = create_passive(pkt, opts);

  if (mptcp_session) {
    const std::uint64_t token = *pkt.tcp.mp_capable;
    auto session = std::make_shared<MptcpConnection>(
        *this, token,
        MptcpOptions{listener->options(), SchedulerKind::kMinRtt},
        /*server_role=*/true);
    mptcp_register(token, session);
    session->set_remote(pkt.src_endpoint());
    conn->internal_established_ =
        [listener, session,
         conn_wp = std::weak_ptr<TcpConnection>(conn)] {
          if (const auto c = conn_wp.lock()) {
            session->attach_subflow(c, /*primary=*/true);
            if (listener->on_accept_mptcp_) listener->on_accept_mptcp_(session);
          }
        };
  } else {
    conn->internal_established_ =
        [listener, conn_wp = std::weak_ptr<TcpConnection>(conn)] {
          if (const auto c = conn_wp.lock()) {
            if (listener->on_accept_) listener->on_accept_(c);
          }
        };
  }
  conn->on_packet(pkt);
}

// --- MPTCP ---

std::shared_ptr<MptcpConnection> TransportMux::mptcp_connect(
    net::Endpoint remote, MptcpOptions opts) {
  const std::uint64_t token = fresh_token();
  auto session = std::make_shared<MptcpConnection>(*this, token, opts,
                                                   /*server_role=*/false);
  mptcp_register(token, session);
  session->set_remote(remote);
  TcpOptions sub = opts.subflow;
  sub.mp_capable = true;
  sub.mptcp_token = token;
  auto first = tcp_connect(remote, sub);
  session->attach_subflow(first, /*primary=*/true);
  return session;
}

std::shared_ptr<TcpConnection> TransportMux::open_subflow(net::Endpoint remote,
                                                          TcpOptions opts) {
  return tcp_connect(remote, opts);
}

void TransportMux::mptcp_register(std::uint64_t token,
                                  std::weak_ptr<MptcpConnection> conn) {
  mptcp_[token] = std::move(conn);
}

void TransportMux::mptcp_unregister(std::uint64_t token) {
  mptcp_.erase(token);
}

}  // namespace hpop::transport
