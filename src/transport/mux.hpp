#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "net/node.hpp"
#include "transport/mptcp.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"

namespace hpop::transport {

/// Per-host transport demultiplexer: owns the host's UDP sockets, TCP
/// listeners and connections, and MPTCP session registry, and dispatches
/// inbound packets to them. Installing a TransportMux turns a bare
/// net::Host into an end system with a socket-like API.
class TransportMux {
 public:
  explicit TransportMux(net::Host& host);
  ~TransportMux();
  TransportMux(const TransportMux&) = delete;
  TransportMux& operator=(const TransportMux&) = delete;

  net::Host& host() { return host_; }
  sim::Simulator& simulator() { return host_.simulator(); }

  // --- UDP ---
  /// port 0 allocates an ephemeral port.
  std::shared_ptr<UdpSocket> udp_open(std::uint16_t port = 0);

  // --- TCP ---
  std::shared_ptr<TcpListener> tcp_listen(std::uint16_t port,
                                          TcpOptions opts = {});
  std::shared_ptr<TcpConnection> tcp_connect(net::Endpoint remote,
                                             TcpOptions opts = {});

  // --- MPTCP ---
  std::shared_ptr<MptcpConnection> mptcp_connect(net::Endpoint remote,
                                                 MptcpOptions opts = {});

  // --- Internals used by the endpoint classes ---
  /// A fresh packet from the host's pool; endpoints build segments and
  /// datagrams in place (the slot's body buffers stay warm across reuse).
  net::PooledPacket make_packet() { return host_.packet_pool().acquire(); }
  void send_packet(net::PooledPacket pkt) { host_.send_packet(std::move(pkt)); }
  net::IpAddr default_source() const;
  void udp_unregister(std::uint16_t port);
  void tcp_unregister(const net::Endpoint& local, const net::Endpoint& remote);
  void mptcp_register(std::uint64_t token,
                      std::weak_ptr<MptcpConnection> conn);
  void mptcp_unregister(std::uint64_t token);
  /// Opens a subflow connection bound to an MPTCP session token.
  std::shared_ptr<TcpConnection> open_subflow(net::Endpoint remote,
                                              TcpOptions opts);
  std::uint64_t fresh_token() { return ++token_counter_ * 0x9e37ull + 7; }

 private:
  void dispatch(net::PooledPacket pkt, net::Interface& in);
  void handle_tcp(net::PooledPacket pkt);
  void handle_udp(net::PooledPacket pkt);
  void send_rst_for(const net::Packet& pkt);
  std::shared_ptr<TcpConnection> create_passive(const net::Packet& syn,
                                                const TcpOptions& opts);

  net::Host& host_;
  std::unordered_map<std::uint16_t, std::shared_ptr<UdpSocket>> udp_;
  std::unordered_map<std::uint16_t, std::shared_ptr<TcpListener>> listeners_;
  std::map<std::pair<net::Endpoint, net::Endpoint>,
           std::shared_ptr<TcpConnection>>
      connections_;  // (local, remote) -> connection
  std::unordered_map<std::uint64_t, std::weak_ptr<MptcpConnection>> mptcp_;
  std::uint64_t token_counter_ = 0;
};

}  // namespace hpop::transport
