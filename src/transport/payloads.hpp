#pragma once

#include <string>
#include <utility>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace hpop::transport {

/// A payload of concrete bytes (control messages, small files).
class BytesPayload : public net::Payload {
 public:
  explicit BytesPayload(util::Bytes data) : data_(std::move(data)) {}
  explicit BytesPayload(std::string_view s) : data_(util::to_bytes(s)) {}

  std::size_t wire_size() const override { return data_.size(); }
  const util::Bytes& data() const { return data_; }
  std::string text() const { return util::to_string(data_); }

 private:
  util::Bytes data_;
};

/// Synthetic bulk payload: occupies wire bytes without materializing them.
/// Bulk-transfer benches (multi-gigabyte flows) use this.
class FillerPayload : public net::Payload {
 public:
  explicit FillerPayload(std::size_t size) : size_(size) {}
  std::size_t wire_size() const override { return size_; }

 private:
  std::size_t size_;
};

}  // namespace hpop::transport
