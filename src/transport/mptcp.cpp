#include "transport/mptcp.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/trace.hpp"
#include "transport/mux.hpp"
#include "util/logging.hpp"

namespace hpop::transport {

MptcpConnection::MptcpConnection(TransportMux& mux, std::uint64_t token,
                                 MptcpOptions opts, bool server_role)
    : mux_(mux), token_(token), opts_(opts), server_role_(server_role) {
  auto& reg = telemetry::registry();
  m_sched_bytes_ = reg.counter("mptcp.sched_bytes");
  m_subflow_switches_ = reg.counter("mptcp.subflow_switches");
}

MptcpConnection::~MptcpConnection() = default;

void MptcpConnection::send(net::PayloadPtr message) {
  assert(message != nullptr);
  const std::uint64_t len = message->wire_size();
  data_end_ += len;
  send_items_.push_back(Item{data_end_, std::move(message)});
  pump();
}

void MptcpConnection::send_bytes(std::size_t n) {
  if (n == 0) return;
  data_end_ += n;
  send_items_.push_back(Item{data_end_, nullptr});
  pump();
}

void MptcpConnection::close() {
  close_requested_ = true;
  maybe_finish_close();
}

std::shared_ptr<TcpConnection> MptcpConnection::add_subflow(
    TcpOptions subflow_opts) {
  subflow_opts.join_token = token_;
  subflow_opts.mp_capable = false;
  auto conn = mux_.open_subflow(remote_, subflow_opts);
  attach_subflow(conn, /*primary=*/false);
  return conn;
}

void MptcpConnection::remove_subflow(
    const std::shared_ptr<TcpConnection>& subflow) {
  for (auto& info : subflows_) {
    if (info.conn == subflow && !info.dead) {
      info.conn->close();
      handle_subflow_death(info.conn.get());
      return;
    }
  }
}

void MptcpConnection::set_subflow_weight(
    const std::shared_ptr<TcpConnection>& sf, double w) {
  for (auto& info : subflows_) {
    if (info.conn == sf) info.weight = w;
  }
}

void MptcpConnection::attach_subflow(std::shared_ptr<TcpConnection> subflow,
                                     bool primary) {
  subflows_.push_back(SubflowInfo{subflow});
  wire_subflow(subflows_.back(), primary);
}

void MptcpConnection::wire_subflow(SubflowInfo& info, bool primary) {
  (void)primary;
  TcpConnection* raw = info.conn.get();
  const auto self = weak_from_this();

  auto mark_established = [self] {
    if (const auto s = self.lock()) {
      if (!s->established_) {
        s->established_ = true;
        if (s->on_established_) s->on_established_();
      }
      s->pump();
    }
  };
  if (info.conn->state() == TcpConnection::State::kEstablished) {
    // Server-side subflows attach after the handshake completed.
    const bool was_established = established_;
    established_ = true;
    if (!was_established && on_established_) on_established_();
  } else {
    info.conn->set_on_established(mark_established);
  }

  info.conn->set_on_message([self](net::PayloadPtr msg) {
    const auto s = self.lock();
    if (!s) return;
    if (const auto chunk =
            std::dynamic_pointer_cast<const ChunkPayload>(msg)) {
      s->on_chunk_received(*chunk);
    }
  });
  info.conn->set_on_payload_acked([self, raw](net::PayloadPtr msg) {
    const auto s = self.lock();
    if (!s) return;
    if (const auto chunk =
            std::dynamic_pointer_cast<const ChunkPayload>(msg)) {
      s->on_chunk_acked(*chunk, raw);
    }
  });
  info.conn->set_on_send_space([self] {
    if (const auto s = self.lock()) s->pump();
  });
  info.conn->set_on_remote_close([self, raw] {
    // Echo the close so the subflow's FIN handshake completes; any data we
    // still owe the subflow was already queued ahead of the FIN.
    if (const auto s = self.lock()) {
      for (auto& i : s->subflows_) {
        if (i.conn.get() == raw && !i.dead) i.conn->close();
      }
    }
  });
  info.conn->set_on_closed([self, raw] {
    if (const auto s = self.lock()) s->handle_subflow_death(raw);
  });
  info.conn->set_on_reset([self, raw] {
    if (const auto s = self.lock()) s->handle_subflow_death(raw);
  });
}

int MptcpConnection::pick_subflow() {
  // A subflow is eligible when it could put a fresh chunk on the wire now:
  // established, alive, window space beyond what it already buffers.
  auto eligible = [](const SubflowInfo& info) {
    return !info.dead &&
           info.conn->state() == TcpConnection::State::kEstablished &&
           info.conn->available_window() > info.conn->unsent_bytes();
  };

  switch (opts_.scheduler) {
    case SchedulerKind::kMinRtt: {
      int best = -1;
      util::Duration best_rtt = 0;
      for (std::size_t i = 0; i < subflows_.size(); ++i) {
        if (!eligible(subflows_[i])) continue;
        const util::Duration rtt = subflows_[i].conn->srtt();
        if (best < 0 || rtt < best_rtt) {
          best = static_cast<int>(i);
          best_rtt = rtt;
        }
      }
      return best;
    }
    case SchedulerKind::kRoundRobin: {
      for (std::size_t step = 0; step < subflows_.size(); ++step) {
        const std::size_t i = (rr_next_ + step) % subflows_.size();
        if (eligible(subflows_[i])) {
          rr_next_ = i + 1;
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    case SchedulerKind::kWeighted: {
      // Deficit-style: pick the eligible subflow furthest behind its
      // weighted share of scheduled bytes.
      int best = -1;
      double best_score = 0;
      for (std::size_t i = 0; i < subflows_.size(); ++i) {
        if (!eligible(subflows_[i]) || subflows_[i].weight <= 0) continue;
        const double score =
            static_cast<double>(subflows_[i].bytes_scheduled + 1) /
            subflows_[i].weight;
        if (best < 0 || score < best_score) {
          best = static_cast<int>(i);
          best_score = score;
        }
      }
      return best;
    }
  }
  return -1;
}

std::vector<net::MessageRef> MptcpConnection::refs_in_range(
    std::uint64_t off, std::uint64_t len) const {
  std::vector<net::MessageRef> refs;
  const auto it = std::lower_bound(
      send_items_.begin(), send_items_.end(), off + 1,
      [](const Item& item, std::uint64_t v) { return item.end_offset < v; });
  for (auto i = it; i != send_items_.end() && i->end_offset <= off + len;
       ++i) {
    refs.push_back(net::MessageRef{i->end_offset, i->payload});
  }
  return refs;
}

void MptcpConnection::pump() {
  if (!established_ || closed_) return;
  const std::uint64_t mss = opts_.subflow.mss;
  while (!reinject_.empty() || data_next_ < data_end_) {
    const int idx = pick_subflow();
    if (idx < 0) return;
    if (idx != last_subflow_) {
      if (last_subflow_ >= 0) {
        m_subflow_switches_->inc();
        telemetry::tracer().emit(telemetry::TraceEvent::kMptcpSubflowSwitch,
                                 last_subflow_, idx);
      }
      last_subflow_ = idx;
    }
    SubflowInfo& sf = subflows_[static_cast<std::size_t>(idx)];

    std::uint64_t off = 0;
    std::uint64_t len = 0;
    if (!reinject_.empty()) {
      auto& [roff, rlen] = reinject_.front();
      off = roff;
      len = std::min(rlen, mss);
      if (len == rlen) {
        reinject_.pop_front();
      } else {
        roff += len;
        rlen -= len;
      }
    } else {
      off = data_next_;
      len = std::min(mss, data_end_ - data_next_);
      data_next_ += len;
    }

    auto chunk =
        std::make_shared<ChunkPayload>(off, len, refs_in_range(off, len));
    outstanding_.push_back(OutChunk{off, len, sf.conn.get(), false});
    sf.bytes_scheduled += len;
    m_sched_bytes_->inc(len);
    sf.conn->send(std::move(chunk));
  }
  maybe_finish_close();
}

void MptcpConnection::on_chunk_acked(const ChunkPayload& chunk,
                                     TcpConnection* subflow) {
  for (auto& out : outstanding_) {
    if (out.subflow == subflow && out.data_offset == chunk.data_offset() &&
        out.length == chunk.length() && !out.acked) {
      out.acked = true;
      break;
    }
  }
  advance_data_una();
  maybe_finish_close();
}

void MptcpConnection::advance_data_una() {
  std::uint64_t una = data_next_;
  for (const auto& out : outstanding_) {
    if (!out.acked) una = std::min(una, out.data_offset);
  }
  for (const auto& [off, len] : reinject_) {
    (void)len;
    una = std::min(una, off);
  }
  if (una <= data_una_) return;
  data_una_ = una;
  // Drop bookkeeping that is entirely below the acked frontier.
  std::erase_if(outstanding_, [this](const OutChunk& out) {
    return out.acked && out.data_offset + out.length <= data_una_;
  });
  while (!send_items_.empty() &&
         send_items_.front().end_offset <= data_una_) {
    send_items_.pop_front();
  }
}

void MptcpConnection::on_chunk_received(const ChunkPayload& chunk) {
  for (const auto& ref : chunk.refs()) {
    if (ref.end_offset > data_rcv_nxt_ && ref.message) {
      pending_refs_.emplace(ref.end_offset, ref.message);
    }
  }
  const std::uint64_t old = data_rcv_nxt_;
  std::uint64_t lo = chunk.data_offset();
  std::uint64_t hi = chunk.data_end();
  if (hi > data_rcv_nxt_) {
    auto it = ooo_ranges_.lower_bound(lo);
    if (it != ooo_ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= lo) {
        lo = prev->first;
        hi = std::max(hi, prev->second);
        ooo_ranges_.erase(prev);
      }
    }
    it = ooo_ranges_.lower_bound(lo);
    while (it != ooo_ranges_.end() && it->first <= hi) {
      hi = std::max(hi, it->second);
      it = ooo_ranges_.erase(it);
    }
    ooo_ranges_[lo] = hi;
    auto front = ooo_ranges_.begin();
    if (front != ooo_ranges_.end() && front->first <= data_rcv_nxt_) {
      data_rcv_nxt_ = std::max(data_rcv_nxt_, front->second);
      ooo_ranges_.erase(front);
    }
  }
  if (data_rcv_nxt_ > old) {
    if (on_bytes_) on_bytes_(data_rcv_nxt_ - old);
    deliver_ready();
  }
}

void MptcpConnection::deliver_ready() {
  while (!pending_refs_.empty() &&
         pending_refs_.begin()->first <= data_rcv_nxt_) {
    net::PayloadPtr msg = pending_refs_.begin()->second;
    pending_refs_.erase(pending_refs_.begin());
    if (msg && on_message_) on_message_(msg);
  }
}

void MptcpConnection::handle_subflow_death(TcpConnection* subflow) {
  bool found = false;
  for (auto& info : subflows_) {
    if (info.conn.get() == subflow && !info.dead) {
      info.dead = true;
      found = true;
    }
  }
  if (!found) {
    maybe_finish_close();
    return;
  }
  // Reinject this subflow's unacked chunks onto the survivors (§IV-C:
  // "transparently recovering the affected packets over the remaining
  // subflows").
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->subflow == subflow && !it->acked) {
      reinject_.emplace_back(it->data_offset, it->length);
      it = outstanding_.erase(it);
    } else {
      ++it;
    }
  }
  HPOP_LOG(kDebug, "mptcp") << "subflow death; reinjecting "
                            << reinject_.size() << " chunks";
  pump();
  maybe_finish_close();
}

void MptcpConnection::maybe_finish_close() {
  if (closed_) return;
  // All subflows dead => session over regardless of intent.
  bool all_dead = !subflows_.empty();
  for (const auto& info : subflows_) {
    if (!info.dead) all_dead = false;
  }
  const bool data_drained = close_requested_ && data_una_ == data_end_ &&
                            data_next_ == data_end_ && reinject_.empty();
  if (data_drained) {
    for (auto& info : subflows_) {
      if (!info.dead) info.conn->close();
    }
  }
  if (all_dead || (data_drained && subflows_.empty())) {
    closed_ = true;
    mux_.mptcp_unregister(token_);
    // Clean only if the app asked to close and every queued byte was
    // data-acked; anything else (a waypoint crash killing all subflows)
    // is a failure the caller must hear about.
    const bool clean = close_requested_ && data_una_ == data_end_;
    if (!clean) {
      last_error_ = "all subflows lost";
      if (on_reset_) {
        on_reset_();
        return;
      }
    }
    if (on_closed_) on_closed_();
  }
}

}  // namespace hpop::transport
