#include "attic/wrap_driver.hpp"

#include "util/logging.hpp"

namespace hpop::attic {

void WrapDriver::open(const std::string& path, OpenCallback cb, bool create) {
  if (offline_) {
    const auto it = cache_.find(path);
    if (it == cache_.end() && !create) {
      cb(util::Result<Fd>::failure("offline_miss",
                                   "offline and no cached copy"));
      return;
    }
    OpenFile file;
    file.path = path;
    if (it != cache_.end()) {
      file.content = it->second.content;
      file.etag = it->second.etag;
    }
    const Fd fd = next_fd_++;
    open_[fd] = std::move(file);
    cb(fd);
    return;
  }

  attic_.get(path, [this, path, cb, create](
                       util::Result<AtticClient::File> result) {
    OpenFile file;
    file.path = path;
    if (result.ok()) {
      file.content = result.value().content;
      file.etag = result.value().etag;
      cache_[path] = {file.content, file.etag};
    } else if (result.error().code == "not_found" && create) {
      // O_CREAT: empty new file, no remote version yet.
    } else {
      cb(util::Result<Fd>(result.error()));
      return;
    }
    const Fd fd = next_fd_++;
    open_[fd] = std::move(file);
    cb(fd);
  });
}

util::Result<http::Body> WrapDriver::read(Fd fd) const {
  const auto it = open_.find(fd);
  if (it == open_.end()) {
    return util::Result<http::Body>::failure("bad_fd", "not open");
  }
  return it->second.content;
}

util::Status WrapDriver::write(Fd fd, http::Body content) {
  const auto it = open_.find(fd);
  if (it == open_.end()) {
    return util::Status::failure("bad_fd", "not open");
  }
  it->second.content = std::move(content);
  it->second.dirty = true;
  return util::Status::success();
}

void WrapDriver::close(Fd fd, CloseCallback cb) {
  const auto it = open_.find(fd);
  if (it == open_.end()) {
    if (cb) cb(util::Status::failure("bad_fd", "not open"));
    return;
  }
  OpenFile file = std::move(it->second);
  open_.erase(it);

  if (!file.dirty) {
    if (cb) cb(util::Status::success());
    return;
  }
  cache_[file.path] = {file.content, file.etag};

  if (offline_) {
    pending_[file.path] = {file.content, file.etag};
    if (cb) cb(util::Status::success());  // queued, not lost
    return;
  }

  attic_.put(
      file.path, file.content,
      [this, path = file.path, content = file.content,
       cb](util::Result<std::string> etag) {
        if (etag.ok()) {
          cache_[path].etag = etag.value();
          if (cb) cb(util::Status::success());
        } else if (etag.error().code == "connection_failed" ||
                   etag.error().code == "timeout") {
          // The network went away mid-close: behave as an offline close.
          pending_[path] = cache_[path];
          if (cb) cb(util::Status::success());
        } else {
          if (cb) cb(util::Status(etag.error()));
        }
      },
      /*if_match=*/file.etag);
}

void WrapDriver::reconcile(ReconcileCallback cb) {
  if (pending_.empty()) {
    cb(0, 0);
    return;
  }
  // Shared countdown across the parallel pushes.
  struct Progress {
    int remaining;
    int pushed = 0;
    int conflicts = 0;
    ReconcileCallback cb;
  };
  auto progress = std::make_shared<Progress>();
  progress->remaining = static_cast<int>(pending_.size());
  progress->cb = std::move(cb);

  auto pending = std::move(pending_);
  pending_.clear();

  for (auto& [path, copy] : pending) {
    attic_.put(
        path, copy.content,
        [this, path, copy, progress](util::Result<std::string> etag) {
          if (etag.ok()) {
            ++progress->pushed;
            cache_[path].etag = etag.value();
          } else if (etag.error().code == "conflict") {
            // Someone else updated the file while we were offline: the
            // remote version wins, ours survives as a conflict copy.
            ++progress->conflicts;
            attic_.put(path + ".conflict", copy.content,
                       [](util::Result<std::string>) {});
          } else {
            // Still unreachable: keep it queued for the next attempt.
            pending_[path] = copy;
          }
          if (--progress->remaining == 0) {
            progress->cb(progress->pushed, progress->conflicts);
          }
        },
        /*if_match=*/copy.etag);
  }
}

}  // namespace hpop::attic
