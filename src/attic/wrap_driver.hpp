#pragma once

#include <functional>
#include <map>
#include <string>

#include "attic/client.hpp"

namespace hpop::attic {

/// Reproduces the paper's linker-interposition driver (§IV-A Architecture):
/// applications relinked with `--wrap` have open/fopen redirected here — a
/// GET materializes a local copy, reads and writes run on that copy, and
/// close PUTs it back to the attic. "No change to the application code is
/// required."
///
/// Also implements the offline mode sketched in §IV-A "Flexible Access":
/// when the attic is unreachable, opens fall back to the local copy and
/// dirty closes queue for reconciliation; reconcile() pushes them with
/// If-Match so concurrent remote edits surface as conflict copies rather
/// than silent lost updates.
class WrapDriver {
 public:
  explicit WrapDriver(AtticClient& attic) : attic_(attic) {}

  using Fd = int;
  using OpenCallback = std::function<void(util::Result<Fd>)>;
  using CloseCallback = std::function<void(util::Status)>;

  /// __wrap_open: fetches the file (or creates it with O_CREAT semantics
  /// when `create`), returning a descriptor onto the local copy.
  void open(const std::string& path, OpenCallback cb, bool create = false);

  /// Reads the local copy. Valid between open and close.
  util::Result<http::Body> read(Fd fd) const;
  /// Replaces the local copy's contents and marks it dirty.
  util::Status write(Fd fd, http::Body content);

  /// __wrap_close: PUTs dirty files back to the attic; clean closes are
  /// local-only (the paper's driver only writes back on close).
  void close(Fd fd, CloseCallback cb = nullptr);

  /// Offline/online switch (network loss, HPoP reboot).
  void set_offline(bool offline) { offline_ = offline; }
  bool offline() const { return offline_; }

  /// Pushes every queued offline write. Files whose remote etag moved
  /// since our copy produce a conflict: the remote wins and our version is
  /// saved as "<path>.conflict".
  using ReconcileCallback =
      std::function<void(int pushed, int conflicts)>;
  void reconcile(ReconcileCallback cb);

  std::size_t open_files() const { return open_.size(); }
  std::size_t pending_sync() const { return pending_.size(); }

 private:
  struct OpenFile {
    std::string path;
    http::Body content;
    std::string etag;  // etag of the version we fetched
    bool dirty = false;
  };
  struct CachedCopy {
    http::Body content;
    std::string etag;
  };

  AtticClient& attic_;
  bool offline_ = false;
  Fd next_fd_ = 3;  // 0-2 taken, as tradition demands
  std::map<Fd, OpenFile> open_;
  /// Last-known-good local copies (the offline working set).
  std::map<std::string, CachedCopy> cache_;
  /// path -> dirty content awaiting reconciliation.
  std::map<std::string, CachedCopy> pending_;
};

}  // namespace hpop::attic
