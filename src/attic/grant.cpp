#include "attic/grant.hpp"

#include <sstream>

#include "attic/webdav.hpp"
#include "telemetry/telemetry.hpp"
#include "util/encoding.hpp"

namespace hpop::attic {

std::string ProviderGrant::encode() const {
  std::ostringstream os;
  os << attic_endpoint.ip.value << ":" << attic_endpoint.port << "|"
     << capability << "|" << directory;
  return util::base64_encode(util::to_bytes(os.str()));
}

util::Result<ProviderGrant> ProviderGrant::decode(const std::string& qr) {
  const auto raw = util::base64_decode(qr);
  if (!raw.ok()) {
    return util::Result<ProviderGrant>::failure("bad_encoding",
                                                "QR payload not base64");
  }
  const std::string text = util::to_string(raw.value());
  const auto bar1 = text.find('|');
  const auto bar2 = text.find('|', bar1 + 1);
  if (bar1 == std::string::npos || bar2 == std::string::npos) {
    return util::Result<ProviderGrant>::failure("bad_format",
                                                "wrong field count");
  }
  ProviderGrant grant;
  const std::string ep = text.substr(0, bar1);
  const auto colon = ep.find(':');
  if (colon == std::string::npos) {
    return util::Result<ProviderGrant>::failure("bad_format", "bad endpoint");
  }
  grant.attic_endpoint.ip =
      net::IpAddr(static_cast<std::uint32_t>(std::stoul(ep.substr(0, colon))));
  grant.attic_endpoint.port =
      static_cast<std::uint16_t>(std::stoul(ep.substr(colon + 1)));
  grant.capability = text.substr(bar1 + 1, bar2 - bar1 - 1);
  grant.directory = text.substr(bar2 + 1);
  return grant;
}

ProviderGrant issue_provider_grant(AtticService& attic,
                                   const std::string& provider_name,
                                   util::Duration validity) {
  core::Hpop& hpop = attic.hpop();
  const std::string directory = "/records/" + provider_name;
  attic.store().mkdir(directory);

  const auto cap = hpop.tokens().issue(
      hpop.household(), directory, /*allow_write=*/true,
      hpop.simulator().now() + validity);
  telemetry::registry().counter("attic.grants_issued")->inc();
  telemetry::tracer().emit(telemetry::TraceEvent::kAtticGrantIssued,
                           static_cast<double>(cap.serial));

  ProviderGrant grant;
  // Prefer the public advertisement (post-boot); fall back to the direct
  // address for appliances on open networks that never needed traversal.
  grant.attic_endpoint =
      hpop.advertisement().method == traversal::ReachMethod::kUnreachable
          ? net::Endpoint{hpop.host().address(), hpop.service_port()}
          : hpop.advertisement().endpoint;
  grant.capability = core::TokenAuthority::encode(cap);
  grant.directory = directory;
  return grant;
}

}  // namespace hpop::attic
