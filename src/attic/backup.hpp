#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attic/client.hpp"
#include "telemetry/metrics.hpp"
#include "util/erasure.hpp"

namespace hpop::attic {

/// Symmetric encryption for backup shards: HMAC-SHA256 counter-mode
/// keystream XORed over the plaintext, with an integrity MAC. (A stand-in
/// for AES-GCM with the same interface obligations: confidentiality from
/// the key, tamper detection from the tag.)
struct Sealed {
  util::Bytes ciphertext;
  std::uint64_t nonce = 0;
  util::Digest mac{};
};
Sealed seal(const util::Bytes& key, const util::Bytes& plaintext,
            std::uint64_t nonce);
util::Result<util::Bytes> unseal(const util::Bytes& key, const Sealed& box);

/// §IV-A "Data Availability": "replicating the entire HPoP to attics
/// belonging to friends and relatives, or redundantly encoding the
/// contents — e.g., using erasure codes — and storing pieces with a
/// variety of peers."
///
/// Shards are encrypted before leaving the home, placed under
/// /backup/<owner>/<file-key>/shard-<i> in peer attics, and a local
/// manifest records how to reassemble. restore() succeeds whenever at
/// least k of the k+m shard-holding peers respond.
class BackupManager {
 public:
  enum class Strategy { kReplication, kErasure };

  BackupManager(std::string owner, http::HttpClient& http,
                util::Bytes key)
      : owner_(std::move(owner)), http_(http), key_(std::move(key)) {
    auto& reg = telemetry::registry();
    m_shards_written_ = reg.counter("attic.backup.shards_written");
    m_shard_write_failures_ = reg.counter("attic.backup.shard_write_failures");
    m_restores_ok_ = reg.counter("attic.backup.restores_ok");
    m_restores_failed_ = reg.counter("attic.backup.restores_failed");
    m_erasure_repairs_ = reg.counter("attic.backup.erasure_repairs");
  }

  /// Registers a peer attic (friend/relative HPoP) with a capability
  /// scoped to our backup directory there.
  void add_peer(net::Endpoint endpoint, const std::string& capability);
  std::size_t peers() const { return peers_.size(); }

  using BackupCallback = std::function<void(util::Status)>;
  /// Replication: k=1, writes `m`+1 full encrypted copies. Erasure: writes
  /// k+m Reed-Solomon shards, one per peer (round-robin placement).
  void backup(const std::string& file_key, const http::Body& content,
              Strategy strategy, int k, int m, BackupCallback cb);

  using RestoreCallback = std::function<void(util::Result<http::Body>)>;
  void restore(const std::string& file_key, RestoreCallback cb);

  struct ManifestEntry {
    Strategy strategy = Strategy::kErasure;
    int k = 1;
    int m = 0;
    std::size_t original_size = 0;
    bool synthetic = false;
    std::uint64_t synthetic_tag = 0;
    std::uint64_t nonce = 0;
    util::Digest content_digest{};
    /// shard index -> peer index (into peers_).
    std::vector<int> placement;
  };
  const std::map<std::string, ManifestEntry>& manifest() const {
    return manifest_;
  }

  struct Stats {
    std::uint64_t shards_written = 0;
    std::uint64_t shard_write_failures = 0;
    std::uint64_t restores_ok = 0;
    std::uint64_t restores_failed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Peer {
    net::Endpoint endpoint;
    std::unique_ptr<AtticClient> client;
  };
  std::string shard_path(const std::string& file_key, int index) const;

  std::string owner_;
  http::HttpClient& http_;
  util::Bytes key_;
  std::vector<Peer> peers_;
  std::map<std::string, ManifestEntry> manifest_;
  std::uint64_t next_nonce_ = 1;
  std::size_t next_peer_ = 0;
  Stats stats_;

  // Registry handles (aggregated across all backup managers).
  telemetry::Counter* m_shards_written_;
  telemetry::Counter* m_shard_write_failures_;
  telemetry::Counter* m_restores_ok_;
  telemetry::Counter* m_restores_failed_;
  telemetry::Counter* m_erasure_repairs_;
};

}  // namespace hpop::attic
