#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attic/client.hpp"
#include "durable/wal.hpp"
#include "telemetry/metrics.hpp"
#include "util/erasure.hpp"

namespace hpop::attic {

/// Symmetric encryption for backup shards: HMAC-SHA256 counter-mode
/// keystream XORed over the plaintext, with an integrity MAC. (A stand-in
/// for AES-GCM with the same interface obligations: confidentiality from
/// the key, tamper detection from the tag.)
struct Sealed {
  util::Bytes ciphertext;
  std::uint64_t nonce = 0;
  util::Digest mac{};
};
Sealed seal(const util::Bytes& key, const util::Bytes& plaintext,
            std::uint64_t nonce);
util::Result<util::Bytes> unseal(const util::Bytes& key, const Sealed& box);

/// §IV-A "Data Availability": "replicating the entire HPoP to attics
/// belonging to friends and relatives, or redundantly encoding the
/// contents — e.g., using erasure codes — and storing pieces with a
/// variety of peers."
///
/// Shards are encrypted before leaving the home, placed under
/// /backup/<owner>/<file-key>/shard-<i> in peer attics, and a local
/// manifest records how to reassemble. restore() succeeds whenever at
/// least k of the k+m shard-holding peers respond.
class BackupManager {
 public:
  enum class Strategy { kReplication, kErasure };

  BackupManager(std::string owner, http::HttpClient& http,
                util::Bytes key)
      : owner_(std::move(owner)), http_(http), key_(std::move(key)) {
    auto& reg = telemetry::registry();
    m_shards_written_ = reg.counter("attic.backup.shards_written");
    m_shard_write_failures_ = reg.counter("attic.backup.shard_write_failures");
    m_restores_ok_ = reg.counter("attic.backup.restores_ok");
    m_restores_failed_ = reg.counter("attic.backup.restores_failed");
    m_erasure_repairs_ = reg.counter("attic.backup.erasure_repairs");
    m_shards_repaired_ = reg.counter("attic.backup.shards_repaired");
  }

  /// Registers a peer attic (friend/relative HPoP) with a capability
  /// scoped to our backup directory there.
  void add_peer(net::Endpoint endpoint, const std::string& capability);
  std::size_t peers() const { return peers_.size(); }

  using BackupCallback = std::function<void(util::Status)>;
  /// Replication: k=1, writes `m`+1 full encrypted copies. Erasure: writes
  /// k+m Reed-Solomon shards, one per peer (round-robin placement).
  void backup(const std::string& file_key, const http::Body& content,
              Strategy strategy, int k, int m, BackupCallback cb);

  using RestoreCallback = std::function<void(util::Result<http::Body>)>;
  void restore(const std::string& file_key, RestoreCallback cb);

  // --- Incremental-since-epoch backup sessions ---
  //
  // Instead of re-shipping the whole object every time, a session ships
  // only the WAL records appended since the previous session (the epoch
  // delta), with a periodic full snapshot bounding the restore chain.
  // Restore = full image + delta replay, reassembled into one WAL byte
  // image the owning service feeds through its usual recovery scan.

  struct SessionConfig {
    Strategy strategy = Strategy::kErasure;
    int k = 2;
    int m = 1;
    /// A full image every Nth session (session 0 is always full); deltas
    /// in between. Also forced full when the WAL was compacted past the
    /// last session's epoch (the delta chain no longer exists).
    int full_every = 4;
  };

  struct SessionInfo {
    std::uint64_t session = 0;
    bool full = false;
    std::uint64_t payload_bytes = 0;  // pre-encoding WAL bytes shipped
    std::uint64_t epoch = 0;          // epoch boundary this session closed
  };
  using SessionCallback = std::function<void(util::Result<SessionInfo>)>;
  /// Ships one backup session for `key` from `wal` (closing the current
  /// epoch, so later appends land in the next session). An empty delta
  /// still records a session (zero payload, nothing shipped).
  void backup_session(const std::string& key, durable::Wal& wal,
                      const SessionConfig& config, SessionCallback cb);

  using ImageCallback = std::function<void(util::Result<util::Bytes>)>;
  /// Reassembles the latest full image plus every delta since, in order.
  /// The result is a valid WAL byte image: scan_records()/recover() apply
  /// it exactly as if it were read off the home device.
  void restore_session(const std::string& key, ImageCallback cb);

  struct SessionStats {
    std::uint64_t sessions = 0;
    std::uint64_t full_sessions = 0;
    std::uint64_t delta_sessions = 0;
    std::uint64_t full_bytes = 0;   // pre-encoding payload bytes
    std::uint64_t delta_bytes = 0;
  };
  const SessionStats& session_stats() const { return session_stats_; }

  /// Probes every registered peer attic (a cheap LIST of our backup
  /// directory); alive[i] is true when peer i answered at all — an error
  /// status still proves liveness, only transport failures do not.
  using ProbeCallback = std::function<void(std::vector<bool> alive)>;
  void probe_peers(ProbeCallback cb);

  struct RepairReport {
    int shards_checked = 0;
    int shards_missing = 0;   // unreachable or lost at audit time
    int shards_repaired = 0;  // re-encoded and rewritten onto live peers
    int placements_moved = 0; // shards relocated off a dead peer
  };
  using RepairCallback = std::function<void(util::Result<RepairReport>)>;
  /// Proactive repair (the flip side of restore-time reconstruction):
  /// audits every shard of `file_key`, and if some are missing but at
  /// least k survive, re-encodes the lost shards and writes them to live
  /// peers — moving placement off dead peers. The manifest is updated so
  /// later restores read the repaired locations. Fails with
  /// "insufficient_shards" when fewer than k shards remain.
  void check_and_repair(const std::string& file_key, RepairCallback cb);

  struct ManifestEntry {
    Strategy strategy = Strategy::kErasure;
    int k = 1;
    int m = 0;
    std::size_t original_size = 0;
    bool synthetic = false;
    std::uint64_t synthetic_tag = 0;
    std::uint64_t nonce = 0;
    util::Digest content_digest{};
    /// Per-shard digests, validated at restore/repair time: a fetched
    /// shard whose bytes do not match is treated as missing, so a single
    /// corrupted shard flows down the same reconstruction path as a lost
    /// one instead of poisoning the decode.
    std::vector<util::Digest> shard_digests;
    /// shard index -> peer index (into peers_).
    std::vector<int> placement;
  };
  const std::map<std::string, ManifestEntry>& manifest() const {
    return manifest_;
  }

  struct Stats {
    std::uint64_t shards_written = 0;
    std::uint64_t shard_write_failures = 0;
    std::uint64_t restores_ok = 0;
    std::uint64_t restores_failed = 0;
    std::uint64_t shards_repaired = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Peer {
    net::Endpoint endpoint;
    std::unique_ptr<AtticClient> client;
  };
  /// Chain bookkeeping for one session key: which piece file-keys must be
  /// reassembled (full first, deltas in order) and where the next delta
  /// starts.
  struct SessionState {
    std::uint64_t next = 0;
    std::uint64_t base_epoch = 0;
    std::vector<std::string> pieces;
  };
  std::string shard_path(const std::string& file_key, int index) const;

  std::string owner_;
  http::HttpClient& http_;
  util::Bytes key_;
  std::vector<Peer> peers_;
  std::map<std::string, ManifestEntry> manifest_;
  std::map<std::string, SessionState> sessions_;
  std::uint64_t next_nonce_ = 1;
  std::size_t next_peer_ = 0;
  Stats stats_;
  SessionStats session_stats_;

  // Registry handles (aggregated across all backup managers).
  telemetry::Counter* m_shards_written_;
  telemetry::Counter* m_shard_write_failures_;
  telemetry::Counter* m_restores_ok_;
  telemetry::Counter* m_restores_failed_;
  telemetry::Counter* m_erasure_repairs_;
  telemetry::Counter* m_shards_repaired_;
};

}  // namespace hpop::attic
