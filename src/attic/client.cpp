#include "attic/client.hpp"

#include "attic/webdav.hpp"

namespace hpop::attic {

http::Request AtticClient::base(http::Method method,
                                const std::string& path) const {
  http::Request req;
  req.method = method;
  req.path = std::string(AtticService::kPrefix) + path;
  req.headers.set("X-Capability", capability_);
  return req;
}

namespace {
util::Error to_error(const http::Response& resp, const std::string& what) {
  switch (resp.status) {
    case 401: return {"unauthorized", what};
    case 403: return {"forbidden", what};
    case 404: return {"not_found", what};
    case 412: return {"conflict", what + ": etag mismatch"};
    case 423: return {"locked", what + ": path locked"};
    case 507: return {"quota_exceeded", what};
    default:
      return {"http_" + std::to_string(resp.status), what};
  }
}
}  // namespace

void AtticClient::get(const std::string& path, FileCallback cb) {
  http_.fetch(endpoint_, base(http::Method::kGet, path),
              [cb](util::Result<http::Response> result) {
                if (!result.ok()) {
                  cb(util::Result<File>(result.error()));
                  return;
                }
                const http::Response& resp = result.value();
                if (!resp.ok()) {
                  cb(util::Result<File>(to_error(resp, "GET failed")));
                  return;
                }
                cb(File{resp.body, resp.headers.get("etag").value_or("")});
              });
}

void AtticClient::get_range(const std::string& path, std::size_t offset,
                            std::size_t length, FileCallback cb) {
  http::Request req = base(http::Method::kGet, path);
  http::set_range(req.headers, offset, length);
  http_.fetch(endpoint_, std::move(req),
              [cb](util::Result<http::Response> result) {
                if (!result.ok()) {
                  cb(util::Result<File>(result.error()));
                  return;
                }
                const http::Response& resp = result.value();
                if (!resp.ok()) {
                  cb(util::Result<File>(to_error(resp, "range GET failed")));
                  return;
                }
                cb(File{resp.body, resp.headers.get("etag").value_or("")});
              });
}

void AtticClient::put(const std::string& path, http::Body content,
                      EtagCallback cb, const std::string& if_match,
                      const std::string& lock_token) {
  http::Request req = base(http::Method::kPut, path);
  req.body = std::move(content);
  if (!if_match.empty()) req.headers.set("If-Match", if_match);
  if (!lock_token.empty()) req.headers.set("If", lock_token);
  http_.fetch(endpoint_, std::move(req),
              [cb](util::Result<http::Response> result) {
                if (!result.ok()) {
                  cb(util::Result<std::string>(result.error()));
                  return;
                }
                const http::Response& resp = result.value();
                if (!resp.ok()) {
                  cb(util::Result<std::string>(to_error(resp, "PUT failed")));
                  return;
                }
                cb(resp.headers.get("etag").value_or(""));
              });
}

void AtticClient::remove(const std::string& path, StatusCallback cb) {
  http_.fetch(endpoint_, base(http::Method::kDelete, path),
              [cb](util::Result<http::Response> result) {
                if (!result.ok()) {
                  cb(util::Status(result.error()));
                  return;
                }
                cb(result.value().ok()
                       ? util::Status::success()
                       : util::Status(to_error(result.value(),
                                               "DELETE failed")));
              });
}

void AtticClient::mkdir(const std::string& path, StatusCallback cb) {
  http_.fetch(endpoint_, base(http::Method::kMkcol, path),
              [cb](util::Result<http::Response> result) {
                if (!result.ok()) {
                  cb(util::Status(result.error()));
                  return;
                }
                cb(result.value().ok()
                       ? util::Status::success()
                       : util::Status(to_error(result.value(),
                                               "MKCOL failed")));
              });
}

void AtticClient::list(const std::string& path, ListCallback cb) {
  http_.fetch(
      endpoint_, base(http::Method::kPropfind, path),
      [cb](util::Result<http::Response> result) {
        if (!result.ok()) {
          cb(util::Result<std::vector<std::string>>(result.error()));
          return;
        }
        const http::Response& resp = result.value();
        if (resp.status != 207) {
          cb(util::Result<std::vector<std::string>>(
              to_error(resp, "PROPFIND failed")));
          return;
        }
        std::vector<std::string> entries;
        const std::string body = resp.body.text();
        std::size_t start = 0;
        while (start < body.size()) {
          const std::size_t end = body.find('\n', start);
          const std::string line =
              body.substr(start, end == std::string::npos
                                     ? std::string::npos
                                     : end - start);
          if (!line.empty()) entries.push_back(line);
          if (end == std::string::npos) break;
          start = end + 1;
        }
        cb(entries);
      });
}

void AtticClient::lock(const std::string& path, LockCallback cb) {
  http_.fetch(endpoint_, base(http::Method::kLock, path),
              [cb](util::Result<http::Response> result) {
                if (!result.ok()) {
                  cb(util::Result<std::string>(result.error()));
                  return;
                }
                const http::Response& resp = result.value();
                if (!resp.ok()) {
                  cb(util::Result<std::string>(
                      to_error(resp, "LOCK failed")));
                  return;
                }
                cb(resp.headers.get("lock-token").value_or(""));
              });
}

void AtticClient::unlock(const std::string& path, const std::string& token,
                         StatusCallback cb) {
  http::Request req = base(http::Method::kUnlock, path);
  req.headers.set("Lock-Token", token);
  http_.fetch(endpoint_, std::move(req),
              [cb](util::Result<http::Response> result) {
                if (!result.ok()) {
                  cb(util::Status(result.error()));
                  return;
                }
                cb(result.value().status == 204
                       ? util::Status::success()
                       : util::Status(to_error(result.value(),
                                               "UNLOCK failed")));
              });
}

}  // namespace hpop::attic
