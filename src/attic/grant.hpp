#pragma once

#include <string>

#include "hpop/appliance.hpp"

namespace hpop::attic {

class AtticService;

/// The §IV-A1 bootstrap artifact: "the data attic will issue a QR code that
/// includes all information needed to access the correct portion of the
/// user's data attic — i.e., everything from the IP address of the data
/// attic to the proper initial credentials to the location of the files
/// within the attic."
///
/// We carry the same triple {endpoint, capability, directory}; encode()
/// yields the string a QR code would hold.
struct ProviderGrant {
  net::Endpoint attic_endpoint;
  std::string capability;  // encoded, scoped to the provider directory
  std::string directory;   // e.g. "/records/mercy-hospital"

  std::string encode() const;
  static util::Result<ProviderGrant> decode(const std::string& qr);
};

/// Issues a grant for a named provider: creates the provider's directory
/// and a write-scoped capability, bound to the HPoP's current public
/// endpoint.
ProviderGrant issue_provider_grant(AtticService& attic,
                                   const std::string& provider_name,
                                   util::Duration validity = 365 *
                                                             util::kDay);

}  // namespace hpop::attic
