#include "attic/backup.hpp"

#include <cstdio>

#include "telemetry/trace.hpp"
#include "util/encoding.hpp"
#include "util/logging.hpp"

namespace hpop::attic {

namespace {
/// HMAC(key, nonce || counter) expanded into a keystream.
util::Bytes keystream(const util::Bytes& key, std::uint64_t nonce,
                      std::size_t length) {
  util::Bytes stream;
  stream.reserve(length + 32);
  std::uint64_t counter = 0;
  while (stream.size() < length) {
    char block_input[48];
    std::snprintf(block_input, sizeof block_input, "ks:%llu:%llu",
                  static_cast<unsigned long long>(nonce),
                  static_cast<unsigned long long>(counter++));
    const util::Digest block =
        util::hmac_sha256(key, std::string_view(block_input));
    stream.insert(stream.end(), block.begin(), block.end());
  }
  stream.resize(length);
  return stream;
}
}  // namespace

Sealed seal(const util::Bytes& key, const util::Bytes& plaintext,
            std::uint64_t nonce) {
  Sealed box;
  box.nonce = nonce;
  const util::Bytes stream = keystream(key, nonce, plaintext.size());
  box.ciphertext.resize(plaintext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    box.ciphertext[i] = plaintext[i] ^ stream[i];
  }
  util::Bytes mac_input = box.ciphertext;
  const std::string nonce_str = "|" + std::to_string(nonce);
  mac_input.insert(mac_input.end(), nonce_str.begin(), nonce_str.end());
  box.mac = util::hmac_sha256(key, mac_input);
  return box;
}

util::Result<util::Bytes> unseal(const util::Bytes& key, const Sealed& box) {
  util::Bytes mac_input = box.ciphertext;
  const std::string nonce_str = "|" + std::to_string(box.nonce);
  mac_input.insert(mac_input.end(), nonce_str.begin(), nonce_str.end());
  if (!util::digest_equal(box.mac, util::hmac_sha256(key, mac_input))) {
    return util::Result<util::Bytes>::failure("tampered",
                                              "backup MAC mismatch");
  }
  const util::Bytes stream = keystream(key, box.nonce, box.ciphertext.size());
  util::Bytes plaintext(box.ciphertext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    plaintext[i] = box.ciphertext[i] ^ stream[i];
  }
  return plaintext;
}

void BackupManager::add_peer(net::Endpoint endpoint,
                             const std::string& capability) {
  Peer peer;
  peer.endpoint = endpoint;
  peer.client = std::make_unique<AtticClient>(http_, endpoint, capability);
  peers_.push_back(std::move(peer));
}

std::string BackupManager::shard_path(const std::string& file_key,
                                      int index) const {
  return "/backup/" + owner_ + "/" + file_key + "/shard-" +
         std::to_string(index);
}

void BackupManager::backup(const std::string& file_key,
                           const http::Body& content, Strategy strategy,
                           int k, int m, BackupCallback cb) {
  if (strategy == Strategy::kReplication) k = 1;
  const int total = k + m;
  if (static_cast<std::size_t>(total) > peers_.size()) {
    cb(util::Status::failure("not_enough_peers",
                             "need " + std::to_string(total) + " peers"));
    return;
  }

  ManifestEntry entry;
  entry.strategy = strategy;
  entry.k = k;
  entry.m = m;
  entry.original_size = content.size();
  entry.synthetic = !content.is_real();
  entry.synthetic_tag = content.tag();
  entry.nonce = next_nonce_++;
  entry.content_digest = content.digest();

  // Build shard bodies. Real content is encrypted then erasure-coded (or
  // replicated); synthetic bulk keeps its network/storage footprint via
  // synthetic slices — the transfer and availability behaviour under
  // study — while the manifest digest stands in for decodability.
  std::vector<http::Body> shard_bodies;
  if (content.is_real()) {
    const Sealed box = seal(key_, content.bytes(), entry.nonce);
    util::Bytes sealed_bytes = box.ciphertext;
    const std::string trailer =
        "|" + std::to_string(box.nonce) + "|" +
        util::digest_hex(box.mac);
    sealed_bytes.insert(sealed_bytes.end(), trailer.begin(), trailer.end());
    if (strategy == Strategy::kReplication) {
      for (int i = 0; i < total; ++i) {
        shard_bodies.emplace_back(sealed_bytes);
      }
    } else {
      const util::ReedSolomon rs(k, m);
      for (auto& shard : rs.encode(sealed_bytes)) {
        shard_bodies.emplace_back(std::move(shard));
      }
    }
  } else {
    const std::size_t shard_size =
        strategy == Strategy::kReplication
            ? content.size()
            : (content.size() + static_cast<std::size_t>(k) - 1) /
                  static_cast<std::size_t>(k);
    for (int i = 0; i < total; ++i) {
      shard_bodies.push_back(http::Body::synthetic(
          shard_size, entry.synthetic_tag ^ (0xABCDull * (i + 1))));
    }
  }

  for (const http::Body& b : shard_bodies) {
    entry.shard_digests.push_back(b.digest());
  }

  // Round-robin placement across distinct peers.
  auto remaining = std::make_shared<int>(total);
  auto failed = std::make_shared<int>(0);
  for (int i = 0; i < total; ++i) {
    const int peer_index =
        static_cast<int>((next_peer_ + static_cast<std::size_t>(i)) %
                         peers_.size());
    entry.placement.push_back(peer_index);
    ++stats_.shards_written;
    m_shards_written_->inc();
    peers_[static_cast<std::size_t>(peer_index)].client->put(
        shard_path(file_key, i), shard_bodies[static_cast<std::size_t>(i)],
        [this, remaining, failed, cb](util::Result<std::string> etag) {
          if (!etag.ok()) {
            ++*failed;
            ++stats_.shard_write_failures;
            m_shard_write_failures_->inc();
          }
          if (--*remaining == 0) {
            cb(*failed == 0 ? util::Status::success()
                            : util::Status::failure(
                                  "partial",
                                  std::to_string(*failed) +
                                      " shard writes failed"));
          }
        });
  }
  next_peer_ = (next_peer_ + static_cast<std::size_t>(total)) % peers_.size();
  manifest_[file_key] = std::move(entry);
}

void BackupManager::restore(const std::string& file_key, RestoreCallback cb) {
  const auto it = manifest_.find(file_key);
  if (it == manifest_.end()) {
    cb(util::Result<http::Body>::failure("not_found", "no manifest entry"));
    return;
  }
  const ManifestEntry& entry = it->second;
  const int total = entry.k + entry.m;

  struct Gather {
    std::vector<std::optional<util::Bytes>> shards;
    int outstanding;
    int have = 0;
    bool done = false;
  };
  auto gather = std::make_shared<Gather>();
  gather->shards.resize(static_cast<std::size_t>(total));
  gather->outstanding = total;

  auto finish = [this, entry, cb, gather](bool enough) {
    if (gather->done) return;
    if (!enough && gather->outstanding > 0) return;
    gather->done = true;
    if (gather->have < entry.k) {
      ++stats_.restores_failed;
      m_restores_failed_->inc();
      cb(util::Result<http::Body>::failure(
          "insufficient_shards",
          "only " + std::to_string(gather->have) + " of " +
              std::to_string(entry.k) + " shards reachable"));
      return;
    }
    if (entry.strategy == Strategy::kErasure &&
        gather->have < entry.k + entry.m) {
      // Enough shards to decode, but some were lost: the restore is also a
      // repair (RS reconstruction of the missing shards' data).
      m_erasure_repairs_->inc();
      telemetry::tracer().emit(telemetry::TraceEvent::kAtticErasureRepair,
                               gather->have, entry.k + entry.m);
    }
    if (entry.synthetic) {
      ++stats_.restores_ok;
      m_restores_ok_->inc();
      cb(http::Body::synthetic(entry.original_size, entry.synthetic_tag));
      return;
    }
    // Reassemble the sealed byte stream.
    util::Bytes sealed_bytes;
    if (entry.strategy == Strategy::kReplication) {
      for (const auto& s : gather->shards) {
        if (s) {
          sealed_bytes = *s;
          break;
        }
      }
    } else {
      const util::ReedSolomon rs(entry.k, entry.m);
      // Sealed length = ciphertext + trailer; recorded via the shard sizes:
      // decode() needs the original (pre-padding) size, which we recover
      // from the trailer after a size-free decode of k*shard_len bytes.
      std::size_t shard_len = 0;
      for (const auto& s : gather->shards) {
        if (s) shard_len = s->size();
      }
      const auto decoded = rs.decode(
          gather->shards,
          shard_len * static_cast<std::size_t>(entry.k));
      if (!decoded.ok()) {
        ++stats_.restores_failed;
        m_restores_failed_->inc();
        cb(util::Result<http::Body>(decoded.error()));
        return;
      }
      sealed_bytes = decoded.value();
    }
    // Split trailer: ciphertext | nonce | mac-hex.
    const auto last_bar = std::string(sealed_bytes.begin(), sealed_bytes.end())
                              .rfind('|');
    // Parse from the back: ...|nonce|machex — machex is 64 chars.
    const std::string as_text(sealed_bytes.begin(), sealed_bytes.end());
    const auto mac_bar = as_text.rfind('|');
    const auto nonce_bar = as_text.rfind('|', mac_bar - 1);
    (void)last_bar;
    if (mac_bar == std::string::npos || nonce_bar == std::string::npos) {
      ++stats_.restores_failed;
      m_restores_failed_->inc();
      cb(util::Result<http::Body>::failure("corrupt", "missing trailer"));
      return;
    }
    Sealed box;
    box.ciphertext.assign(sealed_bytes.begin(),
                          sealed_bytes.begin() +
                              static_cast<std::ptrdiff_t>(nonce_bar));
    box.nonce = std::strtoull(
        as_text.substr(nonce_bar + 1, mac_bar - nonce_bar - 1).c_str(),
        nullptr, 10);
    const auto mac_bytes = util::hex_decode(
        as_text.substr(mac_bar + 1, 64));
    if (!mac_bytes.ok() || mac_bytes.value().size() != box.mac.size()) {
      ++stats_.restores_failed;
      m_restores_failed_->inc();
      cb(util::Result<http::Body>::failure("corrupt", "bad trailer mac"));
      return;
    }
    std::copy(mac_bytes.value().begin(), mac_bytes.value().end(),
              box.mac.begin());
    auto plaintext = unseal(key_, box);
    if (!plaintext.ok()) {
      ++stats_.restores_failed;
      m_restores_failed_->inc();
      cb(util::Result<http::Body>(plaintext.error()));
      return;
    }
    http::Body body(std::move(plaintext).take());
    if (!util::digest_equal(body.digest(), entry.content_digest)) {
      ++stats_.restores_failed;
      m_restores_failed_->inc();
      cb(util::Result<http::Body>::failure("corrupt", "digest mismatch"));
      return;
    }
    ++stats_.restores_ok;
    m_restores_ok_->inc();
    cb(std::move(body));
  };

  for (int i = 0; i < total; ++i) {
    const int peer_index = entry.placement[static_cast<std::size_t>(i)];
    peers_[static_cast<std::size_t>(peer_index)].client->get(
        shard_path(file_key, i),
        [i, entry, gather, finish](util::Result<AtticClient::File> file) {
          --gather->outstanding;
          const auto idx = static_cast<std::size_t>(i);
          // A shard whose digest mismatches the manifest is corrupt: treat
          // it exactly like a lost shard so RS reconstruction handles it.
          if (file.ok() &&
              (idx >= entry.shard_digests.size() ||
               util::digest_equal(file.value().content.digest(),
                                  entry.shard_digests[idx]))) {
            if (entry.synthetic) {
              gather->shards[idx] = util::Bytes{};
            } else if (file.value().content.is_real()) {
              gather->shards[idx] = file.value().content.bytes();
            }
            if (gather->shards[idx]) {
              ++gather->have;
            }
          }
          finish(gather->have >= entry.k);
        });
  }
}

namespace {
bool transport_failure(const util::Error& error) {
  return error.code == "timeout" || error.code == "connection_failed";
}
}  // namespace

void BackupManager::probe_peers(ProbeCallback cb) {
  const std::size_t n = peers_.size();
  if (n == 0) {
    cb({});
    return;
  }
  auto alive = std::make_shared<std::vector<bool>>(n, false);
  auto outstanding = std::make_shared<std::size_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    peers_[i].client->list(
        "/backup/" + owner_,
        [i, alive, outstanding,
         cb](util::Result<std::vector<std::string>> r) {
          (*alive)[i] = r.ok() || !transport_failure(r.error());
          if (--*outstanding == 0) cb(std::move(*alive));
        });
  }
}

void BackupManager::backup_session(const std::string& key, durable::Wal& wal,
                                   const SessionConfig& config,
                                   SessionCallback cb) {
  SessionState& state = sessions_[key];
  const std::uint64_t session = state.next++;
  // Close the current epoch first: everything appended from here on
  // belongs to the next session, so the boundary is race-free even if the
  // service keeps writing while shards are in flight.
  const std::uint64_t boundary = wal.epoch();
  wal.advance_epoch();

  util::Bytes payload;
  bool full = config.full_every > 0 &&
              session % static_cast<std::uint64_t>(config.full_every) == 0;
  if (!full && !wal.collect_since(state.base_epoch, payload)) {
    // The WAL was compacted past our last boundary: the delta chain no
    // longer exists on disk, so this session must ship a full image.
    full = true;
  }
  if (full) payload = wal.durable_image();

  const std::string piece =
      key + (full ? "/full-" : "/delta-") + std::to_string(session);
  SessionInfo info;
  info.session = session;
  info.full = full;
  info.payload_bytes = payload.size();
  info.epoch = boundary;

  ++session_stats_.sessions;
  if (full) {
    ++session_stats_.full_sessions;
    session_stats_.full_bytes += payload.size();
    state.pieces.clear();
  } else {
    ++session_stats_.delta_sessions;
    session_stats_.delta_bytes += payload.size();
  }
  state.base_epoch = boundary;

  if (payload.empty() && !full) {
    // Nothing changed since the last session: record it, ship nothing.
    cb(info);
    return;
  }
  state.pieces.push_back(piece);
  backup(piece, http::Body(std::move(payload)), config.strategy, config.k,
         config.m, [info, cb](util::Status status) {
           if (!status.ok()) {
             cb(util::Result<SessionInfo>::failure(status.error().code,
                                                   status.error().message));
             return;
           }
           cb(info);
         });
}

void BackupManager::restore_session(const std::string& key, ImageCallback cb) {
  const auto it = sessions_.find(key);
  if (it == sessions_.end() || it->second.pieces.empty()) {
    cb(util::Result<util::Bytes>::failure("not_found",
                                          "no backup sessions for " + key));
    return;
  }
  // Restore pieces strictly in chain order (full first, then each delta):
  // the concatenation is a single WAL image whose records replay in the
  // exact order the home device persisted them.
  struct Chain {
    std::vector<std::string> pieces;
    std::size_t index = 0;
    util::Bytes image;
  };
  auto chain = std::make_shared<Chain>();
  chain->pieces = it->second.pieces;
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, chain, step, cb] {
    if (chain->index == chain->pieces.size()) {
      cb(std::move(chain->image));
      return;
    }
    const std::string piece = chain->pieces[chain->index++];
    restore(piece, [chain, step, cb](util::Result<http::Body> body) {
      if (!body.ok()) {
        cb(util::Result<util::Bytes>(body.error()));
        return;
      }
      const util::Bytes& bytes = body.value().bytes();
      chain->image.insert(chain->image.end(), bytes.begin(), bytes.end());
      (*step)();
    });
  };
  (*step)();
}

void BackupManager::check_and_repair(const std::string& file_key,
                                     RepairCallback cb) {
  const auto it = manifest_.find(file_key);
  if (it == manifest_.end()) {
    cb(util::Result<RepairReport>::failure("not_found", "no manifest entry"));
    return;
  }
  const int total = it->second.k + it->second.m;
  const bool synthetic = it->second.synthetic;

  struct Audit {
    std::vector<std::optional<util::Bytes>> shards;
    std::vector<bool> present;
    /// By shard index: the holding peer answered at all (a lost shard on a
    /// live peer is repaired in place; a dead peer forces relocation).
    std::vector<bool> holder_answered;
    int outstanding = 0;
  };
  auto audit = std::make_shared<Audit>();
  audit->shards.resize(static_cast<std::size_t>(total));
  audit->present.assign(static_cast<std::size_t>(total), false);
  audit->holder_answered.assign(static_cast<std::size_t>(total), false);
  audit->outstanding = total;

  auto finish = [this, file_key, audit, cb] {
    ManifestEntry& entry = manifest_[file_key];
    const int total = entry.k + entry.m;
    RepairReport report;
    report.shards_checked = total;
    std::vector<int> missing;
    for (int i = 0; i < total; ++i) {
      if (!audit->present[static_cast<std::size_t>(i)]) missing.push_back(i);
    }
    report.shards_missing = static_cast<int>(missing.size());
    if (missing.empty()) {
      cb(report);
      return;
    }
    if (total - report.shards_missing < entry.k) {
      cb(util::Result<RepairReport>::failure(
          "insufficient_shards",
          "only " + std::to_string(total - report.shards_missing) + " of " +
              std::to_string(entry.k) + " shards reachable"));
      return;
    }

    // Rebuild the missing shard bodies from the survivors.
    std::vector<http::Body> bodies(static_cast<std::size_t>(total));
    if (entry.synthetic) {
      const std::size_t shard_size =
          entry.strategy == Strategy::kReplication
              ? entry.original_size
              : (entry.original_size + static_cast<std::size_t>(entry.k) - 1) /
                    static_cast<std::size_t>(entry.k);
      for (const int i : missing) {
        bodies[static_cast<std::size_t>(i)] = http::Body::synthetic(
            shard_size, entry.synthetic_tag ^ (0xABCDull * (i + 1)));
      }
    } else if (entry.strategy == Strategy::kReplication) {
      for (int i = 0; i < total; ++i) {
        if (!audit->present[static_cast<std::size_t>(i)]) continue;
        for (const int j : missing) {
          bodies[static_cast<std::size_t>(j)] =
              http::Body(*audit->shards[static_cast<std::size_t>(i)]);
        }
        break;
      }
    } else {
      std::size_t shard_len = 0;
      for (const auto& s : audit->shards) {
        if (s) shard_len = s->size();
      }
      const util::ReedSolomon rs(entry.k, entry.m);
      const auto decoded = rs.decode(
          audit->shards, shard_len * static_cast<std::size_t>(entry.k));
      if (!decoded.ok()) {
        cb(util::Result<RepairReport>(decoded.error()));
        return;
      }
      auto reencoded = rs.encode(decoded.value());
      for (const int i : missing) {
        bodies[static_cast<std::size_t>(i)] =
            http::Body(std::move(reencoded[static_cast<std::size_t>(i)]));
      }
    }

    // Pick a target for each missing shard: the original holder when it is
    // merely missing the object, otherwise the least-loaded peer that is
    // not known-dead. (Peers holding nothing of this file were not probed
    // here; the put itself is the liveness test for those.)
    std::vector<bool> peer_down(peers_.size(), false);
    std::vector<int> load(peers_.size(), 0);
    for (int i = 0; i < total; ++i) {
      const auto p =
          static_cast<std::size_t>(entry.placement[static_cast<std::size_t>(i)]);
      if (!audit->holder_answered[static_cast<std::size_t>(i)]) {
        peer_down[p] = true;
      }
      if (audit->present[static_cast<std::size_t>(i)]) ++load[p];
    }
    for (const int i : missing) {
      auto target = static_cast<std::size_t>(
          entry.placement[static_cast<std::size_t>(i)]);
      if (peer_down[target]) {
        int best = -1;
        for (std::size_t p = 0; p < peers_.size(); ++p) {
          if (peer_down[p]) continue;
          if (best < 0 || load[p] < load[static_cast<std::size_t>(best)]) {
            best = static_cast<int>(p);
          }
        }
        if (best >= 0) {
          target = static_cast<std::size_t>(best);
          entry.placement[static_cast<std::size_t>(i)] = best;
          ++report.placements_moved;
        }
      }
      ++load[target];
    }

    auto remaining = std::make_shared<int>(static_cast<int>(missing.size()));
    auto rep = std::make_shared<RepairReport>(report);
    for (const int i : missing) {
      const auto target = static_cast<std::size_t>(
          entry.placement[static_cast<std::size_t>(i)]);
      peers_[target].client->put(
          shard_path(file_key, i), bodies[static_cast<std::size_t>(i)],
          [this, remaining, rep, cb](util::Result<std::string> etag) {
            if (etag.ok()) {
              ++rep->shards_repaired;
              ++stats_.shards_repaired;
              m_shards_repaired_->inc();
            }
            if (--*remaining == 0) {
              m_erasure_repairs_->inc();
              telemetry::tracer().emit(
                  telemetry::TraceEvent::kAtticErasureRepair,
                  rep->shards_repaired, rep->shards_missing, "proactive");
              cb(*rep);
            }
          });
    }
  };

  for (int i = 0; i < total; ++i) {
    const auto peer_index = static_cast<std::size_t>(
        it->second.placement[static_cast<std::size_t>(i)]);
    peers_[peer_index].client->get(
        shard_path(file_key, i),
        [i, synthetic, entry = it->second, audit,
         finish](util::Result<AtticClient::File> file) {
          const auto idx = static_cast<std::size_t>(i);
          if (file.ok()) {
            audit->holder_answered[idx] = true;
            const bool intact =
                idx >= entry.shard_digests.size() ||
                util::digest_equal(file.value().content.digest(),
                                   entry.shard_digests[idx]);
            // A corrupted shard on a live peer audits as missing-but-
            // repairable-in-place: reconstructed from survivors and
            // rewritten over the bad copy.
            if (!intact) {
            } else if (synthetic) {
              audit->shards[idx] = util::Bytes{};
              audit->present[idx] = true;
            } else if (file.value().content.is_real()) {
              audit->shards[idx] = file.value().content.bytes();
              audit->present[idx] = true;
            }
          } else {
            audit->holder_answered[idx] = !transport_failure(file.error());
          }
          if (--audit->outstanding == 0) finish();
        });
  }
}

}  // namespace hpop::attic
