#include "attic/webdav.hpp"

#include "util/logging.hpp"

namespace hpop::attic {

using http::Method;
using http::Request;
using http::Response;
using http::ResponseWriter;

AtticService::AtticService(core::Hpop& hpop, std::size_t quota_bytes)
    : hpop_(hpop), store_(quota_bytes) {
  hpop_.register_service("attic", "WebDAV data attic");
  install_routes();
}

std::string AtticService::owner_token(util::Duration validity) {
  const auto cap = hpop_.tokens().issue(hpop_.household(), "/", true,
                                        hpop_.simulator().now() + validity);
  return core::TokenAuthority::encode(cap);
}

std::string AtticService::store_path(const std::string& request_path) {
  std::string p = request_path.substr(std::string(kPrefix).size());
  if (p.empty()) p = "/";
  return p;
}

bool AtticService::authorize(const Request& req, bool write_access,
                             Response& resp) {
  const auto header = req.headers.get("x-capability");
  if (!header) {
    resp.status = 401;
    ++stats_.auth_failures;
    return false;
  }
  const auto cap = core::TokenAuthority::decode(*header);
  if (!cap.ok()) {
    resp.status = 401;
    ++stats_.auth_failures;
    return false;
  }
  const auto status =
      hpop_.tokens().verify(cap.value(), store_path(req.path), write_access,
                            hpop_.simulator().now());
  if (!status.ok()) {
    resp.status = status.error().code == "out_of_scope" ||
                          status.error().code == "read_only"
                      ? 403
                      : 401;
    resp.body = http::Body(status.error().message);
    ++stats_.auth_failures;
    return false;
  }
  return true;
}

bool AtticService::lock_blocks(const std::string& path, const Request& req) {
  const auto it = locks_.find(path);
  if (it == locks_.end()) return false;
  if (it->second.expires < hpop_.simulator().now()) {
    locks_.erase(it);
    return false;
  }
  const auto held = req.headers.get("if");  // "If: (<token>)" simplified
  return !held || *held != it->second.token;
}

void AtticService::install_routes() {
  auto& server = hpop_.http_server();

  server.route(Method::kGet, kPrefix,
               [this](const Request& req, ResponseWriter& w) {
                 Response resp;
                 if (!authorize(req, false, resp)) {
                   w.respond(std::move(resp));
                   return;
                 }
                 ++stats_.gets;
                 const auto file = store_.get(store_path(req.path));
                 if (!file.ok()) {
                   resp.status = 404;
                   w.respond(std::move(resp));
                   return;
                 }
                 const FileVersion& v = file.value();
                 if (req.headers.get("if-none-match") == v.etag) {
                   resp.status = 304;
                   resp.headers.set("ETag", v.etag);
                   w.respond(std::move(resp));
                   return;
                 }
                 resp.headers.set("ETag", v.etag);
                 if (const auto range =
                         http::parse_range(req.headers, v.content.size())) {
                   resp.status = 206;
                   resp.body = v.content.slice(range->first, range->second);
                 } else {
                   resp.body = v.content;
                 }
                 w.respond(std::move(resp));
               });

  server.route(Method::kPut, kPrefix,
               [this](const Request& req, ResponseWriter& w) {
                 Response resp;
                 if (!authorize(req, true, resp)) {
                   w.respond(std::move(resp));
                   return;
                 }
                 const std::string path = store_path(req.path);
                 if (lock_blocks(path, req)) {
                   ++stats_.lock_conflicts;
                   resp.status = 423;
                   w.respond(std::move(resp));
                   return;
                 }
                 // Conditional write: detects lost-update conflicts during
                 // offline reconciliation.
                 if (const auto expected = req.headers.get("if-match")) {
                   const auto current = store_.get(path);
                   if (!current.ok() || current.value().etag != *expected) {
                     resp.status = 412;
                     w.respond(std::move(resp));
                     return;
                   }
                 }
                 ++stats_.puts;
                 const auto etag = store_.put(path, req.body,
                                              hpop_.simulator().now());
                 if (!etag.ok()) {
                   // 503 when the WAL barrier failed (write landed in memory
                   // but is not durable — client must retry); 507 when the
                   // quota rejected it outright.
                   resp.status =
                       etag.error().code == "not_durable" ? 503 : 507;
                   w.respond(std::move(resp));
                   return;
                 }
                 resp.status = 201;
                 resp.headers.set("ETag", etag.value());
                 w.respond(std::move(resp));
               });

  server.route(Method::kDelete, kPrefix,
               [this](const Request& req, ResponseWriter& w) {
                 Response resp;
                 if (!authorize(req, true, resp)) {
                   w.respond(std::move(resp));
                   return;
                 }
                 const std::string path = store_path(req.path);
                 if (lock_blocks(path, req)) {
                   ++stats_.lock_conflicts;
                   resp.status = 423;
                   w.respond(std::move(resp));
                   return;
                 }
                 const auto removed = store_.remove(path);
                 resp.status = removed.ok() ? 204
                               : removed.error().code == "not_durable" ? 503
                                                                       : 404;
                 w.respond(std::move(resp));
               });

  server.route(Method::kMkcol, kPrefix,
               [this](const Request& req, ResponseWriter& w) {
                 Response resp;
                 if (!authorize(req, true, resp)) {
                   w.respond(std::move(resp));
                   return;
                 }
                 store_.mkdir(store_path(req.path));
                 resp.status = 201;
                 w.respond(std::move(resp));
               });

  server.route(Method::kPropfind, kPrefix,
               [this](const Request& req, ResponseWriter& w) {
                 Response resp;
                 if (!authorize(req, false, resp)) {
                   w.respond(std::move(resp));
                   return;
                 }
                 const std::string path = store_path(req.path);
                 std::string body;
                 if (store_.dir_exists(path)) {
                   for (const std::string& child : store_.list(path)) {
                     body += child + "\n";
                   }
                 } else {
                   const auto file = store_.get(path);
                   if (!file.ok()) {
                     resp.status = 404;
                     w.respond(std::move(resp));
                     return;
                   }
                   body = path + " etag=" + file.value().etag + " size=" +
                          std::to_string(file.value().content.size()) + "\n";
                 }
                 resp.status = 207;
                 resp.body = http::Body(body);
                 w.respond(std::move(resp));
               });

  server.route(Method::kLock, kPrefix,
               [this](const Request& req, ResponseWriter& w) {
                 Response resp;
                 if (!authorize(req, true, resp)) {
                   w.respond(std::move(resp));
                   return;
                 }
                 const std::string path = store_path(req.path);
                 if (lock_blocks(path, req)) {
                   ++stats_.lock_conflicts;
                   resp.status = 423;
                   w.respond(std::move(resp));
                   return;
                 }
                 Lock lock;
                 lock.token =
                     "opaquelocktoken:" + std::to_string(next_lock_++);
                 lock.expires =
                     hpop_.simulator().now() + 5 * util::kMinute;
                 resp.headers.set("Lock-Token", lock.token);
                 locks_[path] = std::move(lock);
                 resp.status = 200;
                 w.respond(std::move(resp));
               });

  server.route(Method::kUnlock, kPrefix,
               [this](const Request& req, ResponseWriter& w) {
                 Response resp;
                 if (!authorize(req, true, resp)) {
                   w.respond(std::move(resp));
                   return;
                 }
                 const std::string path = store_path(req.path);
                 const auto it = locks_.find(path);
                 const auto held = req.headers.get("lock-token");
                 if (it != locks_.end() && held &&
                     *held == it->second.token) {
                   locks_.erase(it);
                   resp.status = 204;
                 } else {
                   resp.status = 409;
                 }
                 w.respond(std::move(resp));
               });
}

}  // namespace hpop::attic
