#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attic/client.hpp"
#include "attic/grant.hpp"
#include "durable/wal.hpp"
#include "util/retry.hpp"

namespace hpop::attic {

/// One electronic health record, as the provider's EHR system stores it.
struct HealthRecord {
  std::string patient;
  std::string record_id;
  std::string kind;  // "lab", "imaging", "visit-note", ...
  http::Body content;
  util::TimePoint created = 0;
};

/// A medical provider's record system (§IV-A1). Linked patients have
/// handed over a grant ("QR code"); the provider's storage driver then
/// *duplicates* every write — one copy into the provider's own store (the
/// regulatory copy) and one into the patient's home attic.
class HealthProviderSystem {
 public:
  HealthProviderSystem(std::string name, http::HttpClient& http,
                       sim::Simulator& sim)
      : name_(std::move(name)), http_(http), sim_(sim) {}

  /// One-time bootstrapping with a patient's grant.
  util::Status link_patient(const std::string& patient,
                            const std::string& qr_code);
  bool patient_linked(const std::string& patient) const {
    return linked_.count(patient) > 0;
  }

  /// Writes a record: local store always; attic copy when linked. The
  /// callback acks ONLY once the attic copy is durable — a failed write
  /// parks in the pending queue and is retried (exponential backoff), so
  /// an acked record can never be lost to a patient-HPoP crash.
  using WriteCallback = std::function<void(util::Status)>;
  void add_record(HealthRecord record, WriteCallback cb = nullptr);

  /// Attic writes awaiting durability (in flight, backing off, or parked
  /// after exhausting the retry budget).
  std::size_t pending_writes() const { return pending_.size(); }
  /// Restarts delivery of every parked write with a fresh retry budget —
  /// e.g. once the patient's HPoP is known to be back up.
  void flush_pending();

  /// Attaches a WAL so the pending queue survives a provider crash: every
  /// enqueue and completion is logged. A recovered entry is re-attempted
  /// (at-least-once: a completion record torn off by the crash re-ships an
  /// already-landed write, which is safe — the ack only ever fired after
  /// attic durability).
  void attach_wal(durable::Wal* wal) { wal_ = wal; }
  durable::Wal* wal() const { return wal_; }
  /// Rebuilds the pending queue from the WAL (callbacks died with the
  /// process; recovered entries carry a null cb and a fresh retry budget).
  durable::Wal::RecoveryStats recover_from_wal(durable::Wal& wal);
  /// Snapshot-compacts the WAL to the live pending queue.
  bool compact_wal();
  util::Bytes serialize_state() const;
  bool restore_state(const util::Bytes& payload);
  /// Digest of the durable queue state (ids, paths, contents, counters).
  std::uint64_t fingerprint() const;

  static constexpr std::uint8_t kWalEnqueue = 1;
  static constexpr std::uint8_t kWalComplete = 2;

  /// Backoff schedule for attic-copy retries (tunable per deployment).
  util::RetryPolicy retry_policy{/*max_attempts=*/5,
                                 /*initial_backoff=*/500 * util::kMillisecond,
                                 /*multiplier=*/2.0,
                                 /*jitter=*/0.5,
                                 /*max_backoff=*/10 * util::kSecond,
                                 /*deadline=*/0};

  /// The provider-side view (what a records request to this provider
  /// returns, after its administrative release delay).
  std::vector<HealthRecord> local_records(const std::string& patient) const;

  const std::string& name() const { return name_; }
  std::uint64_t attic_writes() const { return attic_writes_; }
  std::uint64_t attic_write_failures() const { return attic_write_failures_; }

  /// Administrative latency of a conventional per-provider records release
  /// (signing forms, faxing, waiting) — §IV-A1's pain point. Exposed so
  /// experiments can model realistic distributions around it.
  util::Duration release_delay = 2 * util::kDay;

 private:
  struct LinkedPatient {
    ProviderGrant grant;
    std::unique_ptr<AtticClient> attic;
  };
  /// One not-yet-durable attic copy (the "durable pending queue": the
  /// record itself already sits in store_, so a provider restart could
  /// rebuild this queue from its own regulatory copies).
  struct PendingWrite {
    std::string patient;
    std::string path;
    http::Body content;
    int attempt = 0;
    util::TimePoint started = 0;
    bool in_flight = false;
    WriteCallback cb;
  };

  void attempt_write(std::uint64_t id);
  void apply_record(const durable::WalRecord& rec);

  std::string name_;
  http::HttpClient& http_;
  sim::Simulator& sim_;
  std::map<std::string, std::vector<HealthRecord>> store_;  // by patient
  std::map<std::string, LinkedPatient> linked_;
  std::map<std::uint64_t, PendingWrite> pending_;
  std::uint64_t next_pending_id_ = 1;
  durable::Wal* wal_ = nullptr;
  util::Rng rng_{0x48454C5448ull};  // jitter source for backoff
  std::uint64_t attic_writes_ = 0;
  std::uint64_t attic_write_failures_ = 0;
  /// Liveness token: backoff timers and put callbacks no-op once the
  /// provider object is gone.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

/// The patient's side: aggregates their complete history from their own
/// attic — one round trip to their HPoP instead of a release form per
/// provider.
class PatientHealthView {
 public:
  explicit PatientHealthView(AtticClient& attic) : attic_(attic) {}

  struct Aggregated {
    /// provider -> record paths found.
    std::map<std::string, std::vector<std::string>> by_provider;
    std::size_t total = 0;
  };
  using AggregateCallback = std::function<void(util::Result<Aggregated>)>;
  /// Walks /records/<provider>/<record>; completes when all listed
  /// directories are enumerated.
  void aggregate(AggregateCallback cb);

  using RecordCallback =
      std::function<void(util::Result<AtticClient::File>)>;
  void fetch_record(const std::string& path, RecordCallback cb) {
    attic_.get(path, std::move(cb));
  }

 private:
  AtticClient& attic_;
};

}  // namespace hpop::attic
