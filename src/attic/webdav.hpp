#pragma once

#include <map>
#include <memory>
#include <string>

#include "attic/store.hpp"
#include "hpop/appliance.hpp"

namespace hpop::attic {

/// The data attic's WebDAV front end (§IV-A: "we chose HTTP(S) as the basis
/// for our prototype and implement a data attic as a WebDAV server ...
/// WebDAV further mediates access from multiple clients through file
/// locking").
///
/// Mounted under /attic/ on the HPoP's HTTP server. Every request must
/// carry a capability token (X-Capability header) whose scope covers the
/// path; the household's own devices use a root-scoped capability.
///
/// Verbs: GET (incl. Range and If-None-Match), PUT (incl. If-Match and
/// lock enforcement), DELETE, MKCOL, PROPFIND (directory listing or file
/// metadata), LOCK / UNLOCK (exclusive write locks with timeout).
class AtticService {
 public:
  AtticService(core::Hpop& hpop, std::size_t quota_bytes = 64ull << 30);

  AtticStore& store() { return store_; }
  core::Hpop& hpop() { return hpop_; }

  /// Root-scoped capability for the household's own devices.
  std::string owner_token(util::Duration validity = 365 * util::kDay);

  struct Stats {
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t auth_failures = 0;
    std::uint64_t lock_conflicts = 0;
  };
  const Stats& stats() const { return stats_; }

  static constexpr const char* kPrefix = "/attic";

 private:
  struct Lock {
    std::string token;
    util::TimePoint expires = 0;
  };

  void install_routes();
  /// Checks the capability header; fills `resp` with the error on failure.
  bool authorize(const http::Request& req, bool write_access,
                 http::Response& resp);
  /// Store path from a request path ("/attic/foo" -> "/foo").
  static std::string store_path(const std::string& request_path);
  bool lock_blocks(const std::string& path, const http::Request& req);

  core::Hpop& hpop_;
  AtticStore store_;
  std::map<std::string, Lock> locks_;
  std::uint64_t next_lock_ = 1;
  Stats stats_;
};

}  // namespace hpop::attic
