#include "attic/store.hpp"

#include <set>

namespace hpop::attic {

std::string AtticStore::normalize(const std::string& path) {
  std::string p = path;
  if (p.empty() || p.front() != '/') p.insert(p.begin(), '/');
  while (p.size() > 1 && p.back() == '/') p.pop_back();
  return p;
}

std::string AtticStore::parent_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == 0 || pos == std::string::npos) return "/";
  return path.substr(0, pos);
}

std::string AtticStore::make_etag() {
  return "\"v" + std::to_string(++etag_counter_) + "\"";
}

util::Result<std::string> AtticStore::put(const std::string& path,
                                          http::Body content,
                                          util::TimePoint now) {
  const std::string p = normalize(path);
  const std::size_t incoming = content.size();
  const auto it = files_.find(p);
  const std::size_t replacing =
      it != files_.end() && !it->second.versions.empty()
          ? it->second.versions.back().content.size()
          : 0;
  if (used_ + incoming - replacing > quota_) {
    return util::Result<std::string>::failure("quota_exceeded",
                                              "attic quota exhausted");
  }
  // Auto-create the directory chain.
  for (std::string dir = parent_of(p); dirs_.insert(dir).second && dir != "/";
       dir = parent_of(dir)) {
  }

  FileVersion version;
  version.content = std::move(content);
  version.etag = make_etag();
  version.modified = now;
  used_ += incoming;
  files_[p].versions.push_back(version);
  m_puts_->inc();
  m_used_bytes_->add(static_cast<double>(incoming));
  return version.etag;
}

util::Result<FileVersion> AtticStore::get(const std::string& path) const {
  const auto it = files_.find(normalize(path));
  if (it == files_.end() || it->second.versions.empty()) {
    return util::Result<FileVersion>::failure("not_found", path);
  }
  return it->second.versions.back();
}

util::Result<std::vector<FileVersion>> AtticStore::history(
    const std::string& path) const {
  const auto it = files_.find(normalize(path));
  if (it == files_.end()) {
    return util::Result<std::vector<FileVersion>>::failure("not_found", path);
  }
  return it->second.versions;
}

util::Status AtticStore::remove(const std::string& path) {
  const auto it = files_.find(normalize(path));
  if (it == files_.end()) {
    return util::Status::failure("not_found", path);
  }
  for (const FileVersion& v : it->second.versions) {
    used_ -= v.content.size();
    m_used_bytes_->add(-static_cast<double>(v.content.size()));
  }
  files_.erase(it);
  return util::Status::success();
}

bool AtticStore::exists(const std::string& path) const {
  return files_.count(normalize(path)) > 0;
}

void AtticStore::mkdir(const std::string& path) {
  const std::string p = normalize(path);
  for (std::string dir = p; dirs_.insert(dir).second && dir != "/";
       dir = parent_of(dir)) {
  }
}

bool AtticStore::dir_exists(const std::string& path) const {
  return dirs_.count(normalize(path)) > 0;
}

std::vector<std::string> AtticStore::list(const std::string& dir_path) const {
  const std::string dir = normalize(dir_path);
  const std::string prefix = dir == "/" ? "/" : dir + "/";
  std::set<std::string> children;
  auto collect = [&](const std::string& path) {
    if (path.rfind(prefix, 0) != 0 || path == dir) return;
    const std::string rest = path.substr(prefix.size());
    const auto slash = rest.find('/');
    children.insert(prefix +
                    (slash == std::string::npos ? rest
                                                : rest.substr(0, slash)));
  };
  for (const auto& [path, entry] : files_) {
    (void)entry;
    collect(path);
  }
  for (const auto& d : dirs_) collect(d);
  return {children.begin(), children.end()};
}

}  // namespace hpop::attic
