#include "attic/store.hpp"

#include <set>

#include "util/hash.hpp"

namespace hpop::attic {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fnv {
  std::uint64_t h = kFnvOffset;
  void mix_byte(std::uint8_t b) {
    h ^= b;
    h *= kFnvPrime;
  }
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void mix(std::string_view s) {
    mix(s.size());
    for (const char c : s) mix_byte(static_cast<std::uint8_t>(c));
  }
  void mix_body(const http::Body& b) {
    if (b.is_real()) {
      mix(b.size());
      for (const std::uint8_t byte : b.bytes()) mix_byte(byte);
    } else {
      mix(b.size());
      mix(b.tag());
    }
  }
};

}  // namespace

void encode_body(durable::PayloadWriter& w, const http::Body& body) {
  if (body.is_real()) {
    w.put_u8(0);
    w.put_bytes(body.bytes());
  } else {
    w.put_u8(1);
    w.put_u64(body.size());
    w.put_u64(body.tag());
  }
}

bool decode_body(durable::PayloadReader& r, http::Body& body) {
  std::uint8_t synthetic = 0;
  if (!r.get_u8(synthetic)) return false;
  if (synthetic == 0) {
    util::Bytes bytes;
    if (!r.get_bytes(bytes)) return false;
    body = http::Body(std::move(bytes));
    return true;
  }
  std::uint64_t size = 0, tag = 0;
  if (!r.get_u64(size) || !r.get_u64(tag)) return false;
  body = http::Body::synthetic(static_cast<std::size_t>(size), tag);
  return true;
}

std::string AtticStore::normalize(const std::string& path) {
  std::string p = path;
  if (p.empty() || p.front() != '/') p.insert(p.begin(), '/');
  while (p.size() > 1 && p.back() == '/') p.pop_back();
  return p;
}

std::string AtticStore::parent_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == 0 || pos == std::string::npos) return "/";
  return path.substr(0, pos);
}

std::string AtticStore::make_etag() {
  return "\"v" + std::to_string(++etag_counter_) + "\"";
}

util::Result<std::string> AtticStore::put(const std::string& path,
                                          http::Body content,
                                          util::TimePoint now) {
  const std::string p = normalize(path);
  const std::size_t incoming = content.size();
  const auto it = files_.find(p);
  const std::size_t replacing =
      it != files_.end() && !it->second.versions.empty()
          ? it->second.versions.back().content.size()
          : 0;
  if (used_ + incoming - replacing > quota_) {
    return util::Result<std::string>::failure("quota_exceeded",
                                              "attic quota exhausted");
  }
  if (wal_ != nullptr && !replaying_) {
    durable::PayloadWriter w;
    w.put_string(p);
    w.put_u64(static_cast<std::uint64_t>(now));
    encode_body(w, content);
    wal_->append(kWalPut, w.take());
  }
  // Auto-create the directory chain.
  for (std::string dir = parent_of(p); dirs_.insert(dir).second && dir != "/";
       dir = parent_of(dir)) {
  }

  FileVersion version;
  version.content = std::move(content);
  version.etag = make_etag();
  version.modified = now;
  used_ += incoming;
  auto& versions = files_[p].versions;
  versions.push_back(version);
  if (versions.size() > kMaxVersions) {
    // Oldest version pruned; its bytes return to the quota.
    const std::size_t freed = versions.front().content.size();
    used_ -= freed;
    versions.erase(versions.begin());
    ++versions_pruned_;
    m_used_bytes_->add(-static_cast<double>(freed));
    if (!replaying_) m_versions_pruned_->inc();
  }
  // The gauge mirrors used_ unconditionally (replays included): it is the
  // live bytes across all stores, and a store subtracts itself on clear()
  // and destruction, so same-seed runs leave byte-identical telemetry.
  m_used_bytes_->add(static_cast<double>(incoming));
  if (!replaying_) m_puts_->inc();
  // Log-ahead ack rule: the record is buffered above; the barrier decides
  // whether this put may be acknowledged. On a partial flush the in-memory
  // mutation stands (disk may hold a prefix) but the caller must not ack.
  if (wal_ != nullptr && !replaying_ && !wal_->sync()) {
    return util::Result<std::string>::failure(
        "not_durable", "WAL sync barrier failed; write not durable");
  }
  return version.etag;
}

util::Result<FileVersion> AtticStore::get(const std::string& path) const {
  const auto it = files_.find(normalize(path));
  if (it == files_.end() || it->second.versions.empty()) {
    return util::Result<FileVersion>::failure("not_found", path);
  }
  return it->second.versions.back();
}

util::Result<std::vector<FileVersion>> AtticStore::history(
    const std::string& path) const {
  const auto it = files_.find(normalize(path));
  if (it == files_.end()) {
    return util::Result<std::vector<FileVersion>>::failure("not_found", path);
  }
  return it->second.versions;
}

util::Status AtticStore::remove(const std::string& path) {
  const auto it = files_.find(normalize(path));
  if (it == files_.end()) {
    return util::Status::failure("not_found", path);
  }
  if (wal_ != nullptr && !replaying_) {
    durable::PayloadWriter w;
    w.put_string(it->first);
    wal_->append(kWalRemove, w.take());
  }
  for (const FileVersion& v : it->second.versions) {
    used_ -= v.content.size();
    m_used_bytes_->add(-static_cast<double>(v.content.size()));
  }
  files_.erase(it);
  if (wal_ != nullptr && !replaying_ && !wal_->sync()) {
    return util::Status::failure("not_durable",
                                 "WAL sync barrier failed; remove not durable");
  }
  return util::Status::success();
}

bool AtticStore::exists(const std::string& path) const {
  return files_.count(normalize(path)) > 0;
}

void AtticStore::mkdir(const std::string& path) {
  const std::string p = normalize(path);
  if (wal_ != nullptr && !replaying_) {
    durable::PayloadWriter w;
    w.put_string(p);
    wal_->append(kWalMkdir, w.take());
    wal_->sync();
  }
  for (std::string dir = p; dirs_.insert(dir).second && dir != "/";
       dir = parent_of(dir)) {
  }
}

bool AtticStore::dir_exists(const std::string& path) const {
  return dirs_.count(normalize(path)) > 0;
}

std::vector<std::string> AtticStore::list(const std::string& dir_path) const {
  const std::string dir = normalize(dir_path);
  const std::string prefix = dir == "/" ? "/" : dir + "/";
  std::set<std::string> children;
  auto collect = [&](const std::string& path) {
    if (path.rfind(prefix, 0) != 0 || path == dir) return;
    const std::string rest = path.substr(prefix.size());
    const auto slash = rest.find('/');
    children.insert(prefix +
                    (slash == std::string::npos ? rest
                                                : rest.substr(0, slash)));
  };
  for (const auto& [path, entry] : files_) {
    (void)entry;
    collect(path);
  }
  for (const auto& d : dirs_) collect(d);
  return {children.begin(), children.end()};
}

// --------------------------------------------------- durability plumbing

void AtticStore::clear() {
  m_used_bytes_->add(-static_cast<double>(used_));
  files_.clear();
  dirs_ = {"/"};
  used_ = 0;
  etag_counter_ = 0;
  versions_pruned_ = 0;
}

void AtticStore::apply_record(const durable::WalRecord& rec) {
  durable::PayloadReader r(rec.payload);
  switch (rec.type) {
    case kWalPut: {
      std::string path;
      std::uint64_t modified = 0;
      http::Body body;
      if (!r.get_string(path) || !r.get_u64(modified) || !decode_body(r, body))
        return;
      put(path, std::move(body), static_cast<util::TimePoint>(modified));
      return;
    }
    case kWalRemove: {
      std::string path;
      if (r.get_string(path)) remove(path);
      return;
    }
    case kWalMkdir: {
      std::string path;
      if (r.get_string(path)) mkdir(path);
      return;
    }
    case durable::kSnapshotRecordType:
      restore_state(rec.payload);
      return;
    default:
      return;
  }
}

durable::Wal::RecoveryStats AtticStore::recover_from_wal(durable::Wal& wal) {
  clear();
  wal_ = &wal;
  replaying_ = true;
  const auto stats =
      wal.recover([this](const durable::WalRecord& rec) { apply_record(rec); });
  replaying_ = false;
  return stats;
}

bool AtticStore::compact_wal() {
  if (wal_ == nullptr) return false;
  return wal_->compact(serialize_state());
}

util::Bytes AtticStore::serialize_state() const {
  durable::PayloadWriter w;
  w.put_u64(etag_counter_);
  w.put_u64(versions_pruned_);
  w.put_u32(static_cast<std::uint32_t>(dirs_.size()));
  for (const std::string& d : dirs_) w.put_string(d);
  w.put_u32(static_cast<std::uint32_t>(files_.size()));
  for (const auto& [path, entry] : files_) {
    w.put_string(path);
    w.put_u32(static_cast<std::uint32_t>(entry.versions.size()));
    for (const FileVersion& v : entry.versions) {
      w.put_string(v.etag);
      w.put_u64(static_cast<std::uint64_t>(v.modified));
      encode_body(w, v.content);
    }
  }
  return w.take();
}

bool AtticStore::restore_state(const util::Bytes& payload) {
  clear();
  // Re-add whatever used_ the parse accumulated on every exit path (partial
  // state is kept on failure), preserving the gauge == sum-of-used_ invariant.
  const bool ok = parse_snapshot(payload);
  m_used_bytes_->add(static_cast<double>(used_));
  return ok;
}

bool AtticStore::parse_snapshot(const util::Bytes& payload) {
  durable::PayloadReader r(payload);
  std::uint64_t pruned = 0;
  std::uint32_t dir_count = 0, file_count = 0;
  if (!r.get_u64(etag_counter_) || !r.get_u64(pruned) || !r.get_u32(dir_count))
    return false;
  versions_pruned_ = pruned;
  for (std::uint32_t i = 0; i < dir_count; ++i) {
    std::string d;
    if (!r.get_string(d)) return false;
    dirs_.insert(d);
  }
  if (!r.get_u32(file_count)) return false;
  for (std::uint32_t i = 0; i < file_count; ++i) {
    std::string path;
    std::uint32_t version_count = 0;
    if (!r.get_string(path) || !r.get_u32(version_count)) return false;
    FileEntry entry;
    for (std::uint32_t v = 0; v < version_count; ++v) {
      FileVersion version;
      std::uint64_t modified = 0;
      if (!r.get_string(version.etag) || !r.get_u64(modified) ||
          !decode_body(r, version.content)) {
        return false;
      }
      version.modified = static_cast<util::TimePoint>(modified);
      used_ += version.content.size();
      entry.versions.push_back(std::move(version));
    }
    files_[path] = std::move(entry);
  }
  return true;
}

std::uint64_t AtticStore::fingerprint() const {
  Fnv fnv;
  fnv.mix(etag_counter_);
  fnv.mix(used_);
  fnv.mix(dirs_.size());
  for (const std::string& d : dirs_) fnv.mix(d);
  fnv.mix(files_.size());
  for (const auto& [path, entry] : files_) {
    fnv.mix(path);
    fnv.mix(entry.versions.size());
    for (const FileVersion& v : entry.versions) {
      fnv.mix(v.etag);
      fnv.mix(static_cast<std::uint64_t>(v.modified));
      fnv.mix_body(v.content);
    }
  }
  return fnv.h;
}

}  // namespace hpop::attic
