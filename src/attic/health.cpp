#include "attic/health.hpp"

#include "attic/store.hpp"
#include "util/logging.hpp"

namespace hpop::attic {

util::Status HealthProviderSystem::link_patient(const std::string& patient,
                                                const std::string& qr_code) {
  auto grant = ProviderGrant::decode(qr_code);
  if (!grant.ok()) {
    return util::Status(grant.error());
  }
  LinkedPatient link;
  link.grant = grant.value();
  link.attic = std::make_unique<AtticClient>(
      http_, link.grant.attic_endpoint, link.grant.capability);
  linked_[patient] = std::move(link);
  HPOP_LOG(kInfo, "health") << name_ << " linked patient " << patient
                            << " -> " << grant.value().directory;
  return util::Status::success();
}

void HealthProviderSystem::add_record(HealthRecord record, WriteCallback cb) {
  record.created = sim_.now();
  store_[record.patient].push_back(record);

  const auto it = linked_.find(record.patient);
  if (it == linked_.end()) {
    // Not linked: local copy only (the pre-attic world).
    if (cb) cb(util::Status::success());
    return;
  }
  // The storage driver's duplicated write (§IV-A1): local copy kept for
  // regulatory requirements, attic copy pushed to the patient. The write
  // enters the pending queue first and is acked only once it lands, so a
  // patient-HPoP crash delays durability but never silently drops it.
  PendingWrite pw;
  pw.patient = record.patient;
  pw.path = it->second.grant.directory + "/" + record.record_id;
  pw.content = record.content;
  pw.started = sim_.now();
  pw.cb = std::move(cb);
  const std::uint64_t id = next_pending_id_++;
  if (wal_ != nullptr) {
    durable::PayloadWriter w;
    w.put_u64(id);
    w.put_string(pw.patient);
    w.put_string(pw.path);
    w.put_u64(static_cast<std::uint64_t>(pw.started));
    encode_body(w, pw.content);
    wal_->append(kWalEnqueue, w.take());
    wal_->sync();
  }
  pending_.emplace(id, std::move(pw));
  attempt_write(id);
}

void HealthProviderSystem::attempt_write(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end() || it->second.in_flight) return;
  const auto link = linked_.find(it->second.patient);
  if (link == linked_.end()) return;  // unlinked while pending: park
  it->second.in_flight = true;
  ++it->second.attempt;
  ++attic_writes_;
  const std::weak_ptr<int> alive = alive_;
  link->second.attic->put(
      it->second.path, it->second.content,
      [this, alive, id](util::Result<std::string> etag) {
        if (alive.expired()) return;
        const auto it = pending_.find(id);
        if (it == pending_.end()) return;
        it->second.in_flight = false;
        if (etag.ok()) {
          if (wal_ != nullptr) {
            durable::PayloadWriter w;
            w.put_u64(id);
            wal_->append(kWalComplete, w.take());
            wal_->sync();
          }
          auto cb = std::move(it->second.cb);
          pending_.erase(it);
          if (cb) cb(util::Status::success());
          return;
        }
        ++attic_write_failures_;
        if (retry_policy.may_retry(it->second.attempt, it->second.started,
                                   sim_.now())) {
          const util::Duration delay =
              retry_policy.backoff(it->second.attempt, rng_);
          sim_.schedule(delay, [this, alive, id] {
            if (!alive.expired()) attempt_write(id);
          });
        }
        // Budget exhausted: the write parks in the queue until
        // flush_pending() grants it a fresh budget.
      });
}

void HealthProviderSystem::flush_pending() {
  std::vector<std::uint64_t> parked;
  for (auto& [id, pw] : pending_) {
    if (pw.in_flight) continue;
    pw.attempt = 0;
    pw.started = sim_.now();
    parked.push_back(id);
  }
  for (const std::uint64_t id : parked) attempt_write(id);
}

void HealthProviderSystem::apply_record(const durable::WalRecord& rec) {
  durable::PayloadReader r(rec.payload);
  switch (rec.type) {
    case kWalEnqueue: {
      PendingWrite pw;
      std::uint64_t id = 0, started = 0;
      if (!r.get_u64(id) || !r.get_string(pw.patient) ||
          !r.get_string(pw.path) || !r.get_u64(started) ||
          !decode_body(r, pw.content)) {
        return;
      }
      pw.started = static_cast<util::TimePoint>(started);
      pending_.emplace(id, std::move(pw));
      if (id >= next_pending_id_) next_pending_id_ = id + 1;
      return;
    }
    case kWalComplete: {
      std::uint64_t id = 0;
      if (r.get_u64(id)) pending_.erase(id);
      return;
    }
    case durable::kSnapshotRecordType:
      restore_state(rec.payload);
      return;
    default:
      return;
  }
}

durable::Wal::RecoveryStats HealthProviderSystem::recover_from_wal(
    durable::Wal& wal) {
  pending_.clear();
  next_pending_id_ = 1;
  wal_ = &wal;
  const auto stats =
      wal.recover([this](const durable::WalRecord& rec) { apply_record(rec); });
  return stats;
}

bool HealthProviderSystem::compact_wal() {
  if (wal_ == nullptr) return false;
  return wal_->compact(serialize_state());
}

util::Bytes HealthProviderSystem::serialize_state() const {
  durable::PayloadWriter w;
  w.put_u64(next_pending_id_);
  w.put_u32(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [id, pw] : pending_) {
    w.put_u64(id);
    w.put_string(pw.patient);
    w.put_string(pw.path);
    w.put_u64(static_cast<std::uint64_t>(pw.started));
    encode_body(w, pw.content);
  }
  return w.take();
}

bool HealthProviderSystem::restore_state(const util::Bytes& payload) {
  pending_.clear();
  durable::PayloadReader r(payload);
  std::uint32_t count = 0;
  if (!r.get_u64(next_pending_id_) || !r.get_u32(count)) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    PendingWrite pw;
    std::uint64_t id = 0, started = 0;
    if (!r.get_u64(id) || !r.get_string(pw.patient) || !r.get_string(pw.path) ||
        !r.get_u64(started) || !decode_body(r, pw.content)) {
      return false;
    }
    pw.started = static_cast<util::TimePoint>(started);
    pending_.emplace(id, std::move(pw));
  }
  return true;
}

std::uint64_t HealthProviderSystem::fingerprint() const {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= kPrime;
    }
  };
  auto mix_str = [&](const std::string& s) {
    mix(s.size());
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= kPrime;
    }
  };
  mix(next_pending_id_);
  mix(pending_.size());
  for (const auto& [id, pw] : pending_) {
    mix(id);
    mix_str(pw.patient);
    mix_str(pw.path);
    mix(static_cast<std::uint64_t>(pw.started));
    mix(pw.content.size());
    for (const std::uint8_t b : pw.content.digest()) {
      h ^= b;
      h *= kPrime;
    }
  }
  return h;
}

std::vector<HealthRecord> HealthProviderSystem::local_records(
    const std::string& patient) const {
  const auto it = store_.find(patient);
  return it == store_.end() ? std::vector<HealthRecord>{} : it->second;
}

void PatientHealthView::aggregate(AggregateCallback cb) {
  attic_.list("/records", [this, cb](
                              util::Result<std::vector<std::string>> dirs) {
    if (!dirs.ok()) {
      cb(util::Result<Aggregated>(dirs.error()));
      return;
    }
    auto result = std::make_shared<Aggregated>();
    auto remaining = std::make_shared<int>(
        static_cast<int>(dirs.value().size()));
    if (*remaining == 0) {
      cb(*result);
      return;
    }
    for (const std::string& dir : dirs.value()) {
      // "/records/<provider>"
      const std::string provider = dir.substr(dir.find_last_of('/') + 1);
      attic_.list(dir, [cb, result, remaining, provider](
                           util::Result<std::vector<std::string>> records) {
        if (records.ok()) {
          result->by_provider[provider] = records.value();
          result->total += records.value().size();
        }
        if (--*remaining == 0) cb(*result);
      });
    }
  });
}

}  // namespace hpop::attic
