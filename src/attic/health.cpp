#include "attic/health.hpp"

#include "util/logging.hpp"

namespace hpop::attic {

util::Status HealthProviderSystem::link_patient(const std::string& patient,
                                                const std::string& qr_code) {
  auto grant = ProviderGrant::decode(qr_code);
  if (!grant.ok()) {
    return util::Status(grant.error());
  }
  LinkedPatient link;
  link.grant = grant.value();
  link.attic = std::make_unique<AtticClient>(
      http_, link.grant.attic_endpoint, link.grant.capability);
  linked_[patient] = std::move(link);
  HPOP_LOG(kInfo, "health") << name_ << " linked patient " << patient
                            << " -> " << grant.value().directory;
  return util::Status::success();
}

void HealthProviderSystem::add_record(HealthRecord record, WriteCallback cb) {
  record.created = sim_.now();
  store_[record.patient].push_back(record);

  const auto it = linked_.find(record.patient);
  if (it == linked_.end()) {
    // Not linked: local copy only (the pre-attic world).
    if (cb) cb(util::Status::success());
    return;
  }
  // The storage driver's duplicated write (§IV-A1): local copy kept for
  // regulatory requirements, attic copy pushed to the patient.
  const std::string path =
      it->second.grant.directory + "/" + record.record_id;
  ++attic_writes_;
  it->second.attic->put(path, record.content,
                        [this, cb](util::Result<std::string> etag) {
                          if (!etag.ok()) {
                            ++attic_write_failures_;
                            if (cb) cb(util::Status(etag.error()));
                            return;
                          }
                          if (cb) cb(util::Status::success());
                        });
}

std::vector<HealthRecord> HealthProviderSystem::local_records(
    const std::string& patient) const {
  const auto it = store_.find(patient);
  return it == store_.end() ? std::vector<HealthRecord>{} : it->second;
}

void PatientHealthView::aggregate(AggregateCallback cb) {
  attic_.list("/records", [this, cb](
                              util::Result<std::vector<std::string>> dirs) {
    if (!dirs.ok()) {
      cb(util::Result<Aggregated>(dirs.error()));
      return;
    }
    auto result = std::make_shared<Aggregated>();
    auto remaining = std::make_shared<int>(
        static_cast<int>(dirs.value().size()));
    if (*remaining == 0) {
      cb(*result);
      return;
    }
    for (const std::string& dir : dirs.value()) {
      // "/records/<provider>"
      const std::string provider = dir.substr(dir.find_last_of('/') + 1);
      attic_.list(dir, [cb, result, remaining, provider](
                           util::Result<std::vector<std::string>> records) {
        if (records.ok()) {
          result->by_provider[provider] = records.value();
          result->total += records.value().size();
        }
        if (--*remaining == 0) cb(*result);
      });
    }
  });
}

}  // namespace hpop::attic
