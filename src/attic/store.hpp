#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "durable/wal.hpp"
#include "http/message.hpp"
#include "telemetry/metrics.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace hpop::attic {

/// One stored version of a file. The attic keeps history so applications
/// (and reconciliation after offline edits) can reason about change.
struct FileVersion {
  http::Body content;
  std::string etag;
  util::TimePoint modified = 0;
};

/// The attic's versioned object store: a path-keyed namespace with
/// directories, per-file version history, and a byte quota. This is the
/// "application-agnostic interface to user data" of §IV-A — WebDAV, the
/// wrap driver, backup and Internet@home all operate on it.
///
/// Durability (§IV-A "Data Availability", DESIGN.md §13): attach_wal()
/// turns every mutation into a write-ahead-log record synced before the
/// mutator acks. recover_from_wal() rebuilds a store byte-identically from
/// the device after a crash: replay is the same mutation sequence, so
/// etags, quota accounting and version pruning all reproduce exactly.
class AtticStore {
 public:
  explicit AtticStore(std::size_t quota_bytes = 64ull << 30)
      : quota_(quota_bytes) {
    auto& reg = telemetry::registry();
    m_puts_ = reg.counter("attic.puts");
    m_used_bytes_ = reg.gauge("attic.used_bytes");
    m_versions_pruned_ = reg.counter("attic.versions_pruned");
  }

  // The used-bytes gauge is an invariant over live stores: it always equals
  // the sum of used_ across every AtticStore in existence, including replayed
  // and copied ones. Stores therefore adjust it on copy and destruction, so
  // crash/recovery cycles leave no residue and same-seed runs emit
  // byte-identical telemetry.
  ~AtticStore() { m_used_bytes_->add(-static_cast<double>(used_)); }
  AtticStore(const AtticStore& other) {
    copy_fields(other);
    m_used_bytes_->add(static_cast<double>(used_));
  }
  AtticStore& operator=(const AtticStore& other) {
    if (this != &other) {
      m_used_bytes_->add(static_cast<double>(other.used_) -
                         static_cast<double>(used_));
      copy_fields(other);
    }
    return *this;
  }

  /// Bound on per-file version history: the oldest version is pruned (and
  /// its bytes returned to the quota) past this. Unbounded history grows
  /// without limit at metro scale.
  static constexpr std::size_t kMaxVersions = 16;

  /// Attaches a write-ahead log. Subsequent mutations append + sync; a put
  /// whose sync barrier fails returns "not_durable" (the in-memory state
  /// may then run ahead of disk — exactly what recovery replays away).
  void attach_wal(durable::Wal* wal) { wal_ = wal; }
  durable::Wal* wal() const { return wal_; }

  /// Rebuilds this store from the WAL (clearing current contents), then
  /// attaches it for subsequent writes. Returns the recovery scan stats so
  /// callers can assert on torn-tail truncation.
  durable::Wal::RecoveryStats recover_from_wal(durable::Wal& wal);

  /// Epoch-snapshot compaction: writes the full serialized store as a
  /// snapshot record at the WAL's current epoch and truncates the log
  /// prefix. False when no WAL is attached or the snapshot barrier failed.
  bool compact_wal();

  /// Writes a new version; creates parent directories implicitly.
  util::Result<std::string> put(const std::string& path, http::Body content,
                                util::TimePoint now);
  util::Result<FileVersion> get(const std::string& path) const;
  /// Full version history (bounded by kMaxVersions), oldest first.
  util::Result<std::vector<FileVersion>> history(const std::string& path) const;
  util::Status remove(const std::string& path);
  bool exists(const std::string& path) const;
  void mkdir(const std::string& path);
  bool dir_exists(const std::string& path) const;

  /// Immediate children (files and directories) of a directory path.
  std::vector<std::string> list(const std::string& dir_path) const;

  std::size_t used_bytes() const { return used_; }
  std::size_t quota_bytes() const { return quota_; }
  std::size_t file_count() const { return files_.size(); }
  std::uint64_t versions_pruned() const { return versions_pruned_; }

  /// Order-independent digest of the complete store state (paths, version
  /// contents, etags, directories, accounting). Two stores with equal
  /// fingerprints are observably identical — the recovery gates diff this.
  std::uint64_t fingerprint() const;

  /// Full-state snapshot encoding (the WAL snapshot-record payload).
  util::Bytes serialize_state() const;
  /// Replaces the store contents with a serialized snapshot.
  bool restore_state(const util::Bytes& payload);

  /// WAL record types (public so tests and tools can inspect logs).
  static constexpr std::uint8_t kWalPut = 1;
  static constexpr std::uint8_t kWalRemove = 2;
  static constexpr std::uint8_t kWalMkdir = 3;

 private:
  struct FileEntry {
    std::vector<FileVersion> versions;
  };
  static std::string normalize(const std::string& path);
  static std::string parent_of(const std::string& path);
  std::string make_etag();
  /// Applies one replayed WAL record (mutations with logging suppressed).
  void apply_record(const durable::WalRecord& rec);
  void clear();
  bool parse_snapshot(const util::Bytes& payload);
  void copy_fields(const AtticStore& other) {
    quota_ = other.quota_;
    used_ = other.used_;
    etag_counter_ = other.etag_counter_;
    versions_pruned_ = other.versions_pruned_;
    files_ = other.files_;
    dirs_ = other.dirs_;
    wal_ = other.wal_;
    replaying_ = other.replaying_;
    m_puts_ = other.m_puts_;
    m_used_bytes_ = other.m_used_bytes_;
    m_versions_pruned_ = other.m_versions_pruned_;
  }

  std::size_t quota_;
  std::size_t used_ = 0;
  std::uint64_t etag_counter_ = 0;
  std::uint64_t versions_pruned_ = 0;
  std::map<std::string, FileEntry> files_;
  std::set<std::string> dirs_{"/"};
  durable::Wal* wal_ = nullptr;
  bool replaying_ = false;

  // Registry handles (aggregated across all attic stores).
  telemetry::Counter* m_puts_;
  telemetry::Gauge* m_used_bytes_;
  telemetry::Counter* m_versions_pruned_;
};

/// Body <-> bytes codec shared by the attic WAL and incremental backup
/// (synthetic bodies keep their (size, tag) identity; real bodies their
/// bytes).
void encode_body(durable::PayloadWriter& w, const http::Body& body);
bool decode_body(durable::PayloadReader& r, http::Body& body);

}  // namespace hpop::attic
