#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "http/message.hpp"
#include "telemetry/metrics.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace hpop::attic {

/// One stored version of a file. The attic keeps history so applications
/// (and reconciliation after offline edits) can reason about change.
struct FileVersion {
  http::Body content;
  std::string etag;
  util::TimePoint modified = 0;
};

/// The attic's versioned object store: a path-keyed namespace with
/// directories, per-file version history, and a byte quota. This is the
/// "application-agnostic interface to user data" of §IV-A — WebDAV, the
/// wrap driver, backup and Internet@home all operate on it.
class AtticStore {
 public:
  explicit AtticStore(std::size_t quota_bytes = 64ull << 30)
      : quota_(quota_bytes) {
    auto& reg = telemetry::registry();
    m_puts_ = reg.counter("attic.puts");
    m_used_bytes_ = reg.gauge("attic.used_bytes");
  }

  /// Writes a new version; creates parent directories implicitly.
  util::Result<std::string> put(const std::string& path, http::Body content,
                                util::TimePoint now);
  util::Result<FileVersion> get(const std::string& path) const;
  /// Full version history, oldest first.
  util::Result<std::vector<FileVersion>> history(const std::string& path) const;
  util::Status remove(const std::string& path);
  bool exists(const std::string& path) const;
  void mkdir(const std::string& path);
  bool dir_exists(const std::string& path) const;

  /// Immediate children (files and directories) of a directory path.
  std::vector<std::string> list(const std::string& dir_path) const;

  std::size_t used_bytes() const { return used_; }
  std::size_t quota_bytes() const { return quota_; }
  std::size_t file_count() const { return files_.size(); }

 private:
  struct FileEntry {
    std::vector<FileVersion> versions;
  };
  static std::string normalize(const std::string& path);
  static std::string parent_of(const std::string& path);
  std::string make_etag();

  std::size_t quota_;
  std::size_t used_ = 0;
  std::uint64_t etag_counter_ = 0;
  std::map<std::string, FileEntry> files_;
  std::set<std::string> dirs_{"/"};

  // Registry handles (aggregated across all attic stores).
  telemetry::Counter* m_puts_;
  telemetry::Gauge* m_used_bytes_;
};

}  // namespace hpop::attic
