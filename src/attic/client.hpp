#pragma once

#include <functional>
#include <string>

#include "http/client.hpp"

namespace hpop::attic {

/// Remote attic access: the typed client every external party uses — the
/// household's own devices, SaaS applications acting on attic data
/// (Fig. 1), and medical providers pushing records (§IV-A1).
class AtticClient {
 public:
  /// `endpoint` is where the HPoP is reachable (possibly a TURN relay);
  /// `capability` the encoded token authorizing this party's scope.
  AtticClient(http::HttpClient& http, net::Endpoint endpoint,
              std::string capability)
      : http_(http), endpoint_(endpoint), capability_(std::move(capability)) {}

  struct File {
    http::Body content;
    std::string etag;
  };
  using FileCallback = std::function<void(util::Result<File>)>;
  using EtagCallback = std::function<void(util::Result<std::string>)>;
  using StatusCallback = std::function<void(util::Status)>;
  using ListCallback =
      std::function<void(util::Result<std::vector<std::string>>)>;
  using LockCallback = std::function<void(util::Result<std::string>)>;

  void get(const std::string& path, FileCallback cb);
  void get_range(const std::string& path, std::size_t offset,
                 std::size_t length, FileCallback cb);
  /// `if_match`: empty = unconditional; otherwise the expected etag
  /// (fails with "conflict" on mismatch). `lock_token` if a lock is held.
  void put(const std::string& path, http::Body content, EtagCallback cb,
           const std::string& if_match = "",
           const std::string& lock_token = "");
  void remove(const std::string& path, StatusCallback cb);
  void mkdir(const std::string& path, StatusCallback cb);
  void list(const std::string& path, ListCallback cb);
  void lock(const std::string& path, LockCallback cb);
  void unlock(const std::string& path, const std::string& token,
              StatusCallback cb);

  net::Endpoint endpoint() const { return endpoint_; }

 private:
  http::Request base(http::Method method, const std::string& path) const;

  http::HttpClient& http_;
  net::Endpoint endpoint_;
  std::string capability_;
};

}  // namespace hpop::attic
