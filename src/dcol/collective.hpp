#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/address.hpp"

namespace hpop::dcol {

/// Membership registry of a Detour Collective (§IV-C): "users forming
/// cooperatives in which members agree to serve as waypoints to each
/// other." Members expose their waypoint service endpoints; misbehaviour
/// reports decay reputation, and members below the floor are expelled
/// ("the misbehaving peer can be expelled from the collective").
///
/// The registry itself is modeled as the cooperative's shared membership
/// state (in deployment: a small signed membership list that the
/// coordinator distributes).
class Collective {
 public:
  struct Member {
    std::uint64_t id = 0;
    std::string name;
    net::Endpoint vpn_endpoint;   // waypoint's VPN join/data port
    net::Endpoint nat_endpoint;   // waypoint's NAT-tunnel signalling port
    double reputation = 1.0;
    bool expelled = false;
  };

  std::uint64_t add_member(const std::string& name,
                           net::Endpoint vpn_endpoint,
                           net::Endpoint nat_endpoint);

  /// Misbehaviour report (dropped subflows, corrupt relaying). severity in
  /// (0,1]: reputation *= (1 - severity); expelled below 0.3.
  void report_misbehavior(std::uint64_t member_id, double severity);

  /// Waypoint candidates for a client: active members except itself.
  std::vector<Member> waypoints_for(std::uint64_t requester_id) const;
  const Member* member(std::uint64_t id) const;
  std::size_t active_members() const;

 private:
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Member> members_;
};

}  // namespace hpop::dcol
