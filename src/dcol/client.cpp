#include "dcol/client.hpp"

#include <limits>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace hpop::dcol {

void serve_tls(const std::shared_ptr<transport::MptcpConnection>& conn,
               transport::MptcpConnection::MessageHandler app_handler) {
  conn->set_on_message(
      [conn_wp = std::weak_ptr<transport::MptcpConnection>(conn),
       app_handler](net::PayloadPtr msg) {
        const auto conn = conn_wp.lock();
        if (!conn) return;
        if (std::dynamic_pointer_cast<const TlsClientHello>(msg)) {
          conn->send(std::make_shared<TlsServerHello>());
          return;
        }
        if (std::dynamic_pointer_cast<const TlsFinished>(msg)) {
          return;  // handshake complete
        }
        if (app_handler) app_handler(std::move(msg));
      });
}

int DcolSession::active_detours() const {
  int n = 0;
  for (const auto& detour : detours_) {
    if (!detour->withdrawn) ++n;
  }
  return n;
}

void DcolSession::steer_away(
    const std::shared_ptr<transport::TcpConnection>& subflow,
    util::Duration ack_delay) {
  subflow->set_ack_delay(ack_delay);
}

DcolClient::DcolClient(transport::TransportMux& mux, Collective& collective,
                       std::uint64_t self_id, DcolOptions options,
                       util::Rng rng)
    : mux_(mux),
      collective_(collective),
      self_id_(self_id),
      options_(options),
      rng_(rng) {}

std::uint64_t DcolClient::subflow_progress(
    const std::shared_ptr<transport::TcpConnection>& subflow) {
  // Bytes moved in either direction: covers downloads, uploads and mixes.
  return subflow->bytes_received() + subflow->bytes_acked();
}

void DcolClient::connect(net::Endpoint server, ConnectCallback cb) {
  auto session = std::shared_ptr<DcolSession>(new DcolSession());
  transport::MptcpOptions mopts;
  mopts.scheduler = options_.scheduler;
  session->conn_ = mux_.mptcp_connect(server, mopts);

  // Route messages: TLS control first, app data after.
  session->conn_->set_on_message(
      [session_wp = std::weak_ptr<DcolSession>(session)](net::PayloadPtr msg) {
        const auto session = session_wp.lock();
        if (!session) return;
        if (std::dynamic_pointer_cast<const TlsServerHello>(msg)) {
          session->secure_ = true;
          session->conn_->send(std::make_shared<TlsFinished>());
          return;
        }
        if (session->app_handler_) session->app_handler_(std::move(msg));
      });

  session->conn_->set_on_established(
      [this, session, server, cb] {
        if (options_.require_tls) {
          // §IV-C: complete the handshake over the direct path before any
          // detours exist, so detoured subflows carry only ciphertext.
          session->conn_->send(std::make_shared<TlsClientHello>());
        }
        start_exploration(session, server);
        cb(session);
      });
}

void DcolClient::start_exploration(
    const std::shared_ptr<DcolSession>& session, net::Endpoint server) {
  mux_.simulator().schedule(
      options_.evaluate_every,
      [this, session_wp = std::weak_ptr<DcolSession>(session), server] {
        const auto session = session_wp.lock();
        if (!session || !session->conn_->established()) return;
        evaluate(session, server);
        if (session->active_detours() < options_.max_detours) {
          try_next_waypoint(session, server);
        }
        start_exploration(session, server);
      });
}

void DcolClient::try_next_waypoint(
    const std::shared_ptr<DcolSession>& session, net::Endpoint server) {
  if (options_.require_tls && !session->secure_) return;

  // Pick the best untried (or cooled-down) waypoint by reputation.
  const util::TimePoint now = mux_.simulator().now();
  std::optional<Collective::Member> chosen;
  for (const auto& member : collective_.waypoints_for(self_id_)) {
    const auto tried = tried_members_.find(member.id);
    if (tried != tried_members_.end() && tried->second > now) continue;
    if (options_.enable_breakers) {
      // Non-mutating preview: only the eventually-chosen member should
      // consume a half-open probe slot.
      const auto breaker_it = waypoint_breakers_.find(member.id);
      if (breaker_it != waypoint_breakers_.end() &&
          !breaker_it->second.would_allow(now)) {
        ++stats_.breaker_skips;
        continue;
      }
    }
    if (!chosen || member.reputation > chosen->reputation) {
      chosen = member;
    }
  }
  if (!chosen) return;
  if (options_.enable_breakers) breaker_for(chosen->id)->allow(now);
  // Provisionally never again; failure paths shorten this to a cooldown.
  tried_members_[chosen->id] = std::numeric_limits<util::TimePoint>::max();
  ++stats_.detours_tried;
  telemetry::registry().counter("dcol.detours_tried")->inc();
  telemetry::tracer().emit(telemetry::TraceEvent::kDetourChosen,
                           static_cast<double>(chosen->id),
                           chosen->reputation);

  auto detour = std::make_unique<DcolSession::Detour>();
  detour->member_id = chosen->id;
  DcolSession::Detour& ref = *detour;
  session->detours_.push_back(std::move(detour));

  if (options_.tunnel == TunnelKind::kVpn) {
    ref.vpn = std::make_unique<VpnTunnel>(mux_, chosen->vpn_endpoint);
    ref.vpn->join([this, session_wp = std::weak_ptr<DcolSession>(session),
                   &ref](util::Result<net::IpAddr> vip) {
      const auto session = session_wp.lock();
      if (!session) return;
      if (!vip.ok()) {
        fail_detour(ref);
        return;
      }
      add_detour_subflow(session, ref, ref.vpn->subflow_options());
    });
  } else {
    ref.nat = std::make_unique<NatTunnel>(mux_, chosen->nat_endpoint);
    ref.nat->open(server, [this,
                           session_wp = std::weak_ptr<DcolSession>(session),
                           &ref](util::Status status) {
      const auto session = session_wp.lock();
      if (!session) return;
      if (!status.ok()) {
        fail_detour(ref);
        return;
      }
      const std::uint16_t local_port = mux_.host().allocate_port();
      ref.nat->attach_local_port(local_port);
      add_detour_subflow(session, ref,
                         ref.nat->subflow_options(local_port));
    });
  }
}

void DcolClient::add_detour_subflow(
    const std::shared_ptr<DcolSession>& session, DcolSession::Detour& detour,
    transport::TcpOptions opts) {
  if (options_.enable_breakers) {
    breaker_for(detour.member_id)->record_success(mux_.simulator().now());
  }
  detour.subflow = session->conn_->add_subflow(opts);
  detour.last_bytes = 0;
  detour.trial = true;
}

overload::CircuitBreaker* DcolClient::breaker_for(std::uint64_t member) {
  auto it = waypoint_breakers_.find(member);
  if (it == waypoint_breakers_.end()) {
    it = waypoint_breakers_
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(member),
                      std::forward_as_tuple(options_.waypoint_breaker, &rng_))
             .first;
  }
  return &it->second;
}

bool DcolClient::subflow_dead(
    const std::shared_ptr<DcolSession>& session,
    const std::shared_ptr<transport::TcpConnection>& subflow) {
  for (const auto& info : session->conn_->subflows()) {
    if (info.conn == subflow) return info.dead;
  }
  return true;  // no longer tracked: gone
}

void DcolClient::fail_detour(DcolSession::Detour& detour) {
  if (detour.withdrawn) return;
  detour.withdrawn = true;
  if (detour.vpn) detour.vpn->leave();
  if (detour.nat) detour.nat->close();
  // Crash, not underperformance: allow a rejoin once the waypoint has had
  // a chance to come back.
  tried_members_[detour.member_id] =
      mux_.simulator().now() + options_.waypoint_retry_cooldown;
  if (options_.enable_breakers) {
    breaker_for(detour.member_id)->record_failure(mux_.simulator().now());
  }
  ++stats_.detour_failures;
  telemetry::registry().counter("dcol.detour_failures")->inc();
  telemetry::tracer().emit(telemetry::TraceEvent::kDetourWithdrawn,
                           static_cast<double>(detour.member_id), 0.0,
                           "failed");
}

void DcolClient::evaluate(const std::shared_ptr<DcolSession>& session,
                          net::Endpoint server) {
  (void)server;
  // Reap detours whose subflow collapsed (waypoint crash resets it, or the
  // restarted waypoint RSTs unknown segments). MPTCP already reinjected
  // their in-flight data; here we free the exploration slot and make the
  // member retryable after its cooldown.
  for (auto& detour : session->detours_) {
    if (detour->withdrawn || !detour->subflow) continue;
    if (subflow_dead(session, detour->subflow)) {
      session->conn_->remove_subflow(detour->subflow);
      fail_detour(*detour);
    }
  }
  // Total progress this window, across primary + detours.
  std::uint64_t total_delta = 0;
  const auto& subflows = session->conn_->subflows();
  if (!subflows.empty()) {
    const std::uint64_t primary_now = subflow_progress(subflows[0].conn);
    total_delta += primary_now - session->primary_last_bytes_;
    session->primary_last_bytes_ = primary_now;
  }
  struct Sample {
    DcolSession::Detour* detour;
    std::uint64_t delta;
    double retx_ratio;
  };
  std::vector<Sample> samples;
  for (auto& detour : session->detours_) {
    if (detour->withdrawn || !detour->subflow) continue;
    const std::uint64_t now_bytes = subflow_progress(detour->subflow);
    const std::uint64_t delta = now_bytes - detour->last_bytes;
    detour->last_bytes = now_bytes;
    total_delta += delta;
    const std::uint64_t segments_acked =
        detour->subflow->bytes_acked() / detour->subflow->options().mss + 1;
    samples.push_back(
        {detour.get(), delta,
         static_cast<double>(detour->subflow->retransmits()) /
             static_cast<double>(segments_acked)});
  }
  if (total_delta == 0) return;  // idle window: nothing to judge

  for (const Sample& sample : samples) {
    const double share = static_cast<double>(sample.delta) /
                         static_cast<double>(total_delta);
    const bool useless = share < options_.withdraw_share;
    const bool harmful = sample.retx_ratio > options_.misbehavior_retx_ratio;
    if (sample.detour->trial) {
      sample.detour->trial = false;
      if (!useless && !harmful) ++stats_.detours_kept;
    }
    // A detour that moves essentially nothing despite an established
    // subflow is indistinguishable (from here) between a bad path and a
    // packet-mangling waypoint; either way it is a poor experience worth
    // a low-severity report — repeated reports across members expel the
    // waypoint (§IV-C).
    const bool dead_weight = share < options_.withdraw_share * 0.5;
    if (useless || harmful) {
      // Withdraw: close the subflow; MPTCP reinjects its in-flight data
      // on the remaining paths.
      session->conn_->remove_subflow(sample.detour->subflow);
      if (sample.detour->vpn) sample.detour->vpn->leave();
      if (sample.detour->nat) sample.detour->nat->close();
      sample.detour->withdrawn = true;
      ++stats_.detours_withdrawn;
      telemetry::registry().counter("dcol.detours_withdrawn")->inc();
      telemetry::tracer().emit(telemetry::TraceEvent::kDetourWithdrawn,
                               static_cast<double>(sample.detour->member_id),
                               sample.retx_ratio,
                               harmful ? "harmful" : "useless");
      if (harmful) {
        ++stats_.misbehavior_reports;
        collective_.report_misbehavior(sample.detour->member_id, 0.5);
      } else if (dead_weight) {
        ++stats_.misbehavior_reports;
        collective_.report_misbehavior(sample.detour->member_id, 0.2);
      }
    }
  }
}

}  // namespace hpop::dcol
