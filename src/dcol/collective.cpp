#include "dcol/collective.hpp"

namespace hpop::dcol {

std::uint64_t Collective::add_member(const std::string& name,
                                     net::Endpoint vpn_endpoint,
                                     net::Endpoint nat_endpoint) {
  Member member;
  member.id = next_id_++;
  member.name = name;
  member.vpn_endpoint = vpn_endpoint;
  member.nat_endpoint = nat_endpoint;
  members_[member.id] = member;
  return member.id;
}

void Collective::report_misbehavior(std::uint64_t member_id,
                                    double severity) {
  const auto it = members_.find(member_id);
  if (it == members_.end()) return;
  it->second.reputation *= (1.0 - severity);
  if (it->second.reputation < 0.3) it->second.expelled = true;
}

std::vector<Collective::Member> Collective::waypoints_for(
    std::uint64_t requester_id) const {
  std::vector<Member> out;
  for (const auto& [id, member] : members_) {
    if (id == requester_id || member.expelled) continue;
    out.push_back(member);
  }
  return out;
}

const Collective::Member* Collective::member(std::uint64_t id) const {
  const auto it = members_.find(id);
  return it == members_.end() ? nullptr : &it->second;
}

std::size_t Collective::active_members() const {
  std::size_t n = 0;
  for (const auto& [id, member] : members_) {
    (void)id;
    if (!member.expelled) ++n;
  }
  return n;
}

}  // namespace hpop::dcol
