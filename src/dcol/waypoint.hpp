#pragma once

#include <map>
#include <memory>
#include <tuple>

#include "overload/admission.hpp"
#include "telemetry/metrics.hpp"
#include "transport/mux.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace hpop::dcol {

// --- Control messages ---

/// VPN join (the OpenVPN+DHCP handshake of §IV-C collapsed to one round).
struct VpnJoinRequest : net::Payload {
  std::size_t wire_size() const override { return 64; }
};

struct VpnJoinResponse : net::Payload {
  net::IpAddr virtual_ip;
  bool ok = false;
  std::size_t wire_size() const override { return 64; }
};

/// NAT tunnel signalling: "the client and waypoint negotiate a port on
/// which the waypoint would receive packets from the client and the
/// intended final destination of those packets."
struct NatTunnelRequest : net::Payload {
  net::Endpoint server;
  std::size_t wire_size() const override { return 40; }
};

struct NatTunnelResponse : net::Payload {
  std::uint16_t tunnel_port = 0;
  bool ok = false;
  std::size_t wire_size() const override { return 24; }
};

struct WaypointConfig {
  std::uint16_t vpn_port = 1194;
  std::uint16_t nat_signal_port = 1195;
  /// This waypoint's private VPN block (a /26 per §IV-C: "assigning each
  /// waypoint in the collective a /26 from the 10.0.0.0/8 block ... allows
  /// for each of 256K non-conflicting waypoints to serve 64 clients").
  net::IpAddr vpn_subnet = net::IpAddr(10, 200, 0, 0);
  /// Misbehaviour injection: drop this fraction of relayed packets.
  double drop_rate = 0.0;
  /// Join admission: token-bucket rate on join/tunnel signalling so a
  /// stampede of joining strangers cannot starve the household. 0 = off.
  double join_rate = 0.0;
  double join_burst = 8.0;
  /// Hard cap on negotiated NAT tunnels (the VPN side is already capped
  /// by its /26); 0 = unlimited.
  std::size_t max_nat_tunnels = 0;
};

/// The waypoint service an HPoP runs for its collective (§IV-C, Fig. 3).
/// Supports both tunnelling mechanisms interchangeably:
///  - VPN: client joins the waypoint's virtual subnet, sends encapsulated
///    packets (+36 B/packet); the waypoint decapsulates, NATs the virtual
///    source to its public address, and forwards. Reusable for any server.
///  - NAT: per-(server) negotiated forwarding port; zero per-packet
///    overhead, standard netfilter-style rewriting.
class WaypointService {
 public:
  WaypointService(transport::TransportMux& mux, WaypointConfig config,
                  util::Rng rng);

  struct Stats {
    std::uint64_t vpn_clients = 0;
    std::uint64_t nat_tunnels = 0;
    std::uint64_t packets_relayed = 0;
    std::uint64_t bytes_relayed = 0;
    std::uint64_t packets_dropped = 0;  // injected misbehaviour
    std::uint64_t joins_shed = 0;       // admission-refused joins/tunnels
  };
  const Stats& stats() const { return stats_; }
  net::Endpoint vpn_endpoint() const;
  net::Endpoint nat_endpoint() const;
  void set_drop_rate(double rate) { config_.drop_rate = rate; }

 private:
  struct VpnClient {
    net::IpAddr virtual_ip;
    net::Endpoint outer;  // where to send encapsulated returns
  };
  /// Key: public port we allocated. One entry per (flow) translation.
  struct Translation {
    bool vpn = false;
    // Original (pre-SNAT) source as the client knows it.
    net::Endpoint inner_src;
    net::Endpoint server;
    net::Endpoint client_outer;   // VPN: encapsulation target
    std::uint16_t client_port = 0;  // NAT mode: client's real source port
    net::IpAddr client_ip;          // NAT mode: client's outer address
    std::uint16_t tunnel_port = 0;  // NAT mode: the negotiated inbound port
  };

  void handle_vpn_packet(const net::Packet& outer);
  bool intercept(net::Packet& pkt);
  bool admit_join();
  std::uint16_t allocate_port();
  bool relay_budget(const net::Packet& pkt, std::size_t extra_bytes = 0);

  transport::TransportMux& mux_;
  WaypointConfig config_;
  util::Rng rng_;
  std::shared_ptr<transport::UdpSocket> vpn_socket_;
  std::shared_ptr<transport::UdpSocket> nat_socket_;
  std::map<net::IpAddr, VpnClient> vpn_clients_;  // by virtual ip
  std::uint32_t next_virtual_ = 2;                // .0/.1 reserved
  /// (proto, inner src endpoint, server) -> allocated public port.
  std::map<std::tuple<int, net::Endpoint, net::Endpoint>, std::uint16_t>
      snat_;
  std::map<std::uint16_t, Translation> by_port_;
  /// NAT-mode tunnels: waypoint port -> server (pre-flow configuration).
  std::map<std::uint16_t, net::Endpoint> nat_tunnels_;
  std::uint16_t next_port_ = 40000;
  std::unique_ptr<overload::AdmissionController> join_admission_;
  Stats stats_;

  // Registry handles (aggregated across all waypoints).
  telemetry::Counter* m_relayed_pkts_;
  telemetry::Counter* m_relayed_bytes_;
  telemetry::Counter* m_dropped_;
  telemetry::Gauge* m_vpn_clients_;
  telemetry::Gauge* m_nat_tunnels_;
};

}  // namespace hpop::dcol
