#pragma once

#include <functional>
#include <memory>
#include <set>

#include "dcol/waypoint.hpp"
#include "transport/mux.hpp"

namespace hpop::dcol {

enum class TunnelKind { kVpn, kNat };

/// Client side of a VPN detour tunnel (§IV-C): joins the waypoint's
/// virtual subnet, receives a virtual address, and transparently
/// encapsulates every packet sourced from that address toward the
/// waypoint (adding the 36-byte per-packet overhead). One join serves any
/// number of servers and subflows — the paper's stated advantage.
class VpnTunnel {
 public:
  VpnTunnel(transport::TransportMux& mux, net::Endpoint waypoint_vpn);

  using JoinCallback = std::function<void(util::Result<net::IpAddr>)>;
  void join(JoinCallback cb);
  /// Deadline for the join handshake: a crashed waypoint answers nothing,
  /// so past this the callback fires with a "timeout" failure.
  void set_setup_timeout(util::Duration d) { setup_timeout_ = d; }

  /// Subflow options routing through this tunnel (bind the virtual
  /// address). Valid after join() succeeds.
  transport::TcpOptions subflow_options() const;
  bool active() const { return active_; }
  net::IpAddr virtual_ip() const { return virtual_ip_; }
  void leave();

 private:
  transport::TransportMux& mux_;
  net::Endpoint waypoint_;
  std::shared_ptr<transport::UdpSocket> socket_;
  net::IpAddr virtual_ip_;
  bool active_ = false;
  JoinCallback join_cb_;
  util::TimePoint join_started_ = 0;
  util::Duration setup_timeout_ = 3 * util::kSecond;
  /// Liveness token: retry/deadline timers hold a weak_ptr so they no-op
  /// once the tunnel object is gone.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

/// Client side of a NAT detour tunnel: negotiates a forwarding port for
/// one specific server, then rewrites a designated subflow's packets
/// (local port match) toward the waypoint. Zero per-packet overhead, but
/// new signalling per destination — the paper's stated trade-off.
class NatTunnel {
 public:
  NatTunnel(transport::TransportMux& mux, net::Endpoint waypoint_signal);

  using OpenCallback = std::function<void(util::Status)>;
  void open(net::Endpoint server, OpenCallback cb);
  /// Deadline for the open handshake (see VpnTunnel::set_setup_timeout).
  void set_setup_timeout(util::Duration d) { setup_timeout_ = d; }

  /// Routes the subflow bound to `local_port` through the tunnel. The
  /// caller pre-allocates the port and passes it in TcpOptions::local_port.
  void attach_local_port(std::uint16_t local_port);
  transport::TcpOptions subflow_options(std::uint16_t local_port) const;
  bool active() const { return active_; }
  void close();

 private:
  transport::TransportMux& mux_;
  net::Endpoint waypoint_signal_;
  std::shared_ptr<transport::UdpSocket> socket_;
  net::Endpoint server_;
  std::uint16_t tunnel_port_ = 0;
  std::set<std::uint16_t> attached_ports_;
  bool active_ = false;
  OpenCallback open_cb_;
  util::TimePoint open_started_ = 0;
  util::Duration setup_timeout_ = 3 * util::kSecond;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace hpop::dcol
