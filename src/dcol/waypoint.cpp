#include "dcol/waypoint.hpp"

#include "util/logging.hpp"

namespace hpop::dcol {

WaypointService::WaypointService(transport::TransportMux& mux,
                                 WaypointConfig config, util::Rng rng)
    : mux_(mux), config_(config), rng_(rng) {
  auto& reg = telemetry::registry();
  m_relayed_pkts_ = reg.counter("dcol.waypoint.relayed_pkts");
  m_relayed_bytes_ = reg.counter("dcol.waypoint.relayed_bytes");
  m_dropped_ = reg.counter("dcol.waypoint.dropped");
  m_vpn_clients_ = reg.gauge("dcol.waypoint.vpn_clients");
  m_nat_tunnels_ = reg.gauge("dcol.waypoint.nat_tunnels");
  if (config_.join_rate > 0.0) {
    overload::AdmissionConfig ac;
    ac.rate = config_.join_rate;
    ac.burst = config_.join_burst;
    join_admission_ = std::make_unique<overload::AdmissionController>(
        mux_.simulator(), "dcol.waypoint", ac);
  }
  vpn_socket_ = mux_.udp_open(config_.vpn_port);
  nat_socket_ = mux_.udp_open(config_.nat_signal_port);

  vpn_socket_->set_on_packet([this](const net::Packet& pkt) {
    if (pkt.encapsulated) {
      handle_vpn_packet(pkt);
      return;
    }
    // Control: join request.
    for (const auto& ref : pkt.messages) {
      if (std::dynamic_pointer_cast<const VpnJoinRequest>(ref.message)) {
        auto resp = std::make_shared<VpnJoinResponse>();
        if (!admit_join()) {
          resp->ok = false;
        } else if (next_virtual_ >= 62) {  // /26 => 64 addrs, minus net/gw
          resp->ok = false;
        } else {
          const net::IpAddr vip(config_.vpn_subnet.value + next_virtual_++);
          vpn_clients_[vip] = VpnClient{vip, pkt.src_endpoint()};
          resp->ok = true;
          resp->virtual_ip = vip;
          ++stats_.vpn_clients;
          m_vpn_clients_->add(1);
        }
        vpn_socket_->send_to(pkt.src_endpoint(), resp);
      }
    }
  });

  nat_socket_->set_on_datagram([this](net::Endpoint from,
                                      net::PayloadPtr msg) {
    const auto req = std::dynamic_pointer_cast<const NatTunnelRequest>(msg);
    if (!req) return;
    auto resp = std::make_shared<NatTunnelResponse>();
    const bool capped = config_.max_nat_tunnels > 0 &&
                        nat_tunnels_.size() >= config_.max_nat_tunnels;
    if (capped || !admit_join()) {
      if (capped) ++stats_.joins_shed;
      resp->ok = false;
    } else {
      resp->tunnel_port = allocate_port();
      resp->ok = true;
      nat_tunnels_[resp->tunnel_port] = req->server;
      ++stats_.nat_tunnels;
      m_nat_tunnels_->add(1);
    }
    nat_socket_->send_to(from, resp);
  });

  mux_.host().add_ingress_hook(
      [this](net::Packet& pkt) { return intercept(pkt); });
}

net::Endpoint WaypointService::vpn_endpoint() const {
  return {mux_.host().address(), config_.vpn_port};
}

net::Endpoint WaypointService::nat_endpoint() const {
  return {mux_.host().address(), config_.nat_signal_port};
}

bool WaypointService::admit_join() {
  if (!join_admission_) return true;
  if (join_admission_->try_admit_instant(overload::Class::kThirdParty)) {
    return true;
  }
  ++stats_.joins_shed;
  return false;
}

std::uint16_t WaypointService::allocate_port() {
  while (by_port_.count(next_port_) > 0 ||
         nat_tunnels_.count(next_port_) > 0) {
    ++next_port_;
  }
  return next_port_++;
}

bool WaypointService::relay_budget(const net::Packet& pkt,
                                   std::size_t extra_bytes) {
  if (config_.drop_rate > 0.0 && rng_.bernoulli(config_.drop_rate)) {
    ++stats_.packets_dropped;
    m_dropped_->inc();
    return false;
  }
  ++stats_.packets_relayed;
  m_relayed_pkts_->inc();
  // Counted as wire bytes, including VPN encapsulation overhead — this is
  // what the §IV-C VPN-vs-NAT trade-off is about.
  stats_.bytes_relayed += pkt.wire_size() + extra_bytes;
  m_relayed_bytes_->inc(pkt.wire_size() + extra_bytes);
  return true;
}

void WaypointService::handle_vpn_packet(const net::Packet& outer) {
  // Decapsulate; the inner packet's source is the client's virtual address.
  net::Packet inner = *outer.encapsulated;
  const auto client_it = vpn_clients_.find(inner.src);
  if (client_it == vpn_clients_.end()) return;  // not joined
  // Track the client's current outer endpoint (it may be NAT-remapped).
  client_it->second.outer = outer.src_endpoint();

  // The inbound leg arrived encapsulated: account for the outer size.
  if (!relay_budget(inner, net::Packet::kVpnOverhead)) return;

  // SNAT the virtual source to one of our public ports and forward.
  const auto key = std::make_tuple(static_cast<int>(inner.proto),
                                   inner.src_endpoint(),
                                   inner.dst_endpoint());
  auto snat_it = snat_.find(key);
  if (snat_it == snat_.end()) {
    const std::uint16_t port = allocate_port();
    snat_it = snat_.emplace(key, port).first;
    Translation t;
    t.vpn = true;
    t.inner_src = inner.src_endpoint();
    t.server = inner.dst_endpoint();
    t.client_outer = outer.src_endpoint();
    by_port_[port] = t;
  } else {
    by_port_[snat_it->second].client_outer = outer.src_endpoint();
  }
  inner.src = mux_.host().address();
  inner.set_src_port(snat_it->second);
  mux_.host().send_packet(std::move(inner));
}

bool WaypointService::intercept(net::Packet& pkt) {
  if (pkt.proto != net::Proto::kTcp) return false;
  if (pkt.dst != mux_.host().address()) return false;
  const std::uint16_t port = pkt.dst_port();

  // Client -> server over a negotiated NAT tunnel port.
  const auto tunnel_it = nat_tunnels_.find(port);
  if (tunnel_it != nat_tunnels_.end()) {
    if (!relay_budget(pkt)) return true;
    const net::Endpoint server = tunnel_it->second;
    const auto key = std::make_tuple(static_cast<int>(pkt.proto),
                                     pkt.src_endpoint(), server);
    auto snat_it = snat_.find(key);
    if (snat_it == snat_.end()) {
      const std::uint16_t out_port = allocate_port();
      snat_it = snat_.emplace(key, out_port).first;
      Translation t;
      t.vpn = false;
      t.inner_src = pkt.src_endpoint();
      t.server = server;
      t.client_ip = pkt.src;
      t.client_port = pkt.src_port();
      t.tunnel_port = port;
      by_port_[out_port] = t;
    }
    net::Packet fwd = pkt;
    fwd.src = mux_.host().address();
    fwd.set_src_port(snat_it->second);
    fwd.dst = server.ip;
    fwd.set_dst_port(server.port);
    mux_.host().send_packet(std::move(fwd));
    return true;
  }

  // Server -> client on an allocated SNAT port.
  const auto trans_it = by_port_.find(port);
  if (trans_it != by_port_.end()) {
    const Translation& t = trans_it->second;
    if (pkt.src_endpoint() != t.server) return true;  // stray: drop
    if (!relay_budget(pkt, t.vpn ? net::Packet::kVpnOverhead : 0)) {
      return true;
    }
    net::Packet back = pkt;
    if (t.vpn) {
      // Restore the virtual destination and encapsulate toward the
      // client's outer endpoint (adds the 36-byte VPN overhead).
      back.dst = t.inner_src.ip;
      back.set_dst_port(t.inner_src.port);
      vpn_socket_->send_packet_to(t.client_outer, std::move(back));
    } else {
      // Rewrite so the client sees the packet arriving from its tunnel
      // port; the client-side shim restores the server address.
      back.src = mux_.host().address();
      back.set_src_port(t.tunnel_port);
      back.dst = t.client_ip;
      back.set_dst_port(t.client_port);
      mux_.host().send_packet(std::move(back));
    }
    return true;
  }
  return false;
}

}  // namespace hpop::dcol
