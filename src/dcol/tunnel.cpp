#include "dcol/tunnel.hpp"

#include "util/logging.hpp"

namespace hpop::dcol {

VpnTunnel::VpnTunnel(transport::TransportMux& mux, net::Endpoint waypoint_vpn)
    : mux_(mux), waypoint_(waypoint_vpn), socket_(mux.udp_open()) {
  socket_->set_on_packet([this](const net::Packet& pkt) {
    if (pkt.encapsulated) {
      if (!active_) return;
      // Decapsulate and hand the inner packet (addressed to our virtual
      // IP) to the local stack.
      net::Packet inner = *pkt.encapsulated;
      if (!mux_.host().interfaces().empty()) {
        mux_.host().deliver(std::move(inner),
                            mux_.host().interface(0));
      }
      return;
    }
    for (const auto& ref : pkt.messages) {
      if (const auto resp =
              std::dynamic_pointer_cast<const VpnJoinResponse>(ref.message)) {
        if (!join_cb_) return;
        auto cb = std::move(join_cb_);
        join_cb_ = nullptr;
        if (!resp->ok) {
          cb(util::Result<net::IpAddr>::failure("vpn_full",
                                                "waypoint subnet full"));
          return;
        }
        virtual_ip_ = resp->virtual_ip;
        active_ = true;
        telemetry::registry()
            .summary("dcol.tunnel.setup_ms", "kind=vpn")
            ->observe(static_cast<double>(mux_.simulator().now() -
                                          join_started_) /
                      util::kMillisecond);
        mux_.host().add_virtual_address(virtual_ip_);
        // Divert everything sourced from the virtual address into the
        // tunnel (the "high cost route" scoping from §IV-C is implicit:
        // only sockets bound to the virtual IP use it).
        mux_.host().add_egress_hook([this](net::Packet& pkt) {
          if (!active_ || pkt.src != virtual_ip_) return false;
          socket_->send_packet_to(waypoint_, pkt);
          return true;
        });
        cb(virtual_ip_);
      }
    }
  });
}

void VpnTunnel::join(JoinCallback cb) {
  join_cb_ = std::move(cb);
  join_started_ = mux_.simulator().now();
  socket_->send_to(waypoint_, std::make_shared<VpnJoinRequest>());
  // Join over UDP: one retry after a second covers a lost datagram.
  const std::weak_ptr<int> alive = alive_;
  mux_.simulator().schedule(util::kSecond, [this, alive] {
    if (alive.expired()) return;
    if (join_cb_) {
      socket_->send_to(waypoint_, std::make_shared<VpnJoinRequest>());
    }
  });
  // A crashed waypoint answers nothing at all: fail past the deadline so
  // the caller can re-select instead of pending forever.
  mux_.simulator().schedule(setup_timeout_, [this, alive] {
    if (alive.expired() || !join_cb_) return;
    auto cb = std::move(join_cb_);
    join_cb_ = nullptr;
    telemetry::registry().counter("dcol.tunnel.timeouts")->inc();
    cb(util::Result<net::IpAddr>::failure("timeout",
                                          "waypoint unresponsive"));
  });
}

transport::TcpOptions VpnTunnel::subflow_options() const {
  transport::TcpOptions opts;
  opts.bind_ip = virtual_ip_;
  return opts;
}

void VpnTunnel::leave() {
  if (!active_) return;
  active_ = false;
  mux_.host().remove_virtual_address(virtual_ip_);
}

NatTunnel::NatTunnel(transport::TransportMux& mux,
                     net::Endpoint waypoint_signal)
    : mux_(mux), waypoint_signal_(waypoint_signal), socket_(mux.udp_open()) {
  socket_->set_on_datagram([this](net::Endpoint from, net::PayloadPtr msg) {
    (void)from;
    const auto resp = std::dynamic_pointer_cast<const NatTunnelResponse>(msg);
    if (!resp || !open_cb_) return;
    auto cb = std::move(open_cb_);
    open_cb_ = nullptr;
    if (!resp->ok) {
      cb(util::Status::failure("tunnel_refused", "waypoint refused tunnel"));
      return;
    }
    tunnel_port_ = resp->tunnel_port;
    active_ = true;
    telemetry::registry()
        .summary("dcol.tunnel.setup_ms", "kind=nat")
        ->observe(static_cast<double>(mux_.simulator().now() -
                                      open_started_) /
                  util::kMillisecond);

    const net::Endpoint waypoint_data{waypoint_signal_.ip, tunnel_port_};
    // Outbound: designated subflows' packets to the server divert to the
    // waypoint's tunnel port.
    mux_.host().add_egress_hook([this, waypoint_data](net::Packet& pkt) {
      if (!active_ || pkt.proto != net::Proto::kTcp) return false;
      if (pkt.dst_endpoint() != server_) return false;
      if (attached_ports_.count(pkt.src_port()) == 0) return false;
      pkt.dst = waypoint_data.ip;
      pkt.set_dst_port(waypoint_data.port);
      return false;  // rewritten in place; normal routing continues
    });
    // Inbound: restore the server as the apparent source.
    mux_.host().add_ingress_hook([this, waypoint_data](net::Packet& pkt) {
      if (!active_ || pkt.proto != net::Proto::kTcp) return false;
      if (pkt.src_endpoint() != waypoint_data) return false;
      if (attached_ports_.count(pkt.dst_port()) == 0) return false;
      pkt.src = server_.ip;
      pkt.set_src_port(server_.port);
      return false;  // rewritten in place; normal dispatch continues
    });
    cb(util::Status::success());
  });
}

void NatTunnel::open(net::Endpoint server, OpenCallback cb) {
  server_ = server;
  open_cb_ = std::move(cb);
  open_started_ = mux_.simulator().now();
  auto req = std::make_shared<NatTunnelRequest>();
  req->server = server;
  socket_->send_to(waypoint_signal_, req);
  const std::weak_ptr<int> alive = alive_;
  mux_.simulator().schedule(util::kSecond, [this, alive, server] {
    if (alive.expired()) return;
    if (open_cb_) {
      auto req = std::make_shared<NatTunnelRequest>();
      req->server = server;
      socket_->send_to(waypoint_signal_, req);
    }
  });
  mux_.simulator().schedule(setup_timeout_, [this, alive] {
    if (alive.expired() || !open_cb_) return;
    auto cb = std::move(open_cb_);
    open_cb_ = nullptr;
    telemetry::registry().counter("dcol.tunnel.timeouts")->inc();
    cb(util::Status::failure("timeout", "waypoint unresponsive"));
  });
}

void NatTunnel::attach_local_port(std::uint16_t local_port) {
  attached_ports_.insert(local_port);
}

transport::TcpOptions NatTunnel::subflow_options(
    std::uint16_t local_port) const {
  transport::TcpOptions opts;
  opts.local_port = local_port;
  return opts;
}

void NatTunnel::close() { active_ = false; }

}  // namespace hpop::dcol
