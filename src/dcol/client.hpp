#pragma once

#include <map>
#include <memory>
#include <vector>

#include "dcol/collective.hpp"
#include "dcol/tunnel.hpp"
#include "overload/breaker.hpp"
#include "transport/mptcp.hpp"

namespace hpop::dcol {

/// TLS handshake stand-ins (§IV-C Security: "our prototype requires the
/// client to complete the TLS handshake with the server over the direct
/// path before establishing any detours").
struct TlsClientHello : net::Payload {
  std::size_t wire_size() const override { return 320; }
};
struct TlsServerHello : net::Payload {
  std::size_t wire_size() const override { return 3200; }  // incl. cert
};
struct TlsFinished : net::Payload {
  std::size_t wire_size() const override { return 96; }
};

/// Server-side helper: answers TLS hellos on an MPTCP connection, then
/// forwards all other messages to `app_handler`.
void serve_tls(const std::shared_ptr<transport::MptcpConnection>& conn,
               transport::MptcpConnection::MessageHandler app_handler);

struct DcolOptions {
  TunnelKind tunnel = TunnelKind::kVpn;
  int max_detours = 2;
  /// Detour evaluation cadence and trial length ("trial and error to
  /// explore multiple detours and retain the beneficial ones").
  util::Duration evaluate_every = 2 * util::kSecond;
  /// A detour carrying less than this share of recent bytes is withdrawn.
  double withdraw_share = 0.05;
  /// Retransmit ratio above which a waypoint is reported as misbehaving.
  double misbehavior_retx_ratio = 0.25;
  /// A waypoint that *failed* (join timeout, subflow reset — i.e. crashed,
  /// not underperforming) becomes eligible for re-selection after this
  /// cooldown, so clients rejoin restarted waypoints. Performance-based
  /// withdrawals stay permanent.
  util::Duration waypoint_retry_cooldown = 10 * util::kSecond;
  bool require_tls = true;
  transport::SchedulerKind scheduler = transport::SchedulerKind::kMinRtt;
  /// Per-waypoint circuit breakers (off by default). A member whose joins
  /// keep failing gets an open circuit: the client stops dialling it until
  /// the (jittered) open window lapses, instead of burning a join timeout
  /// on every exploration round. Complements the retry cooldown above —
  /// the cooldown paces a single failure, the breaker squelches repeated
  /// ones.
  bool enable_breakers = false;
  overload::BreakerConfig waypoint_breaker{};
};

/// One detoured connection: the MPTCP session plus its detour state.
class DcolSession : public std::enable_shared_from_this<DcolSession> {
 public:
  struct Detour {
    std::uint64_t member_id = 0;
    std::unique_ptr<VpnTunnel> vpn;
    std::unique_ptr<NatTunnel> nat;
    std::shared_ptr<transport::TcpConnection> subflow;
    std::uint64_t last_bytes = 0;   // received+acked at last evaluation
    bool trial = true;              // still in its first evaluation window
    bool withdrawn = false;
  };

  std::shared_ptr<transport::MptcpConnection> connection() { return conn_; }
  bool secure() const { return secure_; }
  const std::vector<std::unique_ptr<Detour>>& detours() const {
    return detours_;
  }
  int active_detours() const;

  /// Receiver-side steering: delay subflow acks to push the server's
  /// min-RTT scheduler off this detour.
  void steer_away(const std::shared_ptr<transport::TcpConnection>& subflow,
                  util::Duration ack_delay);

  /// Application-facing message stream (TLS records filtered out).
  void set_on_message(transport::MptcpConnection::MessageHandler h) {
    app_handler_ = std::move(h);
  }

 private:
  friend class DcolClient;
  std::shared_ptr<transport::MptcpConnection> conn_;
  std::vector<std::unique_ptr<Detour>> detours_;
  transport::MptcpConnection::MessageHandler app_handler_;
  bool secure_ = false;
  std::uint64_t primary_last_bytes_ = 0;
};

/// The DCol engine on a member's device: opens MPTCP connections whose
/// extra subflows ride waypoint tunnels, explores waypoints by trial and
/// error, withdraws useless or harmful ones, and reports misbehaviour to
/// the collective.
class DcolClient {
 public:
  DcolClient(transport::TransportMux& mux, Collective& collective,
             std::uint64_t self_id, DcolOptions options, util::Rng rng);

  using ConnectCallback =
      std::function<void(std::shared_ptr<DcolSession>)>;
  /// Establishes the direct-path subflow (and TLS when required), then
  /// starts detour exploration in the background.
  void connect(net::Endpoint server, ConnectCallback cb);

  struct Stats {
    std::uint64_t detours_tried = 0;
    std::uint64_t detours_kept = 0;
    std::uint64_t detours_withdrawn = 0;
    std::uint64_t detour_failures = 0;  // join timeouts + subflow resets
    std::uint64_t misbehavior_reports = 0;
    std::uint64_t breaker_skips = 0;  // members passed over: circuit open
  };
  const Stats& stats() const { return stats_; }
  const overload::CircuitBreaker* waypoint_breaker(std::uint64_t member) const {
    const auto it = waypoint_breakers_.find(member);
    return it == waypoint_breakers_.end() ? nullptr : &it->second;
  }

 private:
  void start_exploration(const std::shared_ptr<DcolSession>& session,
                         net::Endpoint server);
  void try_next_waypoint(const std::shared_ptr<DcolSession>& session,
                         net::Endpoint server);
  void add_detour_subflow(const std::shared_ptr<DcolSession>& session,
                          DcolSession::Detour& detour,
                          transport::TcpOptions opts);
  void evaluate(const std::shared_ptr<DcolSession>& session,
                net::Endpoint server);
  /// Withdraws a detour whose waypoint died (vs. underperformed): frees
  /// the exploration slot and schedules the member for re-trial after the
  /// cooldown.
  void fail_detour(DcolSession::Detour& detour);
  static std::uint64_t subflow_progress(
      const std::shared_ptr<transport::TcpConnection>& subflow);
  static bool subflow_dead(
      const std::shared_ptr<DcolSession>& session,
      const std::shared_ptr<transport::TcpConnection>& subflow);

  transport::TransportMux& mux_;
  Collective& collective_;
  std::uint64_t self_id_;
  DcolOptions options_;
  util::Rng rng_;
  overload::CircuitBreaker* breaker_for(std::uint64_t member);

  /// member id -> earliest time it may be selected again; max() = never.
  std::map<std::uint64_t, util::TimePoint> tried_members_;
  std::map<std::uint64_t, overload::CircuitBreaker> waypoint_breakers_;
  Stats stats_;
};

}  // namespace hpop::dcol
